//! Offline stand-in for `criterion`.
//!
//! A minimal timing harness over the surface this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::{benchmark_group,
//! bench_function}`, group `throughput`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and `black_box`.
//!
//! Unlike real criterion there is no statistical analysis: each benchmark
//! runs a short calibration to pick an iteration count targeting a fixed
//! measurement budget, then prints one line per benchmark:
//!
//! ```text
//! group/name              mean 12_345 ns/iter (x iters)    843.21 Melem/s
//! ```
//!
//! Command-line filter args (`cargo bench -- <substr>`) are honored: a
//! benchmark runs if any filter is a substring of its full id (or no
//! filters are given). `--bench`, `--test`, and flag-like args that cargo
//! forwards are ignored.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units the measured routine processes per iteration; turns mean time into
/// a rate column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A parameterized benchmark id: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Passed to the measured closure; `iter` times `iters` calls of the
/// routine around a monotonic clock.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// `iter_batched` with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Time budget per benchmark. Kept short: these are smoke/ballpark numbers,
/// not publication-grade statistics.
const TARGET_BUDGET: Duration = Duration::from_millis(300);
const MAX_CALIBRATION: Duration = Duration::from_millis(100);

fn run_one(full_id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: run single iterations until the budget suggests a count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = if once >= MAX_CALIBRATION {
        1
    } else {
        (TARGET_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64
    };
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| {
        let (units, suffix) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B/s"),
        };
        let per_sec = units as f64 * 1e9 / mean_ns.max(1.0);
        if per_sec >= 1e6 {
            format!("{:10.2} M{suffix}", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:10.2} K{suffix}", per_sec / 1e3)
        } else {
            format!("{per_sec:10.2} {suffix}")
        }
    });
    match rate {
        Some(r) => println!("{full_id:<48} mean {mean_ns:>14.0} ns/iter ({iters} iters) {r}"),
        None => println!("{full_id:<48} mean {mean_ns:>14.0} ns/iter ({iters} iters)"),
    }
}

/// Substring filters from the forwarded CLI args (flag-like args skipped).
fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-') && a != "bench" && a != "test")
        .collect()
}

fn selected(filters: &[String], full_id: &str) -> bool {
    filters.is_empty() || filters.iter().any(|f| full_id.contains(f.as_str()))
}

/// The harness entry point; one per bench binary.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: cli_filters(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<S: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full_id = id.into_benchmark_id();
        if selected(&self.filters, &full_id) {
            run_one(&full_id, None, &mut f);
        }
        self
    }

    // Configuration knobs accepted and ignored: the shim's budget is fixed.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        if selected(&self.criterion.filters, &full_id) {
            run_one(&full_id, self.throughput, &mut f);
        }
        self
    }

    pub fn bench_with_input<S: IntoBenchmarkId, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        if selected(&self.criterion.filters, &full_id) {
            run_one(&full_id, self.throughput, &mut |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
