//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` built
//! directly on `proc_macro` token trees — no syn, no quote. It supports the
//! shapes this workspace actually uses: structs with named fields, tuple and
//! newtype structs, enums with unit / tuple / struct variants, simple type
//! generics (`Foo<T>`), and the `#[serde(default)]` field attribute. The
//! generated code targets the sibling `serde` shim's value-tree model and
//! follows serde's externally-tagged enum representation.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write;

type Toks = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    default: bool,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Data {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skip leading attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(toks: &mut Toks) -> bool {
    let mut default = false;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                default |= attr_is_serde_default(&g);
            }
            other => panic!("expected attribute body, got {other:?}"),
        }
    }
    default
}

fn attr_is_serde_default(attr: &Group) -> bool {
    let mut it = attr.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return false;
    };
    let mut has_default = false;
    for t in args.stream() {
        match &t {
            TokenTree::Ident(i) if i.to_string() == "default" => has_default = true,
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde shim does not support #[serde({other})]"),
        }
    }
    has_default
}

fn skip_vis(toks: &mut Toks) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Collect type-parameter names from `<...>` if present. Lifetimes and const
/// params are not supported (the workspace derives none).
fn parse_generics(toks: &mut Toks) -> Vec<String> {
    let mut params = Vec::new();
    if !matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return params;
    }
    toks.next();
    let mut depth = 1i32;
    let mut at_param = true;
    while depth > 0 {
        match toks.next().expect("unbalanced generics in derive input") {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => at_param = true,
                ':' if depth == 1 => at_param = false,
                '\'' => panic!("serde shim: lifetime generics unsupported in derives"),
                _ => {}
            },
            TokenTree::Ident(i) => {
                let s = i.to_string();
                if at_param {
                    assert!(s != "const", "serde shim: const generics unsupported");
                    params.push(s);
                    at_param = false;
                }
            }
            _ => {}
        }
    }
    params
}

/// Consume a type, stopping before a top-level `,` (angle-bracket aware).
fn skip_type(toks: &mut Toks) {
    let mut depth = 0i32;
    loop {
        match toks.peek() {
            None => return,
            Some(TokenTree::Punct(p)) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    return;
                }
                toks.next();
                match c {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            Some(_) => {
                toks.next();
            }
        }
    }
}

fn parse_named_fields(group: Group) -> Vec<Field> {
    let mut toks = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field name, got {other:?}"),
                }
                skip_type(&mut toks);
                if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    toks.next();
                }
                fields.push(Field {
                    name: name.to_string(),
                    default,
                });
            }
            other => panic!("unexpected token in struct fields: {other:?}"),
        }
    }
    fields
}

/// Count fields of a tuple struct / tuple variant body.
fn count_tuple_fields(group: Group) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for t in group.stream() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(group: Group) -> Vec<Variant> {
    let mut toks = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                let body = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = match toks.next() {
                            Some(TokenTree::Group(g)) => g,
                            _ => unreachable!(),
                        };
                        Body::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = match toks.next() {
                            Some(TokenTree::Group(g)) => g,
                            _ => unreachable!(),
                        };
                        Body::Tuple(count_tuple_fields(g))
                    }
                    _ => Body::Unit,
                };
                if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    // Skip an explicit discriminant expression.
                    toks.next();
                    loop {
                        match toks.peek() {
                            None => break,
                            Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                            _ => {
                                toks.next();
                            }
                        }
                    }
                }
                if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    toks.next();
                }
                variants.push(Variant {
                    name: name.to_string(),
                    body,
                });
            }
            other => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let mut toks = ts.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    let generics = parse_generics(&mut toks);
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        panic!("serde shim: `where` clauses unsupported in derives");
    }
    let data = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Body::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Body::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Body::Unit),
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("derive supports struct/enum only, got `{other}`"),
    };
    Input {
        name,
        generics,
        data,
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

fn generics_strings(params: &[String], bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g = format!(
        "<{}>",
        params
            .iter()
            .map(|p| format!("{p}: {bound}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let ty_g = format!("<{}>", params.join(", "));
    (impl_g, ty_g)
}

/// Build a `Value::Object` expression from `(name, value-expr)` pairs.
fn object_expr(pairs: &[(String, String)]) -> String {
    let mut s = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for (name, expr) in pairs {
        write!(
            s,
            "__fields.push((::std::string::String::from(\"{name}\"), {expr}));"
        )
        .unwrap();
    }
    s.push_str("::serde::Value::Object(__fields) }");
    s
}

fn array_expr(items: &[String]) -> String {
    let mut s = String::from(
        "{ let mut __items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();",
    );
    for expr in items {
        write!(s, "__items.push({expr});").unwrap();
    }
    s.push_str("::serde::Value::Array(__items) }");
    s
}

fn ser_value(accessor: &str) -> String {
    format!("::serde::Serialize::to_json_value({accessor})")
}

/// Deserialize one named field out of an object-valued expression.
fn de_field(container: &str, ty_name: &str, f: &Field) -> String {
    let fallback = if f.default {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "::serde::Deserialize::from_json_value(&::serde::Value::Null).map_err(|_| \
             ::serde::Error::custom(\"missing field `{}` in {}\"))?",
            f.name, ty_name
        )
    };
    format!(
        "match {container}.get(\"{}\") {{ \
           ::core::option::Option::Some(__x) => ::serde::Deserialize::from_json_value(__x)?, \
           ::core::option::Option::None => {fallback}, \
         }}",
        f.name
    )
}

const IMPL_ATTRS: &str = "#[automatically_derived] #[allow(warnings, clippy::all)]";

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_strings(&input.generics, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Data::Struct(Body::Tuple(1)) => ser_value("&self.0"),
        Data::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| ser_value(&format!("&self.{i}"))).collect();
            array_expr(&items)
        }
        Data::Struct(Body::Named(fields)) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.name.clone(), ser_value(&format!("&self.{}", f.name))))
                .collect();
            object_expr(&pairs)
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => write!(
                        arms,
                        "Self::{vn} => \
                         ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                    )
                    .unwrap(),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            ser_value("__f0")
                        } else {
                            array_expr(&binds.iter().map(|b| ser_value(b)).collect::<Vec<_>>())
                        };
                        write!(
                            arms,
                            "Self::{vn}({}) => {},",
                            binds.join(", "),
                            object_expr(&[(vn.clone(), inner)])
                        )
                        .unwrap();
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = object_expr(
                            &fields
                                .iter()
                                .map(|f| (f.name.clone(), ser_value(&f.name)))
                                .collect::<Vec<_>>(),
                        );
                        write!(
                            arms,
                            "Self::{vn} {{ {} }} => {},",
                            binds.join(", "),
                            object_expr(&[(vn.clone(), inner)])
                        )
                        .unwrap();
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{IMPL_ATTRS} impl{impl_g} ::serde::Serialize for {name}{ty_g} {{ \
           fn to_json_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_strings(&input.generics, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Body::Unit) => format!(
            "match __v {{ \
               ::serde::Value::Null => ::core::result::Result::Ok({name}), \
               _ => ::core::result::Result::Err(::serde::Error::unexpected(\"null\", __v)), \
             }}"
        ),
        Data::Struct(Body::Tuple(1)) => {
            "::core::result::Result::Ok(Self(::serde::Deserialize::from_json_value(__v)?))"
                .to_string()
        }
        Data::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Array(__items) if __items.len() == {n} => \
                     ::core::result::Result::Ok(Self({})), \
                   _ => ::core::result::Result::Err(\
                     ::serde::Error::unexpected(\"{n}-element array\", __v)), \
                 }}",
                items.join(", ")
            )
        }
        Data::Struct(Body::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, de_field("__v", name, f)))
                .collect();
            format!(
                "match __v {{ \
                   ::serde::Value::Object(_) => ::core::result::Result::Ok(Self {{ {} }}), \
                   _ => ::core::result::Result::Err(\
                     ::serde::Error::unexpected(\"object\", __v)), \
                 }}",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "{IMPL_ATTRS} impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{ \
           fn from_json_value(__v: &::serde::Value) -> \
             ::core::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.body {
            Body::Unit => write!(
                unit_arms,
                "\"{vn}\" => ::core::result::Result::Ok(Self::{vn}),"
            )
            .unwrap(),
            Body::Tuple(1) => write!(
                data_arms,
                "\"{vn}\" => ::core::result::Result::Ok(\
                   Self::{vn}(::serde::Deserialize::from_json_value(__inner)?)),"
            )
            .unwrap(),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?"))
                    .collect();
                write!(
                    data_arms,
                    "\"{vn}\" => match __inner {{ \
                       ::serde::Value::Array(__items) if __items.len() == {n} => \
                         ::core::result::Result::Ok(Self::{vn}({})), \
                       _ => ::core::result::Result::Err(\
                         ::serde::Error::unexpected(\"{n}-element array\", __inner)), \
                     }},",
                    items.join(", ")
                )
                .unwrap();
            }
            Body::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, de_field("__inner", name, f)))
                    .collect();
                write!(
                    data_arms,
                    "\"{vn}\" => match __inner {{ \
                       ::serde::Value::Object(_) => \
                         ::core::result::Result::Ok(Self::{vn} {{ {} }}), \
                       _ => ::core::result::Result::Err(\
                         ::serde::Error::unexpected(\"object\", __inner)), \
                     }},",
                    inits.join(", ")
                )
                .unwrap();
            }
        }
    }
    format!(
        "match __v {{ \
           ::serde::Value::String(__s) => match __s.as_str() {{ \
             {unit_arms} \
             __other => ::core::result::Result::Err(::serde::Error::custom(\
               ::std::format!(\"unknown {name} variant `{{}}`\", __other))), \
           }}, \
           ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
             let (__tag, __inner) = (&__fields[0].0, &__fields[0].1); \
             let _ = __inner; \
             match __tag.as_str() {{ \
               {data_arms} \
               __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant `{{}}`\", __other))), \
             }} \
           }} \
           _ => ::core::result::Result::Err(::serde::Error::unexpected(\
             \"variant string or single-key object\", __v)), \
         }}"
    )
}
