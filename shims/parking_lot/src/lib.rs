//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses. Semantics match `parking_lot`'s
//! documented behaviour: locks are not poisoned — a panic while holding the
//! lock simply releases it.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (`parking_lot::Mutex` subset).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (`parking_lot::RwLock` subset).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
