//! Offline stand-in for the `arc-swap` crate: an atomically swappable
//! `Arc<T>` whose readers never take a lock.
//!
//! The surface matches the subset of upstream `arc-swap` this workspace
//! uses — [`ArcSwap::new`], [`ArcSwap::load`] (returning a cheap [`Guard`]),
//! [`ArcSwap::load_full`], and [`ArcSwap::store`] — but the implementation
//! is epoch-based reclamation over `std` atomics rather than upstream's
//! hybrid debt lists:
//!
//! - A global epoch counter only ever increments. Every publishing `store`
//!   swaps the raw pointer first, then bumps the epoch, and retires the old
//!   `Arc` tagged with the pre-bump epoch.
//! - A reader *pins* its thread's slot to the current epoch before loading
//!   the pointer (store-then-recheck closes the race with a concurrent
//!   bump), and unpins when the [`Guard`] drops. The pin/unpin pair is two
//!   uncontended atomic stores — no CAS loop in the common case, no lock.
//! - A retired `Arc` is dropped once its retirement epoch is below every
//!   pinned epoch: any reader that could still dereference the old pointer
//!   pinned at or before the swap, so it holds the reclamation back until
//!   its guard drops.
//!
//! Writers serialize through a per-`ArcSwap` mutex (publication is rare and
//! building the next value dominates anyway); reads stay wait-free under
//! any number of concurrent writers. Long-lived guards delay reclamation,
//! never correctness — drop guards promptly on hot paths.

use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// The global publication epoch. Starts at 1 so a pinned slot can use 0 as
/// its "idle" marker.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// One reader thread's pin state. Slots are registered once per thread and
/// recycled when the thread exits (`claimed` flips back to false); the
/// registry only ever grows to the peak number of live reader threads.
struct Slot {
    /// Epoch this thread is pinned at; 0 = not currently reading.
    pinned: AtomicU64,
    /// Claimed by a live thread.
    claimed: AtomicBool,
}

static SLOTS: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

/// The smallest epoch any reader is pinned at (`u64::MAX` when nobody
/// reads). Retired values tagged with a smaller epoch are unreachable.
fn min_pinned_epoch() -> u64 {
    let slots = SLOTS.lock().unwrap_or_else(|e| e.into_inner());
    slots
        .iter()
        .map(|s| {
            let p = s.pinned.load(SeqCst);
            if p == 0 {
                u64::MAX
            } else {
                p
            }
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// Per-thread handle to a registry slot, with a reentrancy depth so nested
/// guards pin once. Dropped on thread exit: unpins and releases the slot.
struct SlotHandle {
    slot: Arc<Slot>,
    depth: std::cell::Cell<u64>,
}

impl SlotHandle {
    fn acquire() -> SlotHandle {
        let mut slots = SLOTS.lock().unwrap_or_else(|e| e.into_inner());
        let slot = slots
            .iter()
            .find(|s| {
                s.claimed
                    .compare_exchange(false, true, SeqCst, SeqCst)
                    .is_ok()
            })
            .cloned()
            .unwrap_or_else(|| {
                let s = Arc::new(Slot {
                    pinned: AtomicU64::new(0),
                    claimed: AtomicBool::new(true),
                });
                slots.push(s.clone());
                s
            });
        SlotHandle {
            slot,
            depth: std::cell::Cell::new(0),
        }
    }
}

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.slot.pinned.store(0, SeqCst);
        self.slot.claimed.store(false, SeqCst);
    }
}

thread_local! {
    static HANDLE: SlotHandle = SlotHandle::acquire();
}

/// Pin the calling thread at the current epoch. The store-then-recheck loop
/// guarantees that once we return, every writer either sees our pin or has
/// a retirement epoch at or above it.
fn pin() {
    HANDLE.with(|h| {
        if h.depth.get() == 0 {
            loop {
                let e = EPOCH.load(SeqCst);
                h.slot.pinned.store(e, SeqCst);
                if EPOCH.load(SeqCst) == e {
                    break;
                }
            }
        }
        h.depth.set(h.depth.get() + 1);
    });
}

fn unpin() {
    // `try_with`: during thread teardown the TLS value may already be gone,
    // in which case SlotHandle::drop has unpinned the slot for us.
    let _ = HANDLE.try_with(|h| {
        let d = h.depth.get() - 1;
        h.depth.set(d);
        if d == 0 {
            h.slot.pinned.store(0, SeqCst);
        }
    });
}

/// An `Arc` retired by a store, droppable once `epoch < min_pinned_epoch()`.
struct Retired<T> {
    epoch: u64,
    /// Held solely so the old value drops here, not under a reader.
    #[allow(dead_code)]
    value: Arc<T>,
}

/// An atomically swappable `Arc<T>` with lock-free, wait-free readers.
pub struct ArcSwap<T> {
    ptr: AtomicPtr<T>,
    /// Serializes writers and guards the retire list.
    retired: Mutex<Vec<Retired<T>>>,
}

// The raw pointer always originates from `Arc<T>`, so the usual Arc bounds
// make cross-thread sharing sound.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            retired: Mutex::new(Vec::new()),
        }
    }

    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Borrow the current value without cloning the `Arc`. The guard pins
    /// this thread's epoch slot; reclamation of superseded values waits for
    /// it, so keep guards short-lived on hot paths.
    pub fn load(&self) -> Guard<'_, T> {
        pin();
        let ptr = self.ptr.load(SeqCst);
        Guard {
            ptr,
            _swap: PhantomData,
        }
    }

    /// Clone out the current `Arc`. Pins only for the duration of the call.
    pub fn load_full(&self) -> Arc<T> {
        pin();
        let ptr = self.ptr.load(SeqCst);
        // Safety: while pinned, `ptr`'s strong count cannot reach zero (it
        // is either current or retired at an epoch >= ours).
        unsafe { Arc::increment_strong_count(ptr) };
        unpin();
        unsafe { Arc::from_raw(ptr) }
    }

    /// Publish a new value. Readers that loaded before the swap keep their
    /// old snapshot until their guards drop; readers that pin after the swap
    /// see the new value — there is no in-between.
    pub fn store(&self, new: Arc<T>) {
        let mut retired = self.retired.lock().unwrap_or_else(|e| e.into_inner());
        let new_ptr = Arc::into_raw(new) as *mut T;
        let old_ptr = self.ptr.swap(new_ptr, SeqCst);
        // Tag the retiree with the pre-bump epoch: any reader still able to
        // dereference `old_ptr` pinned at or below it (it pinned before the
        // swap), so `epoch < min_pinned` proves unreachability.
        let epoch = EPOCH.fetch_add(1, SeqCst);
        retired.push(Retired {
            epoch,
            // Safety: this is the Arc handed to a previous `store`/`new`.
            value: unsafe { Arc::from_raw(old_ptr) },
        });
        let min = min_pinned_epoch();
        retired.retain(|r| r.epoch >= min);
    }

    /// Shorthand for `store(Arc::new(value))`.
    pub fn swap_pointee(&self, value: T) {
        self.store(Arc::new(value));
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive self (their lifetime
        // borrows it), so both the current pointer and every retiree die.
        let ptr = *self.ptr.get_mut();
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

/// A pinned borrow of the value an [`ArcSwap`] held at [`ArcSwap::load`]
/// time. `!Send` by construction (must unpin on the loading thread).
pub struct Guard<'a, T> {
    ptr: *const T,
    _swap: PhantomData<&'a ArcSwap<T>>,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: pinned since before the pointer was loaded; see `store`.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        unpin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A payload whose two halves must always agree — a torn read would
    /// surface as a mismatch — plus a drop counter for reclamation checks.
    struct Pair {
        a: u64,
        b: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Pair {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    fn pair(v: u64, drops: &Arc<AtomicUsize>) -> Arc<Pair> {
        Arc::new(Pair {
            a: v,
            b: v,
            drops: drops.clone(),
        })
    }

    #[test]
    fn store_then_load_sees_new_value() {
        let drops = Arc::new(AtomicUsize::new(0));
        let s = ArcSwap::new(pair(1, &drops));
        assert_eq!(s.load().a, 1);
        s.store(pair(2, &drops));
        assert_eq!(s.load().a, 2);
        assert_eq!(s.load_full().b, 2);
    }

    #[test]
    fn old_value_survives_while_guard_lives() {
        let drops = Arc::new(AtomicUsize::new(0));
        let s = ArcSwap::new(pair(1, &drops));
        let g = s.load();
        s.store(pair(2, &drops));
        // The superseded value is still pinned by `g`.
        assert_eq!(g.a, 1);
        assert_eq!(drops.load(SeqCst), 0);
        drop(g);
        // The next store reclaims it (reclamation piggybacks on stores).
        s.store(pair(3, &drops));
        assert!(drops.load(SeqCst) >= 1);
    }

    #[test]
    fn load_full_outlives_the_swap() {
        let drops = Arc::new(AtomicUsize::new(0));
        let s = ArcSwap::new(pair(7, &drops));
        let kept = s.load_full();
        for v in 0..100 {
            s.store(pair(v, &drops));
        }
        assert_eq!((kept.a, kept.b), (7, 7));
        drop(s);
        drop(kept);
        // Everything created was eventually dropped: 1 initial + 100 stored.
        assert_eq!(drops.load(SeqCst), 101);
    }

    #[test]
    fn concurrent_readers_never_tear_and_see_monotone_versions() {
        let drops = Arc::new(AtomicUsize::new(0));
        let s = Arc::new(ArcSwap::new(pair(0, &drops)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let s = &s;
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(SeqCst) {
                        let g = s.load();
                        // Racing writers publish in arbitrary order, but
                        // every loaded value must be internally consistent.
                        assert_eq!(g.a, g.b, "torn read");
                    }
                });
            }
            for w in 0..2 {
                let s = &s;
                let drops = &drops;
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        s.store(pair(4_000 + i * 2 + w, drops));
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, SeqCst);
        });
        let total = 1 + 2 * 2_000;
        drop(s);
        assert_eq!(drops.load(SeqCst), total, "leaked retired values");
    }

    #[test]
    fn monotone_under_single_writer() {
        let drops = Arc::new(AtomicUsize::new(0));
        let s = Arc::new(ArcSwap::new(pair(0, &drops)));
        std::thread::scope(|scope| {
            let reader = {
                let s = &s;
                scope.spawn(move || {
                    let mut seen = 0u64;
                    let mut last = 0u64;
                    while last < 999 {
                        let v = s.load().a;
                        assert!(v >= last);
                        last = v;
                        seen += 1;
                    }
                    seen
                })
            };
            for i in 1..=999u64 {
                s.store(pair(i, &drops));
            }
            assert!(reader.join().unwrap() > 0);
        });
    }
}
