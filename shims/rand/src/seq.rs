//! Sequence-related random operations (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random selection / permutation over slices.
pub trait SliceRandom {
    type Item;

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}

#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(11);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut r).unwrap()] = true;
        }
        assert_eq!(seen, [true; 4]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
