//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! deterministic subset of the `rand` API: `Rng` (gen / gen_bool / gen_range /
//! gen_ratio), `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom` (choose / shuffle). The value streams are NOT
//! bit-compatible with upstream `rand` — `StdRng` here is xoshiro256++ seeded
//! through SplitMix64 — but they are fully deterministic for a given seed,
//! which is the property every experiment in this repository depends on
//! (DESIGN.md §5).

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "from all possible values" via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (same construction as
    /// upstream rand's `Standard` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform draw over an interval. The [`SampleRange`] impls are
/// blanket impls over this trait, mirroring upstream rand's structure — that
/// shape matters for inference: `rng.gen_range(20..200)` must unify the
/// output type with the literals' integer variable.
pub trait SampleUniform: Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Widening-multiply rejection-free mapping; bias is < 2^-64
                // per draw, irrelevant at simulation scales.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as $wide).wrapping_add(v as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (low as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                low + f * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                low + f * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value API, blanket-implemented for every bit
/// source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_ratio_frequency() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..50_000).filter(|_| r.gen_ratio(1, 10)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
