//! Deterministic RNG implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna), seeded by
/// expanding a `u64` through SplitMix64 — the reference seeding procedure.
/// Not cryptographic; statistically solid and fast, and above all *stable*:
/// this file defines the byte streams every figure in EXPERIMENTS.md is
/// derived from, so its output must never change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }
}

impl StdRng {
    /// A stable digest of the generator's current position in its stream.
    ///
    /// Two `StdRng`s have the same cursor iff they will produce the same
    /// future output (the xoshiro state *is* the position). Checkpoint
    /// validation uses this to prove a replayed run's RNGs sit exactly where
    /// the original run's did, without serializing or restoring raw state.
    pub fn cursor(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in self.s {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_stream_is_frozen() {
        // Pin the exact output so accidental algorithm changes are caught:
        // every experiment's numbers depend on this stream.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn cursor_tracks_stream_position() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(a.cursor(), b.cursor());
        a.next_u64();
        assert_ne!(a.cursor(), b.cursor(), "advancing moves the cursor");
        b.next_u64();
        assert_eq!(a.cursor(), b.cursor(), "same draws, same cursor");
        assert_ne!(a.cursor(), StdRng::seed_from_u64(4).cursor());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
