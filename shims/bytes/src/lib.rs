//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted slices —
//! nothing in this workspace shares buffers), and the `Buf`/`BufMut` traits
//! cover exactly the accessor set the DNS wire codec uses. Big-endian network
//! byte order throughout, as in the real crate.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side append operations over a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEADBEEF);
        b.put_slice(&[1, 2]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        let mut s: &[u8] = &frozen;
        assert_eq!(s.get_u8(), 0xAB);
        assert_eq!(s.get_u16(), 0x1234);
        assert_eq!(s.get_u32(), 0xDEADBEEF);
        assert_eq!(s.remaining(), 2);
        s.advance(2);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn bytesmut_indexable() {
        let mut b = BytesMut::new();
        b.put_u32(0);
        b[1..3].copy_from_slice(&[9, 9]);
        assert_eq!(&b[..], &[0, 9, 9, 0]);
    }
}
