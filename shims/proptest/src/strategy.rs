//! Core [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Combinator methods require `Self: Sized`, which keeps the trait
/// object-safe — `Box<dyn Strategy<Value = T>>` is how `prop_oneof!` erases
/// heterogeneous strategy types.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

/// Type-erase a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Weighted union over same-valued strategies.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight arithmetic covers the full range")
    }
}

/// Bare strings are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::Regex::compile(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e:?}"))
            .generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}
