//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for a generated collection.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates don't grow the set; bail out after enough attempts so a
        // small value domain can't loop forever.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(100) + 100 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

/// A set of up to `size` distinct elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
