//! Offline stand-in for `proptest`.
//!
//! Generates random values from composable strategies, with deterministic
//! per-test seeding (derived from the test's module path and name) so runs
//! are reproducible. Unlike real proptest there is **no shrinking**: a
//! failing case panics with the case number, and re-running reproduces it
//! exactly. The supported surface is what this workspace uses: `proptest!`,
//! `prop_assert*`, `prop_oneof!`, `any`, `Just`, `prop_map`, ranges,
//! `collection::{vec, btree_set}`, `option::of`, `string::string_regex`,
//! tuple strategies, and `sample::Index`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::Config as ProptestConfig;

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Uniform choice between heterogeneous strategies producing the same value
/// type. Optional `weight => strategy` arms bias the choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $( (($weight) as u32, $crate::strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}
