//! The test runner: deterministic seeding, case loop, failure reporting.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Wrap an explicitly seeded generator (used by in-crate tests).
    pub fn from_std(inner: StdRng) -> Self {
        TestRng(inner)
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// A failed test case (produced by `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` at the crate root).
#[derive(Clone, Debug)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// FNV-1a, so each test gets a stable seed from its own name.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run `test` over `config.cases` values generated from `strategy`.
pub fn run<S: Strategy>(
    config: &Config,
    name: &str,
    strategy: S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng(StdRng::seed_from_u64(seed_from_name(name)));
    for case in 0..config.cases {
        if let Err(e) = test(strategy.new_value(&mut rng)) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}
