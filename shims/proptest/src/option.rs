//! `option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

/// `None` or `Some(inner)`, evenly split.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
