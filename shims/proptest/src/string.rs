//! `string::string_regex` — generate strings matching a regex subset.
//!
//! Supported syntax (what the workspace's patterns use): literals, escapes
//! (`\.` `\r` `\n` `\t` `\\` `\PC`), character classes with ranges, leading
//! `^` negation and `&&` intersection (`[ -~&&[^\r\n]]`), groups with
//! alternation `(com|net)`, and the quantifiers `{n}` `{n,m}` `{n,}` `?`
//! `*` `+`. Generation picks uniformly: a repetition count from the
//! quantifier range, a character from the (sorted) class set, an alternative
//! from a group.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

/// Unbounded quantifiers (`*`, `+`, `{n,}`) cap out at `min + 8` repetitions.
const UNBOUNDED_EXTRA: u32 = 8;

/// ASCII universe used for negated classes and `.`.
fn ascii_universe() -> BTreeSet<char> {
    let mut set: BTreeSet<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    set.insert('\t');
    set.insert('\n');
    set.insert('\r');
    set
}

/// `\PC` — "not Unicode Other": printable characters, including a few
/// multi-byte ones so extractors see non-ASCII input.
fn printable_universe() -> BTreeSet<char> {
    let mut set: BTreeSet<char> = (0x20u8..=0x7e).map(|b| b as char).collect();
    for c in ['\u{e9}', '\u{df}', '\u{101}', '\u{4e2d}', '\u{1f600}'] {
        set.insert(c);
    }
    set
}

#[derive(Debug)]
enum NodeKind {
    /// Sorted candidate characters.
    Class(Vec<char>),
    /// Alternative sub-sequences.
    Group(Vec<Vec<Node>>),
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    min: u32,
    max: u32,
}

/// A compiled generator.
#[derive(Debug)]
pub struct Regex {
    nodes: Vec<Node>,
}

/// The strategy returned by [`string_regex`].
#[derive(Debug)]
pub struct RegexGeneratorStrategy {
    regex: Regex,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        self.regex.generate(rng)
    }
}

/// Compile `pattern` into a string-generating strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    Ok(RegexGeneratorStrategy {
        regex: Regex::compile(pattern)?,
    })
}

impl Regex {
    pub fn compile(pattern: &str) -> Result<Regex, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let nodes = p.sequence()?;
        if p.pos != p.chars.len() {
            return Err(Error(format!(
                "unexpected `{}` at offset {}",
                p.chars[p.pos], p.pos
            )));
        }
        Ok(Regex { nodes })
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_seq(&self.nodes, rng, &mut out);
        out
    }
}

fn generate_seq(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
    for node in nodes {
        let reps = rng.gen_range(node.min..=node.max);
        for _ in 0..reps {
            match &node.kind {
                NodeKind::Class(chars) => {
                    out.push(chars[rng.gen_range(0..chars.len())]);
                }
                NodeKind::Group(alts) => {
                    let alt = &alts[rng.gen_range(0..alts.len())];
                    generate_seq(alt, rng, out);
                }
            }
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Parse a concatenation, stopping at `)` / `|` / end of input.
    fn sequence(&mut self) -> Result<Vec<Node>, Error> {
        let mut nodes = Vec::new();
        loop {
            let kind = match self.peek() {
                None | Some(')') | Some('|') => break,
                Some('[') => {
                    self.pos += 1;
                    NodeKind::Class(self.class()?)
                }
                Some('(') => {
                    self.pos += 1;
                    let mut alts = vec![self.sequence()?];
                    while self.peek() == Some('|') {
                        self.pos += 1;
                        alts.push(self.sequence()?);
                    }
                    if self.bump() != Some(')') {
                        return Err(Error("unclosed group".into()));
                    }
                    NodeKind::Group(alts)
                }
                Some('.') => {
                    self.pos += 1;
                    let mut set = ascii_universe();
                    set.remove(&'\n');
                    NodeKind::Class(set.into_iter().collect())
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.escape()? {
                        Escaped::Char(c) => NodeKind::Class(vec![c]),
                        Escaped::Set(set) => NodeKind::Class(set.into_iter().collect()),
                    }
                }
                Some(c) => {
                    self.pos += 1;
                    NodeKind::Class(vec![c])
                }
            };
            let (min, max) = self.quantifier()?;
            nodes.push(Node { kind, min, max });
        }
        Ok(nodes)
    }

    /// Parse one escape (after the backslash has been consumed).
    fn escape(&mut self) -> Result<Escaped, Error> {
        match self.bump() {
            Some('n') => Ok(Escaped::Char('\n')),
            Some('r') => Ok(Escaped::Char('\r')),
            Some('t') => Ok(Escaped::Char('\t')),
            Some('P') | Some('p') => {
                // Only the \PC ("not Other") category is supported.
                match self.bump() {
                    Some('C') => Ok(Escaped::Set(printable_universe())),
                    other => Err(Error(format!("unsupported category escape {other:?}"))),
                }
            }
            Some(
                c @ ('.' | '\\' | '/' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '^' | '$'
                | '*' | '+' | '?' | '"'),
            ) => Ok(Escaped::Char(c)),
            other => Err(Error(format!("unsupported escape {other:?}"))),
        }
    }

    /// Parse a class body (after `[`), consuming the closing `]`.
    fn class(&mut self) -> Result<Vec<char>, Error> {
        let set = self.class_set()?;
        if self.bump() != Some(']') {
            return Err(Error("unclosed character class".into()));
        }
        if set.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(set.into_iter().collect())
    }

    /// Parse class items up to (not consuming) the closing `]`, handling
    /// leading `^` negation and `&&` intersection.
    fn class_set(&mut self) -> Result<BTreeSet<char>, Error> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut set = BTreeSet::new();
        loop {
            match self.peek() {
                None => return Err(Error("unclosed character class".into())),
                Some(']') => break,
                Some('&') if self.chars.get(self.pos + 1) == Some(&'&') => {
                    self.pos += 2;
                    let rhs = if self.peek() == Some('[') {
                        self.pos += 1;
                        let inner = self.class_set()?;
                        if self.bump() != Some(']') {
                            return Err(Error("unclosed nested class".into()));
                        }
                        inner
                    } else {
                        self.class_set()?
                    };
                    let base = if negated { negate(&set) } else { set };
                    let mut merged: BTreeSet<char> = base.intersection(&rhs).copied().collect();
                    // The intersection absorbs the pending negation; finish
                    // any remaining items (none in practice) and return.
                    while self.peek() != Some(']') {
                        if self.peek().is_none() {
                            return Err(Error("unclosed character class".into()));
                        }
                        let extra = self.class_item()?;
                        merged.extend(extra);
                    }
                    return Ok(merged);
                }
                Some(_) => {
                    set.extend(self.class_item()?);
                }
            }
        }
        Ok(if negated { negate(&set) } else { set })
    }

    /// One class item: a literal/escape, possibly extended to a range.
    fn class_item(&mut self) -> Result<BTreeSet<char>, Error> {
        let start = match self.bump() {
            Some('\\') => match self.escape()? {
                Escaped::Char(c) => c,
                Escaped::Set(set) => return Ok(set),
            },
            Some(c) => c,
            None => return Err(Error("unclosed character class".into())),
        };
        // `a-z` range, unless the `-` is trailing (then it's a literal).
        if self.peek() == Some('-') && !matches!(self.chars.get(self.pos + 1), None | Some(']')) {
            self.pos += 1;
            let end = match self.bump() {
                Some('\\') => match self.escape()? {
                    Escaped::Char(c) => c,
                    Escaped::Set(_) => return Err(Error("set escape in range".into())),
                },
                Some(c) => c,
                None => return Err(Error("unclosed character class".into())),
            };
            if end < start {
                return Err(Error(format!("inverted range {start}-{end}")));
            }
            return Ok((start..=end).collect());
        }
        Ok(std::iter::once(start).collect())
    }

    /// Optional quantifier; defaults to exactly one.
    fn quantifier(&mut self) -> Result<(u32, u32), Error> {
        match self.peek() {
            Some('?') => {
                self.pos += 1;
                Ok((0, 1))
            }
            Some('*') => {
                self.pos += 1;
                Ok((0, UNBOUNDED_EXTRA))
            }
            Some('+') => {
                self.pos += 1;
                Ok((1, 1 + UNBOUNDED_EXTRA))
            }
            Some('{') => {
                self.pos += 1;
                let min = self.number()?;
                let max = match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                        if self.peek() == Some('}') {
                            min + UNBOUNDED_EXTRA
                        } else {
                            self.number()?
                        }
                    }
                    _ => min,
                };
                if self.bump() != Some('}') {
                    return Err(Error("unclosed quantifier".into()));
                }
                if max < min {
                    return Err(Error(format!("inverted quantifier {{{min},{max}}}")));
                }
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }

    fn number(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error("expected number in quantifier".into()));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| Error(format!("bad quantifier number {text:?}")))
    }
}

enum Escaped {
    Char(char),
    Set(BTreeSet<char>),
}

fn negate(set: &BTreeSet<char>) -> BTreeSet<char> {
    ascii_universe().difference(set).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        crate::test_runner::TestRng::from_std(rand::rngs::StdRng::seed_from_u64(5))
    }

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let re = Regex::compile(pattern).unwrap();
        let mut r = rng();
        (0..n).map(|_| re.generate(&mut r)).collect()
    }

    #[test]
    fn simple_class_lengths() {
        for s in gen_many("[a-z]{3,8}", 50) {
            assert!((3..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn alternation_and_escape() {
        for s in gen_many("[a-z]{1,8}\\.(com|net)", 50) {
            let (host, tld) = s.rsplit_once('.').unwrap();
            assert!(!host.is_empty() && host.len() <= 8, "{s:?}");
            assert!(tld == "com" || tld == "net", "{s:?}");
        }
    }

    #[test]
    fn intersection_excludes_newlines() {
        for s in gen_many("[ -~&&[^\\r\\n]]{0,40}", 50) {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_category_is_total() {
        for s in gen_many("\\PC{0,100}", 20) {
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literal_and_trailing_dash() {
        for s in gen_many("/[a-z0-9/._-]{0,30}", 30) {
            assert!(s.starts_with('/'), "{s:?}");
        }
        for s in gen_many("[<>\"a-z= /]{0,20}", 30) {
            assert!(s
                .chars()
                .all(|c| "<>\"= /".contains(c) || c.is_ascii_lowercase()));
        }
    }
}
