//! `any::<T>()` — canonical strategies for plain types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// A type with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.gen())
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
