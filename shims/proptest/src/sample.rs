//! `sample::Index` — a size-independent index into collections.

/// An abstract index: generated once, projectable onto any non-empty
/// collection length via [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Project onto `0..size`. Panics if `size` is zero.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "cannot index an empty collection");
        ((self.0 as u128 * size as u128) >> 64) as usize
    }
}
