//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API is provided, delegating to `std::thread::scope`
//! (stable since 1.63). The call shape mirrors `crossbeam::thread::scope`, so
//! swapping the real crate back in later is a no-op for callers.

pub mod thread {
    /// Scope handle passed to the `scope` closure; spawn borrows from the
    /// enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing `scope` call. As in
        /// crossbeam, the closure receives the scope again so it can spawn
        /// nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning borrowing threads; all threads are joined
    /// before this returns. Unlike crossbeam (which collects panics into the
    /// `Err` variant), a child-thread panic propagates on join — the `Result`
    /// wrapper is kept for call-site compatibility and is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut results = vec![0u64; 4];
        super::scope(|s| {
            let mut handles = Vec::new();
            for (chunk_in, chunk_out) in data.chunks(2).zip(results.chunks_mut(2)) {
                handles.push(s.spawn(move |_| {
                    for (i, o) in chunk_in.iter().zip(chunk_out.iter_mut()) {
                        *o = i * 10;
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30, 40]);
    }
}
