//! The JSON-like value tree shared by `serde` and `serde_json`.

/// A JSON number. Integers and floats are kept distinct so that integer
/// values round-trip exactly through text.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Negative integers (always stored negative).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Anything written with a fraction or exponent.
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9e18 => Some(f as i64),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < 1.9e19 => Some(f as u64),
            Number::Float(_) => None,
        }
    }
}

/// Numbers compare numerically across integer/float representations, the way
/// `serde_json::Value` equality behaves for values that round-trip through
/// text.
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => a >= 0 && a as u64 == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => a as f64 == b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => a as f64 == b,
        }
    }
}

/// A JSON document tree. Object keys keep insertion order (struct field
/// order), which makes every serialization byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing members index to `Null`, as in `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        if *other >= 0 {
                            n.as_u64() == Some(*other as u64)
                        } else {
                            n.as_i64() == Some(*other as i64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! impl_value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if n.as_u64() == Some(*other as u64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_uint!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if n.as_f64() == *other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_get() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::UInt(3))),
            ("b".into(), Value::Null),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["a"], 3u64);
        assert!(v.get("b").is_some());
        assert!(v.get("c").is_none());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn cross_variant_number_equality() {
        assert_eq!(
            Value::Number(Number::UInt(5)),
            Value::Number(Number::Int(5))
        );
        assert_ne!(
            Value::Number(Number::Int(-1)),
            Value::Number(Number::UInt(u64::MAX))
        );
    }
}
