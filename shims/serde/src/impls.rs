//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::unexpected(stringify!($t), v))
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                if *self >= 0 {
                    Value::Number(Number::UInt(*self as u64))
                } else {
                    Value::Number(Number::Int(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::unexpected(stringify!($t), v))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::unexpected(stringify!($t), v))
            }
        }
    )*};
}

impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::unexpected("bool", v))
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::unexpected("single-char string", v))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::unexpected("string", v))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::unexpected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// References and containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::unexpected("array", v)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::unexpected("array", v)),
        }
    }
}

/// Sets backed by hashing serialize in sorted-by-rendered-key order so output
/// is byte-deterministic regardless of hasher state.
impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_json_value).collect();
        items.sort_by(compare_values);
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(Error::unexpected("array", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Maps — keys render as strings, as JSON requires.
// ---------------------------------------------------------------------------

/// Render a map key. Strings pass through; numbers and other scalars use
/// their text form (serde_json's behaviour for integer keys).
fn key_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(Number::UInt(u)) => u.to_string(),
        Value::Number(Number::Int(i)) => i.to_string(),
        Value::Number(Number::Float(f)) => f.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

/// Recover a key from its string form by letting the key type parse either a
/// string value or — for integer keys — a numeric value.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_json_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_json_value(&Value::Number(Number::UInt(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_json_value(&Value::Number(Number::Int(i))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key {s:?}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
                .collect(),
            _ => Err(Error::unexpected("object", v)),
        }
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_json_value()), v.to_json_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_json_value(v)?)))
                .collect(),
            _ => Err(Error::unexpected("object", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($n,)+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple, got {} items", items.len())));
                        }
                        Ok(($($t::from_json_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::unexpected("array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Network addresses
// ---------------------------------------------------------------------------

impl Serialize for Ipv4Addr {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::unexpected("IPv4 address string", v))
    }
}

impl Serialize for Ipv6Addr {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Ipv6Addr {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::unexpected("IPv6 address string", v))
    }
}

// ---------------------------------------------------------------------------
// Value itself
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Total order over value trees for deterministic set rendering.
fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .partial_cmp(&y.as_f64())
            .unwrap_or(Ordering::Equal),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (i, j) in x.iter().zip(y.iter()) {
                let c = compare_values(i, j);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let c = ka.cmp(kb).then_with(|| compare_values(va, vb));
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i32::from_json_value(&(-3i32).to_json_value()), Ok(-3));
        assert_eq!(u64::from_json_value(&7u64.to_json_value()), Ok(7));
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()), Ok(1.5));
        assert_eq!(
            String::from_json_value(&"hi".to_json_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u8>::from_json_value(&Value::Null), Ok(None::<u8>));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1i32, 2.5f64), (-3, 0.0)];
        let back: Vec<(i32, f64)> = Deserialize::from_json_value(&v.to_json_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(4u32, "x".to_string());
        let back: BTreeMap<u32, String> = Deserialize::from_json_value(&m.to_json_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ip_roundtrip() {
        let ip: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(Ipv4Addr::from_json_value(&ip.to_json_value()), Ok(ip));
    }
}
