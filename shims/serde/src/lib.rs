//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-overhead visitor framework; this shim trades that
//! generality for a concrete JSON-like value tree ([`Value`]), which is all
//! the workspace needs: derived `Serialize`/`Deserialize` on plain data
//! types, rendered to text by the sibling `serde_json` shim. The derive
//! macros (re-exported here under the `derive` feature, exactly like real
//! serde) generate `to_json_value` / `from_json_value` implementations that
//! follow serde's externally-tagged data model, so swapping the real crates
//! back in changes no on-disk format in spirit: structs become objects in
//! field order, unit enum variants become strings, data-carrying variants
//! become single-key objects.

mod impls;
mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value that can render itself into the [`Value`] tree.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

/// A value that can be reconstructed from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization error (serialization is infallible in this model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Error for a `Value` variant mismatch.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Reconstruct a deserializable value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_json_value(v)
}
