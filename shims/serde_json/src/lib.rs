//! Offline stand-in for `serde_json`.
//!
//! Text rendering and parsing over the sibling `serde` shim's [`Value`]
//! tree. Output formats match real serde_json: compact `{"a":1}` separators,
//! two-space pretty printing, control-character-only string escaping, and
//! shortest-round-trip float rendering (floats always carry a fraction or
//! exponent so they re-parse as floats).

pub use serde::{Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Render any serializable value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Render any serializable value as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_json_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_json_value(&v)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Reconstruct a deserializable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_json_value(&v)?)
}

/// Render any serializable value as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Parse JSON bytes into any deserializable value.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error("invalid UTF-8 in JSON input".into()))?;
    from_str(s)
}

/// Serialize compact JSON into any [`std::io::Write`] sink.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error(format!("write failed: {e}")))
}

/// Deserialize a value from any [`std::io::Read`] source. Reads the source
/// to its end (one JSON document per source, the common file/log-record
/// case), so the whole payload is validated including trailing garbage.
pub fn from_reader<R: std::io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader
        .read_to_end(&mut buf)
        .map_err(|e| Error(format!("read failed: {e}")))?;
    from_slice(&buf)
}

#[doc(hidden)]
pub fn __value_of<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

/// Build a [`Value`] from JSON-like syntax. Object keys must be string
/// literals; values are arbitrary serializable expressions (including nested
/// `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::__value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::__value_of(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::__value_of(&$other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: &Number, out: &mut String) {
    use std::fmt::Write;
    match *n {
        Number::Int(i) => write!(out, "{i}").unwrap(),
        Number::UInt(u) => write!(out, "{u}").unwrap(),
        // Debug formatting keeps a trailing `.0` on integral floats, so the
        // value re-parses as a float (serde_json behaves the same way).
        Number::Float(f) if f.is_finite() => write!(out, "{f:?}").unwrap(),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice: validating from the current position to
                    // the end of input per character would make string
                    // parsing quadratic in document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error(format!("bad number {text:?}")))?,
            )
        } else if text.starts_with('-') {
            Number::Int(
                text.parse::<i64>()
                    .map_err(|_| Error(format!("bad number {text:?}")))?,
            )
        } else {
            Number::UInt(
                text.parse::<u64>()
                    .map_err(|_| Error(format!("bad number {text:?}")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "a": 1,
            "b": json!([1.5, "x", json!(null), true]),
            "c": json!({ "nested": -2 }),
            "d": Option::<u32>::None,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"a":1,"b":[1.5,"x",null,true],"c":{"nested":-2},"d":null}"#
        );
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({ "k": json!([1]) });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\u{1}é".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_float_stays_float() {
        let text = to_string(&json!(1.0f64)).unwrap();
        assert_eq!(text, "1.0");
    }

    #[test]
    fn unicode_escape_parses() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn writer_reader_roundtrip_through_io() {
        let v = json!({ "rounds": 52, "title": "café\n", "opt": Option::<i64>::None });
        let mut buf: Vec<u8> = Vec::new();
        to_writer(&mut buf, &v).unwrap();
        assert_eq!(buf, to_string(&v).unwrap().into_bytes());
        let back: Value = from_reader(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_and_slice_roundtrip() {
        let v = json!([1, 2.5, "x"]);
        let bytes = to_vec(&v).unwrap();
        let back: Value = from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_reader_rejects_trailing_garbage_and_bad_utf8() {
        let err = from_reader::<_, Value>(std::io::Cursor::new(b"{} extra".as_slice()));
        assert!(err.is_err(), "trailing bytes must fail");
        let err = from_slice::<Value>(&[b'"', 0xff, b'"']);
        assert!(err.is_err(), "non-UTF-8 must fail");
    }

    #[test]
    fn from_reader_surfaces_io_errors() {
        struct Broken;
        impl std::io::Read for Broken {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
        }
        let err = from_reader::<_, Value>(Broken).unwrap_err();
        assert!(err.0.contains("read failed"), "got: {}", err.0);
    }
}
