//! The live health/SLO layer (DESIGN.md §12): every published round routes
//! through the watchdog, which stamps a [`SloHealth`] section into the
//! view's health payload — wall percentiles, publish lag, query
//! percentiles, and SLO burn counters. Contracts pinned here:
//!
//! - a clean run under the (generous) default budgets publishes **zero**
//!   violations;
//! - a stalled round is flagged in the *published* view within one publish
//!   interval — `stalled` set, the burn counter incremented, and the
//!   violation named;
//! - the flag clears on the next healthy round while the burn counter
//!   keeps its history;
//! - query-budget burn observed on the read path surfaces in the next
//!   published view;
//! - the health mutation never breaks the snapshot-consistency stamp
//!   ([`Reply::consistent`] holds on every health reply).

use serve::{daemon, LiveView, Query, ReplyBody, SloBudgets};

fn health_of(handle: &serve::ServeHandle) -> (serve::SloHealth, bool) {
    let reply = handle.query(&Query::Health);
    let consistent = reply.consistent();
    match reply.body {
        ReplyBody::Health(h) => (h.slo, consistent),
        other => panic!("health query answered {other:?}"),
    }
}

#[test]
fn clean_rounds_publish_zero_violations() {
    let (mut sink, handle) = daemon();
    for round in 1..=3 {
        sink.publish_watched(LiveView::synthetic(round, 16));
    }
    let (slo, consistent) = health_of(&handle);
    assert!(consistent, "health reply must stay snapshot-consistent");
    assert!(!slo.stalled, "clean rounds must not be flagged");
    assert_eq!(slo.rounds_over_budget, 0);
    assert_eq!(slo.queries_over_budget, 0);
    assert!(slo.last_violation.is_empty());
    assert_eq!(
        slo.round_wall_budget_ns,
        SloBudgets::default().round_wall_ns
    );
    assert_eq!(slo.query_budget_ns, SloBudgets::default().query_ns);
    assert!(
        slo.round_wall_p50_ns <= slo.round_wall_p999_ns,
        "percentiles must be ordered"
    );
    assert_eq!(handle.rounds_published(), 3);
}

#[test]
fn stalled_round_is_flagged_within_one_publish() {
    let (sink, handle) = daemon();
    let mut sink = sink.with_budgets(SloBudgets {
        round_wall_ns: 50_000_000, // 50 ms — a synthetic publish is far under
        round_virtual_ns: u64::MAX,
        query_ns: u64::MAX,
    });

    sink.publish_watched(LiveView::synthetic(1, 16));
    let (slo, _) = health_of(&handle);
    assert!(!slo.stalled, "healthy round wrongly flagged");
    assert_eq!(slo.rounds_over_budget, 0);

    // A round that took 1 s of wall clock: flagged in the very next
    // published view, with the violation named and the percentiles fed.
    sink.inject_stalled_round(1_000_000_000);
    sink.publish_watched(LiveView::synthetic(2, 16));
    let (slo, consistent) = health_of(&handle);
    assert!(consistent);
    assert!(slo.stalled, "stalled round not flagged");
    assert_eq!(slo.rounds_over_budget, 1);
    assert_eq!(slo.last_round_wall_ns, 1_000_000_000);
    assert!(
        slo.last_violation.contains("wall budget"),
        "violation must name the burned budget: {:?}",
        slo.last_violation
    );
    assert_eq!(
        slo.round_wall_p999_ns, 1_000_000_000,
        "the stall must dominate the wall tail"
    );

    // The next healthy round clears the flag but keeps the burn history.
    sink.publish_watched(LiveView::synthetic(3, 16));
    let (slo, _) = health_of(&handle);
    assert!(!slo.stalled, "flag must clear on a healthy round");
    assert_eq!(slo.rounds_over_budget, 1, "burn counter must be cumulative");
    assert!(
        !slo.last_violation.is_empty(),
        "last violation stays visible for operators"
    );
}

#[test]
fn virtual_budget_violations_are_flagged_too() {
    let (sink, handle) = daemon();
    let mut sink = sink.with_budgets(SloBudgets {
        round_wall_ns: u64::MAX,
        round_virtual_ns: 5_000,
        query_ns: u64::MAX,
    });
    obs::gauge("crawl.makespan_ns").set(10_000.0);
    sink.publish_watched(LiveView::synthetic(1, 16));
    obs::gauge("crawl.makespan_ns").set(0.0);
    let (slo, _) = health_of(&handle);
    assert!(slo.stalled, "virtual-budget burn not flagged");
    assert_eq!(slo.last_round_virtual_ns, 10_000);
    assert!(
        slo.last_violation.contains("virtual budget"),
        "violation must name the virtual budget: {:?}",
        slo.last_violation
    );
}

#[test]
fn query_budget_burn_surfaces_in_the_published_view() {
    let (sink, handle) = daemon();
    let mut sink = sink.with_budgets(SloBudgets {
        query_ns: 0, // every measurable query burns it
        ..SloBudgets::default()
    });
    sink.publish_watched(LiveView::synthetic(1, 16));
    for _ in 0..50 {
        let _ = handle.query(&Query::Status);
    }
    let burned = handle.queries_over_budget();
    assert!(burned > 0, "no query exceeded a zero budget");
    sink.publish_watched(LiveView::synthetic(2, 16));
    let (slo, consistent) = health_of(&handle);
    assert!(consistent);
    assert!(
        slo.queries_over_budget >= burned,
        "published burn counter ({}) lags the observed one ({burned})",
        slo.queries_over_budget
    );
}
