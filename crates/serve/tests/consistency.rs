//! Snapshot consistency under concurrent publication: readers hammering the
//! query API while rounds commit must always see a *single* round version —
//! every reply self-consistent per [`serve::Reply::consistent`], every
//! loaded view passing its build-time stamp. Two legs:
//!
//! - a synthetic leg driving the raw [`arc_swap::ArcSwap`] publication
//!   primitive with {1,2,4,8} writer threads (the daemon itself is
//!   single-writer; the primitive must not depend on that), and
//! - a live leg running the real pipeline at {1,2,4,8} crawl threads with
//!   reader threads querying throughout — which also pins that the served
//!   run's results stay byte-identical across crawl thread counts.

use arc_swap::ArcSwap;
use dangling_core::scenario::{Scenario, ScenarioConfig};
use serve::{daemon, LiveView, Query};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn synthetic_multi_writer_publication_never_tears() {
    for writers in [1usize, 2, 4, 8] {
        let swap = ArcSwap::new(Arc::new(LiveView::synthetic(0, 24)));
        let done = AtomicBool::new(false);
        let loads = AtomicU64::new(0);
        std::thread::scope(|s| {
            let swap = &swap;
            let done = &done;
            let loads = &loads;
            let writer_handles: Vec<_> = (0..writers)
                .map(|w| {
                    s.spawn(move || {
                        for i in 0..200u64 {
                            let seq = (w as u64) * 1_000 + i + 1;
                            swap.store(Arc::new(LiveView::synthetic(seq, 16 + (i % 9) as usize)));
                        }
                    })
                })
                .collect();
            for _ in 0..2 {
                s.spawn(move || {
                    // Load-then-check: on a loaded single-core host the
                    // writers can finish before a reader is first
                    // scheduled, so each reader must observe at least one
                    // view regardless.
                    loop {
                        let view = swap.load();
                        assert!(
                            view.consistent(),
                            "torn view at {writers} writers: seq {}",
                            view.seq
                        );
                        loads.fetch_add(1, Ordering::SeqCst);
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                });
            }
            for h in writer_handles {
                h.join().expect("writer thread");
            }
            done.store(true, Ordering::SeqCst);
        });
        assert!(
            loads.load(Ordering::SeqCst) > 0,
            "readers must have observed views at {writers} writers"
        );
    }
}

#[test]
fn live_pipeline_readers_see_single_round_versions() {
    fn study_cfg(threads: usize) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::at_scale(3000);
        cfg.world.n_fortune1000 = 20;
        cfg.world.n_global500 = 10;
        cfg.seed = 5;
        cfg.crawl_threads = threads;
        cfg.crawl_failure_rate = 0.02;
        cfg
    }

    let mut serialized: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (sink, handle) = daemon();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let handle = handle.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut torn = 0u64;
                    let mut queries = 0u64;
                    let mut max_round = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        for q in [
                            Query::Status,
                            Query::Signatures,
                            Query::Clusters,
                            Query::Health,
                            Query::Verdict {
                                fqdn: format!("reader-{r}.example"),
                            },
                        ] {
                            let reply = handle.query(&q);
                            queries += 1;
                            if !reply.consistent() {
                                torn += 1;
                            }
                            assert!(
                                reply.round >= max_round,
                                "published rounds must be monotone for a reader"
                            );
                            max_round = reply.round.max(max_round);
                        }
                    }
                    (queries, torn)
                })
            })
            .collect();

        let results = Scenario::new(study_cfg(threads))
            .incremental(true)
            .round_sink(Box::new(sink))
            .run();
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            let (queries, torn) = r.join().expect("reader thread");
            assert!(queries > 0);
            assert_eq!(
                torn, 0,
                "torn replies at {threads} crawl threads ({queries} queries)"
            );
        }
        assert!(handle.rounds_published() > 0);
        serialized.push(serde_json::to_string(&results).expect("results serialize"));
    }
    assert!(
        serialized.windows(2).all(|w| w[0] == w[1]),
        "served results diverged across crawl thread counts"
    );
}
