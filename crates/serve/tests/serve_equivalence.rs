//! Serving must be results-invisible: a full-horizon incremental run with a
//! live [`ServeSink`] attached — and reader threads hammering the query API
//! the entire time — must serialize [`dangling_core::StudyResults`] to the
//! *same bytes* as the plain `--incremental` run. The sink sees `&RunState`
//! only and publication is out-of-band, so this is the serve-mode extension
//! of the telemetry-invisibility contract (DESIGN.md §11).

use dangling_core::scenario::{Scenario, ScenarioConfig};
use serve::{daemon, Query};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Same full-window config as `incremental_equivalence`: campaigns only
/// start in 2020, so anything shorter leaves the streaming pass with no
/// abuse to publish and the comparison vacuous.
fn study_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(2000);
    cfg.world.n_fortune1000 = 30;
    cfg.world.n_global500 = 15;
    cfg.seed = 11;
    cfg.crawl_threads = threads;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

#[test]
fn serving_under_query_load_is_byte_identical() {
    // Plain incremental run: the baseline bytes.
    let baseline_results = Scenario::new(study_cfg(2)).incremental(true).run();
    assert!(
        !baseline_results.abuse.is_empty(),
        "scenario must detect abuse or the equivalence is vacuous"
    );
    let baseline = serde_json::to_string(&baseline_results).expect("results serialize");

    // Served run: same config, same thread count, but with the daemon
    // attached and a reader thread issuing every query shape in a tight
    // loop for the whole run.
    let (sink, handle) = daemon();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = handle.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut torn = 0u64;
            let mut queries = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let fqdn = handle
                    .view()
                    .verdicts
                    .keys()
                    .next()
                    .cloned()
                    .unwrap_or_else(|| "nowhere.example".into());
                for q in [
                    Query::Status,
                    Query::Health,
                    Query::Signatures,
                    Query::Clusters,
                    Query::Verdict { fqdn },
                ] {
                    let reply = handle.query(&q);
                    queries += 1;
                    if !reply.consistent() {
                        torn += 1;
                    }
                }
            }
            (queries, torn)
        })
    };

    let served_results = Scenario::new(study_cfg(2))
        .incremental(true)
        .round_sink(Box::new(sink))
        .run();
    stop.store(true, Ordering::SeqCst);
    let (queries, torn) = reader.join().expect("reader thread");

    assert!(queries > 0, "the reader must actually have queried");
    assert_eq!(torn, 0, "no reply may mix rounds ({queries} queries)");
    assert!(
        handle.rounds_published() > 0,
        "the pipeline must have published rounds"
    );
    let final_view = handle.view();
    assert!(final_view.consistent());
    assert!(
        final_view.provisional,
        "served views are advisory by definition"
    );

    assert_eq!(
        serde_json::to_string(&served_results).expect("results serialize"),
        baseline,
        "serving queries while running changed the results"
    );

    // The interned-path pin for serve mode: this config serializes the same
    // bytes as the committed pre-interning fixture (incremental and batch
    // runs agree per incremental_equivalence), so serve mode is held to the
    // string pipeline's exact output too.
    let digest = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../core/tests/fixtures/intern_eq/results.digest"
    ))
    .expect("committed fixture digest");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in baseline.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        format!("{} {h:016x}\n", baseline.len()),
        digest,
        "serve-mode results diverge from the pre-interning fixture"
    );
}
