//! Graceful shutdown and resume for serve mode: a stop requested through
//! the [`serve::ServeHandle`] (what a SIGTERM handler would call) must end
//! the run *at a round boundary* with that round sealed by the persist
//! protocol, in-flight queries drained — and a later `--serve --resume`
//! must replay the sealed rounds back through the sink and finish the
//! horizon byte-identically to an uninterrupted run.

use dangling_core::pipeline::{RoundSink, RoundView};
use dangling_core::scenario::{Scenario, ScenarioConfig};
use dangling_core::PersistOptions;
use serve::{daemon, Query, ServeHandle, ServeSink};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("serve_rec_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::at_scale(3000);
    cfg.world.n_fortune1000 = 20;
    cfg.world.n_global500 = 10;
    cfg.seed = 5;
    cfg.crawl_threads = 2;
    cfg.crawl_failure_rate = 0.02;
    cfg
}

/// Wraps the real [`ServeSink`] and raises the daemon's own stop flag after
/// `stop_after` committed rounds — a deterministic stand-in for an operator
/// sending SIGTERM mid-run.
struct StopAfter {
    inner: ServeSink,
    handle: ServeHandle,
    stop_after: u64,
    seen: u64,
}

impl RoundSink for StopAfter {
    fn round_committed(&mut self, view: RoundView<'_>) {
        self.inner.round_committed(view);
        self.seen += 1;
        if self.seen == self.stop_after {
            self.handle.request_stop();
        }
    }

    fn stop_requested(&self) -> bool {
        RoundSink::stop_requested(&self.inner)
    }
}

#[test]
fn graceful_stop_drains_and_resume_reaches_batch_results() {
    let baseline = {
        let results = Scenario::new(study_cfg()).incremental(true).run();
        serde_json::to_string(&results).expect("results serialize")
    };

    let dir = TempDir::new("main");

    // Leg 1: serve until the stop lands after round 3, sealed through the
    // persist protocol.
    let (sink, handle) = daemon();
    let stopper = StopAfter {
        handle: sink.handle(),
        inner: sink,
        stop_after: 3,
        seen: 0,
    };
    let opts = PersistOptions::new(&dir.0);
    let partial = Scenario::new(study_cfg())
        .incremental(true)
        .round_sink(Box::new(stopper))
        .run_persisted(&opts)
        .expect("serve leg");
    assert_eq!(
        handle.rounds_published(),
        3,
        "the stop must land exactly at the requested round boundary"
    );
    assert!(handle.stop_requested());
    handle.drain();
    assert_eq!(handle.inflight(), 0, "drain must leave no query in flight");
    // Queries still answer after the stop, from the last sealed round.
    let reply = handle.query(&Query::Status);
    assert_eq!(reply.round, 3);
    assert!(reply.consistent());
    assert!(
        serde_json::to_string(&partial).expect("results serialize") != baseline,
        "three rounds cannot equal the full horizon — the stop must be real"
    );

    // Leg 2: a fresh daemon resumes the same state dir. The three sealed
    // rounds replay *through the sink* (no re-crawl), then the run
    // continues live to the horizon.
    let (sink, handle) = daemon();
    let mut opts = PersistOptions::new(&dir.0);
    opts.resume = true;
    let resumed = Scenario::new(study_cfg())
        .incremental(true)
        .round_sink(Box::new(sink))
        .run_persisted(&opts)
        .expect("resume leg");
    assert!(
        handle.rounds_published() > 3,
        "resume must republish the replayed rounds and keep going (got {})",
        handle.rounds_published()
    );
    let view = handle.view();
    assert!(view.consistent());
    assert_eq!(
        view.round,
        handle.rounds_published(),
        "the final view must be the last committed round"
    );
    assert_eq!(
        serde_json::to_string(&resumed).expect("results serialize"),
        baseline,
        "stop + resume under serve mode diverged from the uninterrupted run"
    );
}
