//! The typed in-process query API.
//!
//! A [`Query`] is answered from exactly one pinned [`LiveView`] — every
//! field of the [`Reply`], including the embedded [`ViewStamp`], is read
//! from the same snapshot, which is what makes replies single-round by
//! construction. [`Reply::consistent`] re-derives the body's counts against
//! the stamp so tests (and paranoid clients) can verify it.
//!
//! ## Provisional verdicts
//!
//! Every data-bearing reply carries `provisional: true` while the run is
//! live: the payloads come from the incremental pass's *advisory* per-round
//! validation (`retro.incr.provisional_abuse` / `retro.incr.valid_signatures`,
//! here promoted into structured form). The final authoritative pass only
//! exists once the run finalizes — clients must never treat a served
//! verdict as final, and the flag makes that impossible to miss.

use crate::view::{ClusterEntry, FqdnVerdict, Health, LiveView, SignatureEntry, ViewStamp};
use serde::{Deserialize, Serialize};

/// One query against the published view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Round/coverage summary.
    Status,
    /// The `retro.incr.*` health payload.
    Health,
    /// The current signature catalog with advisory validity.
    Signatures,
    /// Identical-change clusters and their registrar rule-out state.
    Clusters,
    /// Current advisory verdict for one FQDN.
    Verdict { fqdn: String },
}

/// The [`Query::Status`] payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusBody {
    pub monitored: u64,
    pub changes: u64,
    pub verdicts: u64,
    pub abused: u64,
    pub signatures: u64,
    pub valid_signatures: u64,
    pub clusters: u64,
}

/// Query-specific payload of a [`Reply`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ReplyBody {
    Status(StatusBody),
    Health(Health),
    Signatures(Vec<SignatureEntry>),
    Clusters(Vec<ClusterEntry>),
    Verdict(FqdnVerdict),
    /// The FQDN has produced no suspicious change so far — implicitly
    /// benign *as of this round* (still provisional: it may turn).
    NoVerdict {
        fqdn: String,
    },
}

/// An answer, stamped with the single round version it was read from.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Reply {
    /// Publication sequence of the view answering this query.
    pub seq: u64,
    /// The one round version every field of this reply belongs to.
    pub round: u64,
    pub day: i64,
    /// Advisory-state marker; see the module docs.
    pub provisional: bool,
    /// The answering view's build-time stamp (torn-read witness).
    pub stamp: ViewStamp,
    pub body: ReplyBody,
}

impl Reply {
    /// Answer `q` from one pinned view. Single-round by construction: no
    /// state outside `view` is consulted.
    pub fn answer(view: &LiveView, q: &Query) -> Reply {
        let body = match q {
            Query::Status => ReplyBody::Status(StatusBody {
                monitored: view.monitored,
                changes: view.changes,
                verdicts: view.stamp.verdicts,
                abused: view.stamp.abused,
                signatures: view.stamp.signatures,
                valid_signatures: view.stamp.valid_signatures,
                clusters: view.stamp.clusters,
            }),
            Query::Health => ReplyBody::Health(view.health.clone()),
            Query::Signatures => ReplyBody::Signatures(view.signatures.clone()),
            Query::Clusters => ReplyBody::Clusters(view.clusters.clone()),
            Query::Verdict { fqdn } => match view.verdicts.get(fqdn) {
                Some(v) => ReplyBody::Verdict(v.clone()),
                None => ReplyBody::NoVerdict { fqdn: fqdn.clone() },
            },
        };
        Reply {
            seq: view.seq,
            round: view.round,
            day: view.day,
            provisional: view.provisional,
            stamp: view.stamp,
            body,
        }
    }

    /// Is this reply internally consistent — one round version throughout,
    /// body counts agreeing with the stamp? A torn read would fail here.
    pub fn consistent(&self) -> bool {
        if self.seq != self.stamp.seq || self.round != self.stamp.round {
            return false;
        }
        match &self.body {
            ReplyBody::Status(s) => {
                s.verdicts == self.stamp.verdicts
                    && s.abused == self.stamp.abused
                    && s.signatures == self.stamp.signatures
                    && s.valid_signatures == self.stamp.valid_signatures
                    && s.clusters == self.stamp.clusters
            }
            ReplyBody::Health(h) => h.rounds == self.round && h.day == self.day,
            ReplyBody::Signatures(sigs) => {
                sigs.len() as u64 == self.stamp.signatures
                    && sigs.iter().filter(|s| s.valid).count() as u64 == self.stamp.valid_signatures
            }
            ReplyBody::Clusters(cs) => cs.len() as u64 == self.stamp.clusters,
            ReplyBody::Verdict(v) => v.provisional == self.provisional,
            ReplyBody::NoVerdict { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_carry_one_round_version() {
        let view = LiveView::synthetic(6, 32);
        let some_fqdn = view.verdicts.keys().next().unwrap().clone();
        for q in [
            Query::Status,
            Query::Health,
            Query::Signatures,
            Query::Clusters,
            Query::Verdict { fqdn: some_fqdn },
            Query::Verdict {
                fqdn: "nowhere.example".into(),
            },
        ] {
            let r = Reply::answer(&view, &q);
            assert_eq!(r.round, 6);
            assert!(r.provisional, "served verdicts are always advisory");
            assert!(r.consistent(), "reply to {q:?} must be self-consistent");
        }
    }

    #[test]
    fn a_cross_round_mix_is_detected() {
        let a = Reply::answer(&LiveView::synthetic(2, 16), &Query::Status);
        let b = Reply::answer(&LiveView::synthetic(3, 24), &Query::Status);
        let torn = Reply { body: b.body, ..a };
        assert!(!torn.consistent());
    }

    #[test]
    fn queries_round_trip_through_json() {
        for q in [
            Query::Status,
            Query::Signatures,
            Query::Verdict {
                fqdn: "a.b.example".into(),
            },
        ] {
            let s = serde_json::to_string(&q).unwrap();
            let back: Query = serde_json::from_str(&s).unwrap();
            assert_eq!(back, q, "round-trip of {s}");
        }
    }
}
