//! The daemon core: round publication and the reader handle.
//!
//! [`daemon`] returns a connected pair — a [`ServeSink`] to attach to the
//! pipeline via [`Scenario::round_sink`](dangling_core::Scenario::round_sink)
//! and a cloneable [`ServeHandle`] for any number of reader threads. The
//! two sides share only an [`ArcSwap`]`<LiveView>` plus a few counters:
//!
//! - **Writer** (pipeline thread): after each committed round, build the
//!   next [`LiveView`] off to the side, then publish it with one atomic
//!   pointer swap. Readers still inside round N keep their pinned view;
//!   epoch-based reclamation frees it when the last guard drops.
//! - **Readers**: [`ServeHandle::query`] pins the current view, answers
//!   from it alone, and unpins — wait-free, never blocking the committing
//!   round and never blocked by it.
//!
//! Graceful shutdown is cooperative: [`ServeHandle::request_stop`] raises a
//! flag the pipeline polls at each round boundary (the SIGTERM handler of a
//! real deployment would call exactly this), the run stops *after* the
//! in-progress round is sealed by the persist protocol, and
//! [`ServeHandle::drain`] waits for in-flight queries to finish. A later
//! `--serve --resume` replays the sealed rounds back through the sink and
//! picks up where the daemon left off.

use crate::query::{Query, Reply};
use crate::view::{LiveView, SloHealth};
use arc_swap::ArcSwap;
use dangling_core::pipeline::{RoundSink, RoundView};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

/// SLO budgets the watchdog enforces. A round (or query) exceeding its
/// budget burns a counter and flags the published view; it never affects
/// the pipeline itself. Defaults are deliberately generous so a healthy
/// run publishes zero violations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBudgets {
    /// Wall-clock budget per round (commit-to-commit).
    pub round_wall_ns: u64,
    /// Simulated-makespan budget per round's crawl.
    pub round_virtual_ns: u64,
    /// Wall-clock budget per query.
    pub query_ns: u64,
}

impl Default for SloBudgets {
    fn default() -> Self {
        SloBudgets {
            round_wall_ns: 120_000_000_000,      // 120 s of wall per round
            round_virtual_ns: 3_600_000_000_000, // 1 simulated hour of crawl
            query_ns: 50_000_000,                // 50 ms per query
        }
    }
}

struct Shared {
    view: ArcSwap<LiveView>,
    stop: AtomicBool,
    inflight: AtomicU64,
    queries: AtomicU64,
    published: AtomicU64,
    query_budget_ns: AtomicU64,
    queries_over_budget: AtomicU64,
}

/// Create a connected sink/handle pair, initialized with the empty seq-0
/// view so queries are answerable before the first round commits.
pub fn daemon() -> (ServeSink, ServeHandle) {
    let shared = Arc::new(Shared {
        view: ArcSwap::new(Arc::new(LiveView::empty())),
        stop: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        published: AtomicU64::new(0),
        query_budget_ns: AtomicU64::new(SloBudgets::default().query_ns),
        queries_over_budget: AtomicU64::new(0),
    });
    (
        ServeSink {
            shared: shared.clone(),
            seq: 0,
            budgets: SloBudgets::default(),
            last_publish: Instant::now(),
            round_walls: Vec::new(),
            rounds_over_budget: 0,
            injected_stall_ns: None,
            last_violation: String::new(),
        },
        ServeHandle { shared },
    )
}

/// The read side: cheap to clone, safe to hammer from any number of
/// threads concurrently with round commits.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Answer one query from the currently published view. Wait-free on
    /// the read path; the entire reply is read from a single pinned view,
    /// so it is snapshot-consistent by construction.
    pub fn query(&self, q: &Query) -> Reply {
        self.shared.inflight.fetch_add(1, SeqCst);
        let started = std::time::Instant::now();
        let reply = {
            let view = self.shared.view.load();
            Reply::answer(&view, q)
        };
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        obs::histogram("serve.query_ns").record(elapsed_ns);
        if elapsed_ns > self.shared.query_budget_ns.load(SeqCst) {
            self.shared.queries_over_budget.fetch_add(1, SeqCst);
            obs::counter("serve.slo_queries_over_budget").inc();
        }
        obs::counter("serve.queries").inc();
        self.shared.queries.fetch_add(1, SeqCst);
        self.shared.inflight.fetch_sub(1, SeqCst);
        reply
    }

    /// Clone out the current view (for bulk readers; `query` is the hot
    /// path).
    pub fn view(&self) -> Arc<LiveView> {
        self.shared.view.load_full()
    }

    /// Rounds published so far (0 until the first commit).
    pub fn rounds_published(&self) -> u64 {
        self.shared.published.load(SeqCst)
    }

    /// Queries answered through this daemon.
    pub fn queries_served(&self) -> u64 {
        self.shared.queries.load(SeqCst)
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(SeqCst)
    }

    /// Queries that exceeded the SLO query budget.
    pub fn queries_over_budget(&self) -> u64 {
        self.shared.queries_over_budget.load(SeqCst)
    }

    /// Ask the run to stop at the next round boundary (SIGTERM-style). The
    /// round in progress is still sealed through the persist protocol, so
    /// a later `--resume` continues cleanly.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, SeqCst);
    }

    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(SeqCst)
    }

    /// Wait until no query is in flight. Readers that keep querying after
    /// a stop still get answers (the last view stays published); drain
    /// only waits for the *current* in-flight set to clear.
    pub fn drain(&self) {
        while self.shared.inflight.load(SeqCst) > 0 {
            std::thread::yield_now();
        }
    }
}

/// The write side: a [`RoundSink`] that turns each committed round into a
/// published [`LiveView`]. Exactly one exists per daemon — publication is
/// single-writer by construction (the `ArcSwap` itself also tolerates
/// multiple writers, which the consistency suite exercises separately).
pub struct ServeSink {
    shared: Arc<Shared>,
    seq: u64,
    budgets: SloBudgets,
    /// When the previous view was published (sink creation for round 1) —
    /// the commit-to-commit wall clock the watchdog meters.
    last_publish: Instant,
    /// Sorted wall times of published rounds, for the percentile section.
    round_walls: Vec<u64>,
    rounds_over_budget: u64,
    /// Test hook: pretend the next round took this long on the wall.
    injected_stall_ns: Option<u64>,
    last_violation: String,
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeSink {
    /// Another handle onto this daemon's read side.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: self.shared.clone(),
        }
    }

    /// Replace the watchdog's SLO budgets (builder-style).
    pub fn with_budgets(mut self, budgets: SloBudgets) -> Self {
        self.budgets = budgets;
        self.shared.query_budget_ns.store(budgets.query_ns, SeqCst);
        self
    }

    /// Test hook: report the next published round as having taken
    /// `wall_ns` on the wall clock, so watchdog behavior is testable
    /// without actually stalling a pipeline.
    pub fn inject_stalled_round(&mut self, wall_ns: u64) {
        self.injected_stall_ns = Some(wall_ns);
    }

    /// Publish a pre-built view as-is (benches use this to drive
    /// publication without a live pipeline). The normal path is
    /// [`RoundSink::round_committed`], which routes through the watchdog
    /// via [`Self::publish_watched`].
    pub fn publish_raw(&mut self, view: Arc<LiveView>) {
        let started = std::time::Instant::now();
        self.seq = self.seq.max(view.seq);
        self.shared.view.store(view);
        obs::histogram("serve.store_ns").record(started.elapsed().as_nanos() as u64);
        self.shared.published.fetch_add(1, SeqCst);
        obs::counter("serve.rounds_published").inc();
    }

    /// Run the watchdog over a freshly built view, fill in its health/SLO
    /// section, and publish it. The view's stamp excludes the health
    /// section, so this mutation cannot introduce a stamp mismatch.
    pub fn publish_watched(&mut self, mut view: LiveView) {
        let now = Instant::now();
        let lag_ns = now.duration_since(self.last_publish).as_nanos() as u64;
        self.last_publish = now;
        let wall_ns = self.injected_stall_ns.take().unwrap_or(lag_ns);
        let virtual_ns = obs::gauge("crawl.makespan_ns").get() as u64;

        let pos = self.round_walls.partition_point(|&w| w <= wall_ns);
        self.round_walls.insert(pos, wall_ns);

        let mut stalled = false;
        if wall_ns > self.budgets.round_wall_ns {
            stalled = true;
            self.last_violation = format!(
                "round {} exceeded its wall budget: {} ns > {} ns",
                view.round, wall_ns, self.budgets.round_wall_ns
            );
        }
        if virtual_ns > self.budgets.round_virtual_ns {
            stalled = true;
            self.last_violation = format!(
                "round {} exceeded its virtual budget: {} ns > {} ns",
                view.round, virtual_ns, self.budgets.round_virtual_ns
            );
        }
        if stalled {
            self.rounds_over_budget += 1;
            obs::counter("serve.slo_rounds_over_budget").inc();
            obs::warn!("serve watchdog: {}", self.last_violation);
        }

        let q = obs::histogram("serve.query_ns").snapshot();
        view.health.slo = SloHealth {
            round_wall_p50_ns: nearest_rank(&self.round_walls, 0.50),
            round_wall_p95_ns: nearest_rank(&self.round_walls, 0.95),
            round_wall_p99_ns: nearest_rank(&self.round_walls, 0.99),
            round_wall_p999_ns: nearest_rank(&self.round_walls, 0.999),
            last_round_wall_ns: wall_ns,
            last_round_virtual_ns: virtual_ns,
            publish_lag_ns: lag_ns,
            query_p50_ns: q.quantile(0.5),
            query_p95_ns: q.quantile(0.95),
            query_p99_ns: q.quantile(0.99),
            query_p999_ns: q.quantile(0.999),
            rounds_over_budget: self.rounds_over_budget,
            queries_over_budget: self.shared.queries_over_budget.load(SeqCst),
            round_wall_budget_ns: self.budgets.round_wall_ns,
            round_virtual_budget_ns: self.budgets.round_virtual_ns,
            query_budget_ns: self.budgets.query_ns,
            stalled,
            last_violation: self.last_violation.clone(),
        };
        debug_assert!(view.consistent(), "health mutation must not break stamp");
        self.publish_raw(Arc::new(view));
    }
}

impl RoundSink for ServeSink {
    fn round_committed(&mut self, round: RoundView<'_>) {
        let _s = obs::span("serve.publish", "serve")
            .arg_i64("day", round.now.0 as i64)
            .record_into("serve.publish_round_ns");
        self.seq += 1;
        let built = std::time::Instant::now();
        let view = LiveView::from_round(&round, self.seq);
        obs::histogram("serve.build_ns").record(built.elapsed().as_nanos() as u64);
        obs::gauge("serve.view_verdicts").set(view.verdicts.len() as f64);
        obs::gauge("serve.view_signatures").set(view.signatures.len() as f64);
        obs::gauge("serve.view_seq").set(view.seq as f64);
        self.publish_watched(view);
    }

    fn stop_requested(&self) -> bool {
        self.shared.stop.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_daemon_answers_with_seq_zero() {
        let (_sink, handle) = daemon();
        let r = handle.query(&Query::Status);
        assert_eq!(r.seq, 0);
        assert_eq!(r.round, 0);
        assert!(r.consistent());
        assert_eq!(handle.queries_served(), 1);
        assert_eq!(handle.inflight(), 0);
    }

    #[test]
    fn publish_raw_advances_the_served_view() {
        let (mut sink, handle) = daemon();
        sink.publish_raw(Arc::new(LiveView::synthetic(1, 8)));
        sink.publish_raw(Arc::new(LiveView::synthetic(2, 12)));
        let r = handle.query(&Query::Status);
        assert_eq!(r.seq, 2);
        assert!(r.consistent());
        assert_eq!(handle.rounds_published(), 2);
    }

    #[test]
    fn stop_flag_reaches_the_sink() {
        let (sink, handle) = daemon();
        assert!(!RoundSink::stop_requested(&sink));
        handle.request_stop();
        assert!(RoundSink::stop_requested(&sink));
        assert!(handle.stop_requested());
        handle.drain();
        assert_eq!(handle.inflight(), 0);
    }
}
