//! The daemon core: round publication and the reader handle.
//!
//! [`daemon`] returns a connected pair — a [`ServeSink`] to attach to the
//! pipeline via [`Scenario::round_sink`](dangling_core::Scenario::round_sink)
//! and a cloneable [`ServeHandle`] for any number of reader threads. The
//! two sides share only an [`ArcSwap`]`<LiveView>` plus a few counters:
//!
//! - **Writer** (pipeline thread): after each committed round, build the
//!   next [`LiveView`] off to the side, then publish it with one atomic
//!   pointer swap. Readers still inside round N keep their pinned view;
//!   epoch-based reclamation frees it when the last guard drops.
//! - **Readers**: [`ServeHandle::query`] pins the current view, answers
//!   from it alone, and unpins — wait-free, never blocking the committing
//!   round and never blocked by it.
//!
//! Graceful shutdown is cooperative: [`ServeHandle::request_stop`] raises a
//! flag the pipeline polls at each round boundary (the SIGTERM handler of a
//! real deployment would call exactly this), the run stops *after* the
//! in-progress round is sealed by the persist protocol, and
//! [`ServeHandle::drain`] waits for in-flight queries to finish. A later
//! `--serve --resume` replays the sealed rounds back through the sink and
//! picks up where the daemon left off.

use crate::query::{Query, Reply};
use crate::view::LiveView;
use arc_swap::ArcSwap;
use dangling_core::pipeline::{RoundSink, RoundView};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

struct Shared {
    view: ArcSwap<LiveView>,
    stop: AtomicBool,
    inflight: AtomicU64,
    queries: AtomicU64,
    published: AtomicU64,
}

/// Create a connected sink/handle pair, initialized with the empty seq-0
/// view so queries are answerable before the first round commits.
pub fn daemon() -> (ServeSink, ServeHandle) {
    let shared = Arc::new(Shared {
        view: ArcSwap::new(Arc::new(LiveView::empty())),
        stop: AtomicBool::new(false),
        inflight: AtomicU64::new(0),
        queries: AtomicU64::new(0),
        published: AtomicU64::new(0),
    });
    (
        ServeSink {
            shared: shared.clone(),
            seq: 0,
        },
        ServeHandle { shared },
    )
}

/// The read side: cheap to clone, safe to hammer from any number of
/// threads concurrently with round commits.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Answer one query from the currently published view. Wait-free on
    /// the read path; the entire reply is read from a single pinned view,
    /// so it is snapshot-consistent by construction.
    pub fn query(&self, q: &Query) -> Reply {
        self.shared.inflight.fetch_add(1, SeqCst);
        let started = std::time::Instant::now();
        let reply = {
            let view = self.shared.view.load();
            Reply::answer(&view, q)
        };
        obs::histogram("serve.query_ns").record(started.elapsed().as_nanos() as u64);
        obs::counter("serve.queries").inc();
        self.shared.queries.fetch_add(1, SeqCst);
        self.shared.inflight.fetch_sub(1, SeqCst);
        reply
    }

    /// Clone out the current view (for bulk readers; `query` is the hot
    /// path).
    pub fn view(&self) -> Arc<LiveView> {
        self.shared.view.load_full()
    }

    /// Rounds published so far (0 until the first commit).
    pub fn rounds_published(&self) -> u64 {
        self.shared.published.load(SeqCst)
    }

    /// Queries answered through this daemon.
    pub fn queries_served(&self) -> u64 {
        self.shared.queries.load(SeqCst)
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> u64 {
        self.shared.inflight.load(SeqCst)
    }

    /// Ask the run to stop at the next round boundary (SIGTERM-style). The
    /// round in progress is still sealed through the persist protocol, so
    /// a later `--resume` continues cleanly.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, SeqCst);
    }

    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(SeqCst)
    }

    /// Wait until no query is in flight. Readers that keep querying after
    /// a stop still get answers (the last view stays published); drain
    /// only waits for the *current* in-flight set to clear.
    pub fn drain(&self) {
        while self.shared.inflight.load(SeqCst) > 0 {
            std::thread::yield_now();
        }
    }
}

/// The write side: a [`RoundSink`] that turns each committed round into a
/// published [`LiveView`]. Exactly one exists per daemon — publication is
/// single-writer by construction (the `ArcSwap` itself also tolerates
/// multiple writers, which the consistency suite exercises separately).
pub struct ServeSink {
    shared: Arc<Shared>,
    seq: u64,
}

impl ServeSink {
    /// Another handle onto this daemon's read side.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: self.shared.clone(),
        }
    }

    /// Publish a pre-built view as-is (benches use this to drive
    /// publication without a live pipeline). The normal path is
    /// [`RoundSink::round_committed`].
    pub fn publish_raw(&mut self, view: Arc<LiveView>) {
        let started = std::time::Instant::now();
        self.seq = self.seq.max(view.seq);
        self.shared.view.store(view);
        obs::histogram("serve.store_ns").record(started.elapsed().as_nanos() as u64);
        self.shared.published.fetch_add(1, SeqCst);
        obs::counter("serve.rounds_published").inc();
    }
}

impl RoundSink for ServeSink {
    fn round_committed(&mut self, round: RoundView<'_>) {
        let _s = obs::span("serve.publish", "serve")
            .arg_i64("day", round.now.0 as i64)
            .record_into("serve.publish_round_ns");
        self.seq += 1;
        let built = std::time::Instant::now();
        let view = LiveView::from_round(&round, self.seq);
        obs::histogram("serve.build_ns").record(built.elapsed().as_nanos() as u64);
        obs::gauge("serve.view_verdicts").set(view.verdicts.len() as f64);
        obs::gauge("serve.view_signatures").set(view.signatures.len() as f64);
        obs::gauge("serve.view_seq").set(view.seq as f64);
        self.publish_raw(Arc::new(view));
    }

    fn stop_requested(&self) -> bool {
        self.shared.stop.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_daemon_answers_with_seq_zero() {
        let (_sink, handle) = daemon();
        let r = handle.query(&Query::Status);
        assert_eq!(r.seq, 0);
        assert_eq!(r.round, 0);
        assert!(r.consistent());
        assert_eq!(handle.queries_served(), 1);
        assert_eq!(handle.inflight(), 0);
    }

    #[test]
    fn publish_raw_advances_the_served_view() {
        let (mut sink, handle) = daemon();
        sink.publish_raw(Arc::new(LiveView::synthetic(1, 8)));
        sink.publish_raw(Arc::new(LiveView::synthetic(2, 12)));
        let r = handle.query(&Query::Status);
        assert_eq!(r.seq, 2);
        assert!(r.consistent());
        assert_eq!(handle.rounds_published(), 2);
    }

    #[test]
    fn stop_flag_reaches_the_sink() {
        let (sink, handle) = daemon();
        assert!(!RoundSink::stop_requested(&sink));
        handle.request_stop();
        assert!(RoundSink::stop_requested(&sink));
        assert!(handle.stop_requested());
        handle.drain();
        assert_eq!(handle.inflight(), 0);
    }
}
