//! The published, versioned, read-only view of live state.
//!
//! One [`LiveView`] is built per committed monitoring round — off to the
//! side, from the round's [`RoundView`] — then published with a single
//! atomic pointer swap. Readers therefore see round N in full or not at
//! all; there is no field a reader can observe mid-update.
//!
//! The [`ViewStamp`] turns that claim into something tests can *assert*: it
//! freezes the view's counts and a checksum over its payload at build time.
//! A hypothetical torn read (a mix of round N and N+1 state) would
//! disagree with its own stamp, so the consistency suite hammers
//! [`LiveView::consistent`] from reader threads while rounds commit.

use dangling_core::pipeline::RoundView;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Advisory verdict for one FQDN: what the daemon answers *now* for "is
/// this resource dangling/abused?". `provisional` is always `true` on
/// served verdicts — the final authoritative pass only exists once the run
/// finalizes (see DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FqdnVerdict {
    pub fqdn: String,
    pub abused: bool,
    pub ruled_out: bool,
    pub provisional: bool,
    /// First / last simulated day a suspicious change was observed.
    pub first_day: i64,
    pub last_day: i64,
    /// Feature classes of the provisionally-valid signatures that hit.
    pub kinds: Vec<String>,
}

/// One catalog entry: a derived signature plus its advisory validation
/// verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureEntry {
    pub id: u32,
    pub kind: String,
    pub keywords: Vec<String>,
    pub source_members: usize,
    pub source_slds: usize,
    pub valid: bool,
    pub provisional: bool,
}

/// One identical-change cluster from the registrar rule-out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEntry {
    pub key: String,
    pub members: usize,
    pub registrar_count: usize,
    pub ruled_out: bool,
}

/// Live SLO / watchdog state, published alongside the round counters. All
/// figures are wall-clock telemetry except `last_round_virtual_ns` (the
/// crawl's simulated makespan); none of them feed back into results.
///
/// The [`ViewStamp`] deliberately excludes the whole `health` section, so
/// the sink may fill this in after the view is built without perturbing
/// the torn-read checksum.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloHealth {
    /// Round-commit (publish-path) wall latency percentiles over the run.
    pub round_wall_p50_ns: u64,
    pub round_wall_p95_ns: u64,
    pub round_wall_p99_ns: u64,
    pub round_wall_p999_ns: u64,
    /// Wall time of the round just published.
    pub last_round_wall_ns: u64,
    /// Simulated makespan of the round's crawl (0 when the latency model
    /// is off).
    pub last_round_virtual_ns: u64,
    /// Wall time since the previous publish — how stale the served view
    /// had become when this one replaced it.
    pub publish_lag_ns: u64,
    /// Query-latency percentiles over the daemon's lifetime.
    pub query_p50_ns: u64,
    pub query_p95_ns: u64,
    pub query_p99_ns: u64,
    pub query_p999_ns: u64,
    /// SLO burn counters: rounds / queries that exceeded their budget.
    pub rounds_over_budget: u64,
    pub queries_over_budget: u64,
    /// The budgets in force (so dashboards can render burn against them).
    pub round_wall_budget_ns: u64,
    pub round_virtual_budget_ns: u64,
    pub query_budget_ns: u64,
    /// Watchdog verdict for the round just published: it exceeded a
    /// budget (virtual or wall).
    pub stalled: bool,
    /// Human-readable description of the most recent violation (empty =
    /// the run is clean).
    pub last_violation: String,
}

/// The `retro.incr.*` health gauges, promoted into a structured payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Health {
    pub rounds: u64,
    pub day: i64,
    pub monitored: u64,
    pub changes_total: u64,
    pub signatures_total: u64,
    pub valid_signatures: u64,
    pub provisional_abuse: u64,
    pub fold_groups: u64,
    /// Whether the run streams the retro pass (verdict payloads exist).
    pub streaming: bool,
    /// Live SLO / watchdog section (filled by the serve sink just before
    /// publication; excluded from the view stamp by design).
    pub slo: SloHealth,
}

/// Counts and a checksum frozen when the view was built — the torn-read
/// witness. [`LiveView::consistent`] recomputes and compares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewStamp {
    pub seq: u64,
    pub round: u64,
    pub verdicts: u64,
    pub abused: u64,
    pub signatures: u64,
    pub valid_signatures: u64,
    pub clusters: u64,
    pub checksum: u64,
}

/// One round's published state. Immutable once built; replaced wholesale at
/// the next round commit.
#[derive(Debug, Clone, Serialize)]
pub struct LiveView {
    /// Monotone publication sequence (0 = the pre-first-round empty view).
    pub seq: u64,
    /// Monitoring rounds committed when this view was built.
    pub round: u64,
    /// Simulated day of the last committed round.
    pub day: i64,
    pub monitored: u64,
    pub changes: u64,
    /// Payloads are the streaming pass's advisory state, never the final
    /// authoritative pass.
    pub provisional: bool,
    /// FQDN (string form) → verdict.
    pub verdicts: BTreeMap<String, FqdnVerdict>,
    pub signatures: Vec<SignatureEntry>,
    pub clusters: Vec<ClusterEntry>,
    pub health: Health,
    pub stamp: ViewStamp,
}

/// FNV-1a, enough to make an accidental torn mix vanishingly unlikely to
/// collide.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

impl LiveView {
    /// The view published before the first round commits: empty, seq 0.
    pub fn empty() -> LiveView {
        let mut v = LiveView {
            seq: 0,
            round: 0,
            day: 0,
            monitored: 0,
            changes: 0,
            provisional: true,
            verdicts: BTreeMap::new(),
            signatures: Vec::new(),
            clusters: Vec::new(),
            health: Health::default(),
            stamp: ViewStamp::default(),
        };
        v.stamp = v.compute_stamp();
        v
    }

    /// Build the next view from a committed round. Runs on the pipeline
    /// thread *before* publication — readers never observe a view under
    /// construction.
    pub fn from_round(v: &RoundView<'_>, seq: u64) -> LiveView {
        let day = v.now.0 as i64;
        let mut verdicts = BTreeMap::new();
        let mut signatures = Vec::new();
        let mut clusters = Vec::new();
        if let Some(p) = v.provisional {
            for pv in &p.verdicts {
                let fqdn = pv.fqdn.to_string();
                verdicts.insert(
                    fqdn.clone(),
                    FqdnVerdict {
                        fqdn,
                        abused: pv.abused,
                        ruled_out: pv.ruled_out,
                        provisional: true,
                        first_day: pv.first_day.0 as i64,
                        last_day: pv.last_day.0 as i64,
                        kinds: pv.kinds.iter().map(|k| format!("{k:?}")).collect(),
                    },
                );
            }
            signatures.extend(p.signatures.iter().map(|s| SignatureEntry {
                id: s.id,
                kind: format!("{:?}", s.kind),
                keywords: s.keywords.clone(),
                source_members: s.source_members,
                source_slds: s.source_slds,
                valid: s.valid,
                provisional: true,
            }));
            clusters.extend(p.clusters.iter().map(|c| ClusterEntry {
                key: c.key.clone(),
                members: c.members,
                registrar_count: c.registrar_count,
                ruled_out: c.ruled_out,
            }));
        }
        let health = Health {
            rounds: v.rounds_done,
            day,
            monitored: v.rs.monitored.len() as u64,
            changes_total: v.rs.changes.len() as u64,
            signatures_total: v.provisional.map_or(0, |p| p.signatures_total as u64),
            valid_signatures: v.provisional.map_or(0, |p| p.signatures_valid as u64),
            provisional_abuse: v.provisional.map_or(0, |p| p.provisional_abuse as u64),
            fold_groups: v.provisional.map_or(0, |p| p.fold_groups as u64),
            streaming: v.provisional.is_some(),
            slo: SloHealth::default(),
        };
        let mut view = LiveView {
            seq,
            round: v.rounds_done,
            day,
            monitored: v.rs.monitored.len() as u64,
            changes: v.rs.changes.len() as u64,
            provisional: true,
            verdicts,
            signatures,
            clusters,
            health,
            stamp: ViewStamp::default(),
        };
        view.stamp = view.compute_stamp();
        view
    }

    /// A self-consistent view with `n` synthetic entries — for consistency
    /// tests and benches that need publishable payloads without a live run.
    pub fn synthetic(seq: u64, n: usize) -> LiveView {
        let mut verdicts = BTreeMap::new();
        let mut signatures = Vec::new();
        let mut clusters = Vec::new();
        for i in 0..n {
            let fqdn = format!("host-{i}.victim-{seq}.example");
            verdicts.insert(
                fqdn.clone(),
                FqdnVerdict {
                    fqdn,
                    abused: i % 3 == 0,
                    ruled_out: i % 7 == 0,
                    provisional: true,
                    first_day: seq as i64,
                    last_day: seq as i64 + i as i64,
                    kinds: vec!["KeywordsOnly".into()],
                },
            );
            signatures.push(SignatureEntry {
                id: i as u32,
                kind: "KeywordsSitemap".into(),
                keywords: vec![format!("kw-{seq}-{i}")],
                source_members: 2 + i,
                source_slds: 2,
                valid: i % 2 == 0,
                provisional: true,
            });
            clusters.push(ClusterEntry {
                key: format!("cluster-{seq}-{i}"),
                members: 1 + i % 5,
                registrar_count: 1 + i % 3,
                ruled_out: i % 5 == 0,
            });
        }
        let mut view = LiveView {
            seq,
            round: seq,
            day: seq as i64,
            monitored: n as u64,
            changes: (n * 2) as u64,
            provisional: true,
            verdicts,
            signatures,
            clusters,
            health: Health {
                rounds: seq,
                day: seq as i64,
                monitored: n as u64,
                changes_total: (n * 2) as u64,
                signatures_total: n as u64,
                valid_signatures: n.div_ceil(2) as u64,
                provisional_abuse: (n + 2) as u64 / 3,
                fold_groups: n as u64,
                streaming: true,
                slo: SloHealth::default(),
            },
            stamp: ViewStamp::default(),
        };
        view.stamp = view.compute_stamp();
        view
    }

    /// Recompute the stamp from the payload actually held.
    fn compute_stamp(&self) -> ViewStamp {
        let mut h = Fnv::new();
        h.u64(self.seq);
        h.u64(self.round);
        h.u64(self.day as u64);
        let mut abused = 0u64;
        for (k, v) in &self.verdicts {
            h.bytes(k.as_bytes());
            h.u64(v.abused as u64 | (v.ruled_out as u64) << 1);
            h.u64(v.last_day as u64);
            if v.abused {
                abused += 1;
            }
        }
        let mut valid = 0u64;
        for s in &self.signatures {
            h.u64(s.id as u64);
            h.u64(s.valid as u64);
            if s.valid {
                valid += 1;
            }
        }
        for c in &self.clusters {
            h.bytes(c.key.as_bytes());
            h.u64(c.members as u64);
        }
        ViewStamp {
            seq: self.seq,
            round: self.round,
            verdicts: self.verdicts.len() as u64,
            abused,
            signatures: self.signatures.len() as u64,
            valid_signatures: valid,
            clusters: self.clusters.len() as u64,
            checksum: h.0,
        }
    }

    /// Does the payload agree with the stamp frozen at build time? A torn
    /// read — any mix of two rounds' state — fails this.
    pub fn consistent(&self) -> bool {
        self.compute_stamp() == self.stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_views_are_self_consistent() {
        for (seq, n) in [(0, 0), (1, 1), (5, 64), (9, 257)] {
            let v = LiveView::synthetic(seq, n);
            assert!(v.consistent());
            assert_eq!(v.stamp.seq, seq);
            assert_eq!(v.stamp.verdicts, n as u64);
        }
        assert!(LiveView::empty().consistent());
    }

    #[test]
    fn any_payload_mutation_breaks_the_stamp() {
        let mut v = LiveView::synthetic(3, 16);
        v.signatures[4].valid = !v.signatures[4].valid;
        assert!(!v.consistent(), "flipped validity must be detected");

        let mut v = LiveView::synthetic(3, 16);
        v.verdicts
            .remove(&v.verdicts.keys().next().unwrap().clone());
        assert!(!v.consistent(), "dropped verdict must be detected");

        let mut v = LiveView::synthetic(3, 16);
        v.round += 1;
        assert!(!v.consistent(), "round skew must be detected");

        // The torn mix the stamp exists for: round-N counts with round-N+1
        // payload.
        let a = LiveView::synthetic(3, 16);
        let mut torn = LiveView::synthetic(4, 16);
        torn.stamp = a.stamp;
        assert!(!torn.consistent());
    }
}
