//! HTTP facade over the query API, on `httpsim` machinery.
//!
//! The daemon is in-process, but its surface is an HTTP API so real
//! clients could front it unchanged:
//!
//! | route                | query                        |
//! |----------------------|------------------------------|
//! | `GET /v1/status`     | [`Query::Status`]            |
//! | `GET /v1/health`     | [`Query::Health`]            |
//! | `GET /v1/signatures` | [`Query::Signatures`]        |
//! | `GET /v1/clusters`   | [`Query::Clusters`]          |
//! | `GET /v1/verdict/F`  | [`Query::Verdict`] `{fqdn:F}`|
//!
//! Responses are JSON-encoded [`Reply`]s. Every data payload carries the
//! reply's `provisional` flag and `stamp` — wire clients get the same
//! torn-read witness as in-process ones.

use crate::daemon::ServeHandle;
use crate::query::Query;
use httpsim::{Method, Request, Response, StatusCode};

/// Map a request path to a query. `None` = no such route.
fn route(path: &str) -> Option<Query> {
    match path {
        "/v1/status" => Some(Query::Status),
        "/v1/health" => Some(Query::Health),
        "/v1/signatures" => Some(Query::Signatures),
        "/v1/clusters" => Some(Query::Clusters),
        _ => path.strip_prefix("/v1/verdict/").and_then(|f| {
            (!f.is_empty() && !f.contains('/')).then(|| Query::Verdict {
                fqdn: f.to_string(),
            })
        }),
    }
}

fn json_response(status: StatusCode, body: String) -> Response {
    let mut r = Response::new(status);
    r.headers.set("Content-Type", "application/json");
    r.body = body.into_bytes();
    r.headers.set("Content-Length", r.body.len().to_string());
    r
}

/// Serve one request against the published view.
pub fn handle_request(handle: &ServeHandle, req: &Request) -> Response {
    if req.method != Method::Get {
        return json_response(StatusCode(405), "{\"error\":\"method not allowed\"}".into());
    }
    match route(&req.path) {
        Some(q) => {
            let reply = handle.query(&q);
            json_response(
                StatusCode::OK,
                serde_json::to_string(&reply).expect("replies always serialize"),
            )
        }
        None => json_response(
            StatusCode::NOT_FOUND,
            "{\"error\":\"no such route\"}".into(),
        ),
    }
}

/// Wire-level entry point: parse request bytes, serve, serialize the
/// response — what a socket loop would call per connection.
pub fn handle_bytes(handle: &ServeHandle, raw: &[u8]) -> Vec<u8> {
    let resp = match httpsim::parse::parse_request(raw) {
        Ok(req) => handle_request(handle, &req),
        Err(_) => json_response(StatusCode(400), "{\"error\":\"malformed request\"}".into()),
    };
    httpsim::parse::serialize_response(&resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::daemon;
    use crate::view::LiveView;
    use std::sync::Arc;

    #[test]
    fn routes_resolve_and_answer_json() {
        let (mut sink, handle) = daemon();
        sink.publish_raw(Arc::new(LiveView::synthetic(4, 8)));
        for path in ["/v1/status", "/v1/health", "/v1/signatures", "/v1/clusters"] {
            let resp = handle_request(&handle, &Request::get("serve.local", path));
            assert_eq!(resp.status, StatusCode::OK, "{path}");
            let v: serde_json::Value = serde_json::from_str(&resp.body_text()).unwrap();
            assert_eq!(v["round"], serde_json::json!(4), "{path}");
            assert_eq!(v["provisional"], serde_json::json!(true), "{path}");
        }
        let resp = handle_request(
            &handle,
            &Request::get("serve.local", "/v1/verdict/host-1.victim-4.example"),
        );
        let v: serde_json::Value = serde_json::from_str(&resp.body_text()).unwrap();
        assert!(v["body"]["Verdict"]["fqdn"]
            .as_str()
            .unwrap()
            .contains("host-1"));
    }

    #[test]
    fn unknown_routes_and_methods_are_refused() {
        let (_sink, handle) = daemon();
        let r = handle_request(&handle, &Request::get("serve.local", "/v2/nope"));
        assert_eq!(r.status, StatusCode::NOT_FOUND);
        let mut post = Request::get("serve.local", "/v1/status");
        post.method = Method::Post;
        assert_eq!(handle_request(&handle, &post).status, StatusCode(405));
    }

    #[test]
    fn wire_round_trip() {
        let (_sink, handle) = daemon();
        let raw = httpsim::parse::serialize_request(&Request::get("serve.local", "/v1/status"));
        let out = handle_bytes(&handle, &raw);
        let resp = httpsim::parse::parse_response(&out).unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert!(resp.body_text().contains("\"round\""));
    }
}
