//! In-process load driver: thousands of concurrent clients over one event
//! loop.
//!
//! Mirrors the event-driven crawl substrate (DESIGN.md §10): each simulated
//! client is a submit/complete pair on a [`CompletionQueue`], with the
//! round-trip priced by a keyed-RNG [`LatencyModel`] draw — so one driver
//! thread interleaves thousands of *outstanding* queries exactly the way
//! one crawl worker sustains ≥1,000 in-flight crawls. On submit the query
//! executes against the live [`ServeHandle`] (wall-clock timed — that is
//! the real read-path latency under whatever contention the committing
//! rounds produce); completion frees the client to submit its next one.
//!
//! The driver verifies every reply with [`Reply::consistent`] and reports
//! torn reads (must be zero), peak in-flight (published to the
//! `serve.inflight` gauge, asserted ≥1,000 by the `serve_load` bench), and
//! the wall-clock query-latency percentiles baselined in BENCH_serve.json.

use crate::daemon::ServeHandle;
use crate::query::Query;
use rand::Rng;
use simcore::{CompletionQueue, LatencyProfile, NetTime, QueryClass, RngTree};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated concurrent clients.
    pub clients: usize,
    /// Queries each client issues (closed loop: one outstanding per
    /// client).
    pub queries_per_client: usize,
    /// Latency profile pricing the simulated round trips (`wan` stretches
    /// completions enough that submissions pile up — the concurrency
    /// driver; `zero` degenerates to sequential).
    pub profile: String,
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 1_500,
            queries_per_client: 4,
            profile: "wan".into(),
            seed: 1,
        }
    }
}

/// What one load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    pub queries: u64,
    /// Peak simultaneously-outstanding queries (simulated clock).
    pub peak_inflight: u64,
    /// Replies failing [`Reply::consistent`] — any nonzero value is a
    /// snapshot-consistency violation.
    pub torn: u64,
    /// Wall-clock in-process query latency percentiles (nearest-rank).
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    /// Lowest / highest round version observed across replies — strictly
    /// increasing between batches proves rounds advanced under load.
    pub first_round: u64,
    pub last_round: u64,
    /// Simulated duration of the whole run.
    pub sim_elapsed_ns: u64,
}

enum Ev {
    /// Client submits query `qidx` (executes it in-process, then schedules
    /// its completion one simulated round trip later).
    Submit { client: usize, qidx: usize },
    /// The round trip for `client` finished; it may submit its next query.
    Complete { client: usize, qidx: usize },
}

fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drive `cfg.clients` simulated clients against the handle. Safe to call
/// while the pipeline publishes rounds — that contention is the point.
pub fn run_load(handle: &ServeHandle, cfg: &LoadConfig) -> LoadReport {
    let tree = RngTree::new(cfg.seed);
    let model = LatencyProfile::by_name(&cfg.profile)
        .unwrap_or_else(|| panic!("unknown latency profile {:?}", cfg.profile));
    let mut q: CompletionQueue<Ev> = CompletionQueue::new();

    // Sample verdict targets once up front; a run that has not published
    // verdicts yet still exercises the miss path.
    let fqdns: Vec<String> = {
        let view = handle.view();
        view.verdicts.keys().take(64).cloned().collect()
    };
    let query_for = |client: usize, qidx: usize| -> Query {
        match (client + qidx) % 5 {
            0 => Query::Status,
            1 => Query::Health,
            2 => Query::Signatures,
            3 => Query::Clusters,
            _ => Query::Verdict {
                fqdn: match fqdns.is_empty() {
                    true => format!("missing-{client}.example"),
                    false => fqdns[client % fqdns.len()].clone(),
                },
            },
        }
    };

    // Stagger arrivals over the first simulated millisecond, far shorter
    // than a wan round trip — submissions overlap by construction.
    for client in 0..cfg.clients {
        let jitter = tree
            .rng(&format!("serve/load/arrival/{client}"))
            .gen_range(0..1_000_000u64);
        q.schedule(NetTime(jitter), Ev::Submit { client, qidx: 0 });
    }

    let mut report = LoadReport {
        first_round: u64::MAX,
        ..LoadReport::default()
    };
    let mut samples: Vec<u64> = Vec::with_capacity(cfg.clients * cfg.queries_per_client);
    let mut inflight: u64 = 0;
    let inflight_gauge = obs::gauge("serve.inflight");
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Submit { client, qidx } => {
                inflight += 1;
                report.peak_inflight = report.peak_inflight.max(inflight);
                let query = query_for(client, qidx);
                let started = std::time::Instant::now();
                let reply = handle.query(&query);
                samples.push(started.elapsed().as_nanos() as u64);
                if !reply.consistent() {
                    report.torn += 1;
                }
                report.first_round = report.first_round.min(reply.round);
                report.last_round = report.last_round.max(reply.round);
                report.queries += 1;
                let fate = model.sample(
                    &tree,
                    &format!("serve/load/{client}/{qidx}"),
                    "api.serve.local",
                    QueryClass::Http,
                );
                q.schedule(
                    NetTime(now.0 + fate.cost_ns.max(1)),
                    Ev::Complete { client, qidx },
                );
            }
            Ev::Complete { client, qidx } => {
                inflight -= 1;
                if qidx + 1 < cfg.queries_per_client {
                    q.schedule(
                        NetTime(now.0 + 1),
                        Ev::Submit {
                            client,
                            qidx: qidx + 1,
                        },
                    );
                }
            }
        }
        report.sim_elapsed_ns = q.now().0;
    }
    if report.first_round == u64::MAX {
        report.first_round = 0;
    }
    if report.peak_inflight as f64 > inflight_gauge.get() {
        inflight_gauge.set(report.peak_inflight as f64);
    }
    samples.sort_unstable();
    report.p50_ns = nearest_rank(&samples, 0.50);
    report.p95_ns = nearest_rank(&samples, 0.95);
    report.p99_ns = nearest_rank(&samples, 0.99);
    report.p999_ns = nearest_rank(&samples, 0.999);
    report.max_ns = samples.last().copied().unwrap_or(0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::daemon;
    use crate::view::LiveView;
    use std::sync::Arc;

    #[test]
    fn wan_load_overlaps_thousands_of_queries() {
        let (mut sink, handle) = daemon();
        sink.publish_raw(Arc::new(LiveView::synthetic(1, 32)));
        let cfg = LoadConfig {
            clients: 1_200,
            queries_per_client: 2,
            ..LoadConfig::default()
        };
        let report = run_load(&handle, &cfg);
        assert_eq!(report.queries, 2_400);
        assert_eq!(report.torn, 0);
        assert!(
            report.peak_inflight >= 1_000,
            "wan pacing must overlap clients, peaked at {}",
            report.peak_inflight
        );
        assert_eq!((report.first_round, report.last_round), (1, 1));
        assert!(report.p99_ns >= report.p50_ns);
        assert!(report.sim_elapsed_ns > 0);
    }

    #[test]
    fn zero_profile_degenerates_but_still_answers() {
        let (_sink, handle) = daemon();
        let report = run_load(
            &handle,
            &LoadConfig {
                clients: 10,
                queries_per_client: 3,
                profile: "zero".into(),
                seed: 2,
            },
        );
        assert_eq!(report.queries, 30);
        assert_eq!(report.torn, 0);
    }
}
