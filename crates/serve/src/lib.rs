//! # dangling-serve — service mode: the study as a monitoring daemon
//!
//! Turns the batch reproduction into a long-running monitor: the pipeline
//! runs persist + incremental retro continuously (`repro --serve`), and
//! after every committed round this crate publishes a **versioned,
//! read-only view** of live state — current abuse verdicts per FQDN, the
//! validated signature catalog, campaign clusters, and `retro.incr.*`
//! health — behind an in-process query API.
//!
//! The read path is the engineering core:
//!
//! - **Snapshot consistency.** A reader sees round N in full or not at all.
//!   Each [`LiveView`] is built off to the side from the committed round's
//!   state and published with a single atomic pointer swap
//!   ([`arc_swap::ArcSwap`], epoch-reclaimed); every value a reply carries
//!   comes from one pinned view, and a [`ViewStamp`] (counts + checksum
//!   frozen at build time) lets readers *prove* the absence of torn reads.
//! - **Lock-free reads.** Queries never block the committing round and
//!   round publication never blocks readers; the only writer-side lock
//!   serializes publications with reclamation bookkeeping.
//! - **Advisory, and saying so.** The per-round verdicts are the streaming
//!   pass's advisory state (the benign corpus can still shrink), so every
//!   payload carries an explicit `provisional: true` flag — clients cannot
//!   mistake a mid-run verdict for the final authoritative pass.
//!
//! Out-of-band by construction: a [`ServeSink`] receives `&RunState` only,
//! so query load cannot perturb results — the `serve_equivalence` test pins
//! byte-identical `StudyResults` under concurrent query hammering, the same
//! contract telemetry obeys (DESIGN.md §11).
//!
//! [`load::run_load`] drives the API with `httpsim`-style simulated clients
//! over a completion queue, sustaining thousands of in-flight queries
//! against a live run (`serve_load` bench, BENCH_serve.json).

pub mod daemon;
pub mod http;
pub mod load;
pub mod query;
pub mod view;

pub use daemon::{daemon, ServeHandle, ServeSink, SloBudgets};
pub use http::handle_request;
pub use load::{run_load, LoadConfig, LoadReport};
pub use query::{Query, Reply, ReplyBody};
pub use view::{ClusterEntry, FqdnVerdict, Health, LiveView, SignatureEntry, SloHealth, ViewStamp};
