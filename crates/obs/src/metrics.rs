//! Sharded metric primitives and the process-global registry.
//!
//! Every primitive is write-optimized for many concurrent threads: updates
//! are relaxed atomic operations on one of [`STRIPES`] cache-line-padded
//! stripes (picked by a per-thread id), so crawl workers never contend on a
//! shared line. Reads merge the stripes — scrape-time work, off every hot
//! path. Counts are exact under any interleaving (addition commutes);
//! histograms additionally keep per-stripe min/max merged the same way.
//!
//! Metrics are registered by name on first use ([`counter`], [`gauge`],
//! [`histogram`]) and live for the process lifetime; [`metrics_json`] dumps
//! the whole registry as deterministic (name-sorted) JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Stripe count per metric. Power of two; more stripes buy less contention
/// at the cost of scrape work and memory.
pub const STRIPES: usize = 8;

/// Log-bucket count: bucket `i` holds values whose bit length is `i`
/// (i.e. `2^(i-1) <= v < 2^i`), bucket 0 holds zero.
pub const BUCKETS: usize = 65;

#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new(v: u64) -> Self {
        PaddedU64(AtomicU64::new(v))
    }
}

/// Stable small id for the calling thread, used to pick a stripe. Ids are
/// handed out in thread-creation order; reuse across STRIPES is fine — it
/// only costs contention, never correctness.
fn stripe_of_thread() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id) & (STRIPES - 1)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotone event counter. `add` is one relaxed `fetch_add` on the calling
/// thread's stripe; `get` sums the stripes.
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            stripes: [const { PaddedU64::new(0) }; STRIPES],
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_of_thread()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// Last-writer-wins instantaneous value, stored as `f64` bits. Gauges are
/// set from serial code (round boundaries), so a single atomic cell is
/// enough.
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0), // 0.0f64 has all-zero bits
        }
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

struct HistStripe {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistStripe {
    const fn new() -> Self {
        HistStripe {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// Index of the log bucket holding `v`: 0 for zero, else `v`'s bit length
/// (so bucket `i` covers `[2^(i-1), 2^i)` and the last bucket tops out at
/// `u64::MAX`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value reported for quantiles
/// that land in it).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Log-bucketed histogram of `u64` samples (durations in ns, sizes in
/// bytes). `record` touches only the calling thread's stripe with relaxed
/// ops; totals, min/max and bucket counts are exact at merge time.
pub struct Histogram {
    stripes: [HistStripe; STRIPES],
}

/// A merged, point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            stripes: [const { HistStripe::new() }; STRIPES],
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[stripe_of_thread()];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merge all stripes into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        };
        for s in &self.stripes {
            out.count += s.count.load(Ordering::Relaxed);
            out.sum += s.sum.load(Ordering::Relaxed);
            out.min = out.min.min(s.min.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (b, sb) in out.buckets.iter_mut().zip(&s.buckets) {
                *b += sb.load(Ordering::Relaxed);
            }
        }
        if out.count == 0 {
            out.min = 0;
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (0.0..=1.0).
    /// Log-bucket resolution: within a factor of 2 of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn poison_ok<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Look up (or register) the counter named `name`. The handle is
/// `'static` (registration leaks one allocation for the process lifetime) —
/// hot paths cache it once instead of paying the map lookup per event.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = poison_ok(registry().counters.lock());
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Look up (or register) the gauge named `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = poison_ok(registry().gauges.lock());
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// Look up (or register) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = poison_ok(registry().histograms.lock());
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Dump every registered metric as JSON, names sorted, suitable for
/// `repro --metrics`. Histograms report count/sum/min/max/mean, coarse
/// quantiles, and the non-empty `[upper_bound, count]` buckets.
pub fn metrics_json() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"counters\": {");
    {
        let map = poison_ok(registry().counters.lock());
        let mut first = true;
        for (name, c) in map.iter() {
            sep(&mut out, &mut first);
            push_key(&mut out, name, 4);
            out.push_str(&c.get().to_string());
        }
        close_obj(&mut out, first, 2);
    }
    out.push_str(",\n  \"gauges\": {");
    {
        let map = poison_ok(registry().gauges.lock());
        let mut first = true;
        for (name, g) in map.iter() {
            sep(&mut out, &mut first);
            push_key(&mut out, name, 4);
            push_f64(&mut out, g.get());
        }
        close_obj(&mut out, first, 2);
    }
    out.push_str(",\n  \"histograms\": {");
    {
        let map = poison_ok(registry().histograms.lock());
        let mut first = true;
        for (name, h) in map.iter() {
            sep(&mut out, &mut first);
            push_key(&mut out, name, 4);
            let s = h.snapshot();
            out.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
                s.count, s.sum, s.min, s.max
            ));
            push_f64(&mut out, s.mean());
            out.push_str(&format!(
                ", \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \
                 \"buckets\": [",
                s.quantile(0.5),
                s.quantile(0.9),
                s.quantile(0.95),
                s.quantile(0.99),
                s.quantile(0.999)
            ));
            let mut bfirst = true;
            for (i, &c) in s.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !bfirst {
                    out.push_str(", ");
                }
                bfirst = false;
                out.push_str(&format!("[{}, {c}]", bucket_bound(i)));
            }
            out.push_str("]}");
        }
        close_obj(&mut out, first, 2);
    }
    out.push_str("\n}\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
}

fn push_key(out: &mut String, name: &str, indent: usize) {
    for _ in 0..indent {
        out.push(' ');
    }
    out.push('"');
    // Metric names are static identifiers (no quotes/backslashes), but
    // escape defensively so the dump is always valid JSON.
    out.push_str(&crate::span::json_escape(name));
    out.push_str("\": ");
}

fn close_obj(out: &mut String, empty: bool, indent: usize) {
    if !empty {
        out.push('\n');
        for _ in 0..indent {
            out.push(' ');
        }
    }
    out.push('}');
}

/// JSON has no Infinity/NaN literals; clamp them to null-safe numbers.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral f64s without a dot; keep them typed as
        // floats so strict consumers see a consistent schema.
        if !s.contains('.') && !s.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push('0');
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // Zero gets its own bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_bound(0), 0);
        // Each power of two opens a new bucket; the value just below it
        // closes the previous one.
        for i in 1..64u32 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_of(lo), i as usize, "lower edge of bucket {i}");
            assert_eq!(bucket_of(hi), i as usize, "upper edge of bucket {i}");
            assert_eq!(bucket_of(hi) + 1, bucket_of(hi + 1), "boundary {i}");
            assert_eq!(bucket_bound(i as usize), hi);
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
    }

    #[test]
    fn histogram_totals_and_extremes() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 3 + 4 + 1000).wrapping_add(u64::MAX)
        );
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 1); // 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.buckets[64], 1); // MAX
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_land_on_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(1 << 20); // bucket 21
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 127);
        assert_eq!(s.quantile(0.9), 127);
        // p99 falls in the tail bucket; reported bound is clamped to max.
        assert_eq!(s.quantile(0.99), 1 << 20);
        assert_eq!(s.quantile(1.0), 1 << 20);
    }

    #[test]
    fn counter_sums_stripes() {
        let c = Counter::new();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn registry_returns_same_handle() {
        let a = counter("test.registry.same_handle") as *const Counter;
        let b = counter("test.registry.same_handle") as *const Counter;
        assert_eq!(a, b);
    }
}
