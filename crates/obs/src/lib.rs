//! # obs — deterministic-safe tracing and metrics
//!
//! Telemetry for the monitoring pipeline, built around one hard contract:
//! **observability is strictly out-of-band**. Nothing in this crate touches
//! an RNG stream, stage-visible state, or anything else a simulation result
//! could depend on — recording uses wall-clock time and process-global
//! atomics only, so `StudyResults` is byte-identical with telemetry on or
//! off, at any thread count (`telemetry_equivalence` in `dangling-core`
//! proves it end to end).
//!
//! Three subsystems:
//!
//! - [`metrics`] — sharded [`Counter`]/[`Gauge`]/[`Histogram`] primitives.
//!   Writes are relaxed atomic increments on per-thread stripes; merging
//!   happens only at scrape time, so the parallel crawl pays near-zero
//!   contention. A process-global registry dumps everything as JSON
//!   (`repro --metrics out.json`).
//! - [`span`] — wall-clock spans with sim-time/round correlation, recorded
//!   into a per-thread buffer (flushed to a global sink on overflow or
//!   thread exit, never on the hot path) and exported as Chrome
//!   `trace_event` JSON, directly loadable in Perfetto
//!   (`repro --trace out.json`).
//! - [`output`] — verbosity-gated human output ([`info!`], [`warn!`],
//!   [`progress!`]) replacing ad-hoc `eprintln!` calls; libraries default to
//!   silent, binaries opt in.
//! - [`causal`] — deterministic, *virtual-time* causal traces of individual
//!   crawls (`trace/{fqdn}/{day}`-keyed ids, keyed sampling, Perfetto flow
//!   arrows, per-round critical-path analysis). Opt-in via
//!   [`set_causal_tracing`]; like everything else here, provably unable to
//!   perturb results.
//!
//! ## Always-on vs. opt-in
//!
//! Metric recording is always compiled in and always on: a write is one
//! relaxed `fetch_add` on a cache-padded stripe, cheap enough to leave
//! enabled (`obs_overhead` bench asserts <2% on a full crawl round). Span
//! *collection* is opt-in via [`set_tracing`] because spans allocate buffer
//! entries; a [`SpanGuard`] created while tracing is off still measures time
//! for its optional histogram but records no trace event.
//!
//! ## Metric naming scheme
//!
//! `subsystem.metric[_unit]`, lowercase, dot-separated subsystem, underscore
//! words: `pipeline.crawl_ns`, `crawl.steals`, `storelog.commit_ns`,
//! `world.hijacks`. Durations are always `_ns` histograms; ratios are
//! gauges.

pub mod causal;
pub mod metrics;
pub mod output;
pub mod span;

pub use causal::{
    causal_enabled, collect_causal, critical_paths, sampled, set_causal_tracing, set_trace_sample,
    take_causal, trace_id, trace_sample, CausalSpan, RoundCriticalPath, TraceCtx, TraceDigest,
    TraceId,
};
pub use metrics::{counter, gauge, histogram, metrics_json, Counter, Gauge, Histogram};
pub use output::{set_progress, set_verbosity, Verbosity};
pub use span::{
    export_trace, set_tracing, take_spans, tracing_enabled, write_chrome_trace,
    write_chrome_trace_with_causal, SpanGuard, SpanRecord,
};

/// Start a span named `name` under category `cat`. The guard records a trace
/// event when dropped (if tracing is enabled — see [`span::set_tracing`])
/// and optionally feeds its duration into a histogram via
/// [`SpanGuard::record_into`].
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    SpanGuard::new(name, cat)
}
