//! Wall-clock spans and Chrome `trace_event` export.
//!
//! A [`SpanGuard`] measures from construction to drop. Completed spans go
//! into a per-thread buffer (no lock, no allocation beyond the `Vec` push);
//! the buffer drains into a global sink when it overflows or when the
//! thread exits (the thread-local's destructor), so crawl workers spawned
//! per round never block each other. [`take_spans`] + [`write_chrome_trace`]
//! turn the sink into a JSON file Perfetto (ui.perfetto.dev) loads directly.
//!
//! Span *collection* is globally gated by [`set_tracing`] — off by default,
//! flipped on by `repro --trace`. A guard created while tracing is off still
//! times itself (for [`SpanGuard::record_into`] histograms) but never
//! touches the buffers. None of this can perturb simulation results: spans
//! read the wall clock and write telemetry buffers, nothing else.

use std::cell::RefCell;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Flush threshold for the per-thread buffer: one lock acquisition per this
/// many spans, amortized to nothing.
const FLUSH_AT: usize = 256;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Enable or disable span collection process-wide. Metrics are unaffected
/// (always on); only trace-event recording is gated.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The process trace epoch: all timestamps are relative to the first span
/// ever started, so traces start near t=0.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn sink_push(spans: &mut Vec<SpanRecord>) {
    if spans.is_empty() {
        return;
    }
    let mut s = match sink().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    s.append(spans);
}

/// One span argument value (rendered into the trace event's `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    I64(i64),
    F64(f64),
    Str(String),
}

/// A completed span, as buffered and exported.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub name: &'static str,
    pub cat: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Small per-thread id (assigned in thread-creation order).
    pub tid: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

struct TlBuf {
    tid: u64,
    spans: Vec<SpanRecord>,
}

impl Drop for TlBuf {
    fn drop(&mut self) {
        sink_push(&mut self.spans);
    }
}

thread_local! {
    static BUF: RefCell<TlBuf> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(0);
        RefCell::new(TlBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            spans: Vec::new(),
        })
    };
}

/// Measures from construction to drop; see [`crate::span`].
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    /// Captured at construction so one span is recorded consistently even if
    /// tracing is toggled mid-flight.
    tracing: bool,
    args: Vec<(&'static str, ArgValue)>,
    hist: Option<&'static str>,
}

impl SpanGuard {
    pub fn new(name: &'static str, cat: &'static str) -> Self {
        SpanGuard {
            name,
            cat,
            start: Instant::now(),
            tracing: tracing_enabled(),
            args: Vec::new(),
            hist: None,
        }
    }

    /// Attach an integer argument (e.g. the sim day or round number — this
    /// is the sim-time correlation visible in Perfetto).
    pub fn arg_i64(mut self, key: &'static str, v: i64) -> Self {
        if self.tracing {
            self.args.push((key, ArgValue::I64(v)));
        }
        self
    }

    pub fn arg_f64(mut self, key: &'static str, v: f64) -> Self {
        if self.tracing {
            self.args.push((key, ArgValue::F64(v)));
        }
        self
    }

    pub fn arg_str(mut self, key: &'static str, v: &str) -> Self {
        if self.tracing {
            self.args.push((key, ArgValue::Str(v.to_string())));
        }
        self
    }

    /// Also record the span's duration (ns) into the named histogram on
    /// drop — works whether or not tracing is enabled, so `--metrics` gets
    /// stage timings without `--trace`.
    pub fn record_into(mut self, histogram: &'static str) -> Self {
        self.hist = Some(histogram);
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        if let Some(h) = self.hist {
            crate::metrics::histogram(h).record(dur_ns);
        }
        if !self.tracing {
            return;
        }
        let start_ns = self.start.duration_since(epoch()).as_nanos() as u64;
        let args = std::mem::take(&mut self.args);
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            let tid = b.tid;
            b.spans.push(SpanRecord {
                name: self.name,
                cat: self.cat,
                start_ns,
                dur_ns,
                tid,
                args,
            });
            if b.spans.len() >= FLUSH_AT {
                let mut spans = std::mem::take(&mut b.spans);
                sink_push(&mut spans);
            }
        });
    }
}

/// Drain every collected span: the calling thread's buffer is flushed first;
/// buffers of exited threads were flushed by their destructors. (Spans still
/// buffered on other *live* threads are not included — export after joining
/// workers, as the pipeline does.)
pub fn take_spans() -> Vec<SpanRecord> {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let mut spans = std::mem::take(&mut b.spans);
        sink_push(&mut spans);
    });
    let mut s = match sink().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    std::mem::take(&mut *s)
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write spans as Chrome `trace_event` JSON (the `traceEvents` array form),
/// loadable in Perfetto and `chrome://tracing`. Timestamps and durations are
/// microseconds with ns precision kept as fractions.
pub fn write_chrome_trace<W: Write>(spans: &[SpanRecord], w: &mut W) -> io::Result<()> {
    write_chrome_trace_with_causal(spans, &[], w)
}

/// [`write_chrome_trace`], plus causal virtual-time spans appended as a
/// second Perfetto process (pid 2) with flow arrows — see [`crate::causal`].
/// The two tracks share one file: pid 1 is the wall clock, pid 2 the
/// simulated clock.
pub fn write_chrome_trace_with_causal<W: Write>(
    spans: &[SpanRecord],
    causal: &[crate::causal::CausalSpan],
    w: &mut W,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"displayTimeUnit\": \"ms\",")?;
    writeln!(w, "  \"traceEvents\": [")?;
    write!(
        w,
        "    {{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"repro monitoring pipeline\"}}}}"
    )?;
    for s in spans {
        write!(
            w,
            ",\n    {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {}.{:03}, \"dur\": {}.{:03}",
            json_escape(s.name),
            json_escape(s.cat),
            s.tid,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
        )?;
        if !s.args.is_empty() {
            write!(w, ", \"args\": {{")?;
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    write!(w, ", ")?;
                }
                write!(w, "\"{}\": ", json_escape(k))?;
                match v {
                    ArgValue::I64(n) => write!(w, "{n}")?,
                    ArgValue::F64(f) if f.is_finite() => write!(w, "{f}")?,
                    ArgValue::F64(_) => write!(w, "0")?,
                    ArgValue::Str(s) => write!(w, "\"{}\"", json_escape(s))?,
                }
            }
            write!(w, "}}")?;
        }
        write!(w, "}}")?;
    }
    crate::causal::write_causal_trace_events(causal, w)?;
    writeln!(w, "\n  ]")?;
    writeln!(w, "}}")?;
    Ok(())
}

/// Drain all wall spans, collect any causal virtual-time spans, and write
/// both tracks to `path` as Chrome trace JSON. Returns the number of
/// exported events (wall + causal).
pub fn export_trace(path: &std::path::Path) -> io::Result<usize> {
    let spans = take_spans();
    let causal = crate::causal::collect_causal();
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace_with_causal(&spans, &causal, &mut f)?;
    f.flush()?;
    Ok(spans.len() + causal.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracing flag and span sink are process-global; tests that toggle
    /// them must not interleave.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _l = test_lock();
        set_tracing(false);
        drop(SpanGuard::new("quiet", "test").arg_i64("k", 1));
        // Only spans from this test's thread matter; other tests may race
        // the global sink, so assert on name absence rather than emptiness.
        assert!(take_spans().iter().all(|s| s.name != "quiet"));
    }

    #[test]
    fn span_guard_times_and_buffers() {
        let _l = test_lock();
        set_tracing(true);
        {
            let _g = SpanGuard::new("unit_test_span", "test")
                .arg_i64("day", 42)
                .arg_str("stage", "crawl");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_tracing(false);
        let spans = take_spans();
        let s = spans
            .iter()
            .find(|s| s.name == "unit_test_span")
            .expect("span recorded");
        assert!(s.dur_ns >= 1_000_000, "slept 2ms, got {}ns", s.dur_ns);
        assert!(s.args.contains(&("day", ArgValue::I64(42))));
    }

    #[test]
    fn worker_thread_buffers_flush_on_exit() {
        let _l = test_lock();
        set_tracing(true);
        std::thread::scope(|sc| {
            for _ in 0..4 {
                sc.spawn(|| {
                    drop(SpanGuard::new("worker_span", "test"));
                });
            }
        });
        set_tracing(false);
        let spans = take_spans();
        let workers = spans.iter().filter(|s| s.name == "worker_span").count();
        assert_eq!(workers, 4, "each exiting thread flushed its buffer");
    }

    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
