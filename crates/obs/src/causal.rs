//! Causal, **virtual-time** tracing across the submit/poll state machines.
//!
//! Wall-clock spans ([`crate::span`]) answer "where does the *process* spend
//! time"; causal spans answer "where does a *crawl* spend simulated time".
//! Each crawl admitted to a shard event loop gets a deterministic
//! [`TraceId`] keyed exactly like the RNG streams (`trace/{fqdn}/{day}`),
//! and every state machine it passes through — `dns::ResolutionInFlight`,
//! `httpsim::ProbeInFlight`, `core::monitor::CrawlInFlight` — emits child
//! spans stamped in simulated nanoseconds from the completion queue's
//! `NetTime` clock. The root span decomposes the crawl into **queue-wait**
//! (virtual time between round start and admission to an in-flight slot)
//! and **service** (the sum of priced network waits); because a task's
//! events are contiguous in virtual time, the decomposition is exact:
//! `queue_wait + service == total`, span for span.
//!
//! Determinism contract: nothing here can perturb results. The trace id is
//! a pure hash of `(fqdn, day)` — no RNG stream is touched, derived, or
//! reordered — and the sampling decision ([`sampled`]) is a modulus on that
//! hash, so it is identical at any thread count and any sample rate.
//! Collection mirrors [`crate::span`]: per-thread buffers, a global sink,
//! flush on overflow or thread exit. `StudyResults` stays byte-identical
//! with causal tracing on or off (the `telemetry_equivalence` causal leg
//! pins it).
//!
//! Export: [`write_causal_trace_events`] renders the spans as Chrome
//! `trace_event` slices on a second Perfetto "process" (pid 2 — the virtual
//! clock), one synthetic thread per trace, linked by flow arrows so one
//! FQDN's crawl reads as one causal chain. [`critical_paths`] computes the
//! per-round critical path (longest causal chain), its queue-wait/service
//! decomposition, and the top-K slowest FQDNs.

use crate::span::ArgValue;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Flush threshold for the per-thread buffer (same amortization as wall
/// spans).
const FLUSH_AT: usize = 256;

static CAUSAL: AtomicBool = AtomicBool::new(false);
static SAMPLE: AtomicU64 = AtomicU64::new(1);

/// Enable or disable causal span collection process-wide. Off by default;
/// `repro --critical-path` / `--trace` flip it on.
pub fn set_causal_tracing(on: bool) {
    CAUSAL.store(on, Ordering::Relaxed);
}

pub fn causal_enabled() -> bool {
    CAUSAL.load(Ordering::Relaxed)
}

/// Keyed sampling: keep one trace in `n` (`repro --trace-sample N`). The
/// decision is a modulus over the trace-id hash, so which FQDNs are kept is
/// a pure function of `(fqdn, day, n)` — never of thread count or timing.
pub fn set_trace_sample(n: u64) {
    SAMPLE.store(n.max(1), Ordering::Relaxed);
}

pub fn trace_sample() -> u64 {
    SAMPLE.load(Ordering::Relaxed).max(1)
}

/// Deterministic identity of one crawl's causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The trace id for crawling `fqdn` on simulated day `day` — FNV-1a over
/// the stream path `trace/{fqdn}/{day}`, mirroring how RNG streams are
/// keyed by content rather than call order.
pub fn trace_id(fqdn: &str, day: i64) -> TraceId {
    TraceId(fnv1a(FNV_OFFSET, format!("trace/{fqdn}/{day}").as_bytes()))
}

/// Is this trace kept under the current sampling rate (and is causal
/// tracing on at all)?
pub fn sampled(id: TraceId) -> bool {
    causal_enabled() && id.0.is_multiple_of(trace_sample())
}

/// Span-id salts: one namespace per machine so the two `ProbeInFlight`
/// instances of a crawl (index, sitemap) can never collide.
pub const SALT_ROOT: u64 = 0;
pub const SALT_DNS: u64 = 1;
pub const SALT_INDEX: u64 = 2;
pub const SALT_SITEMAP: u64 = 3;

/// Deterministic span id: FNV-1a over `(trace, salt, index)`.
pub fn span_id(trace: TraceId, salt: u64, index: u64) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &trace.0.to_le_bytes());
    h = fnv1a(h, &salt.to_le_bytes());
    fnv1a(h, &index.to_le_bytes())
}

/// The causal context one machine hands the next: everything a child span
/// needs to link itself into the trace. `base_ns` is the virtual instant
/// the machine started at; children stamp `base_ns + elapsed-so-far`.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    pub trace: TraceId,
    /// Span id of the enclosing (root) span.
    pub parent: u64,
    /// Virtual start of this machine's window.
    pub base_ns: u64,
    /// Span-id namespace for this machine's children.
    pub salt: u64,
    /// Simulated day of the round (groups traces per round).
    pub day: i64,
}

impl TraceCtx {
    /// The root context for one crawl admitted at virtual time `base_ns`.
    pub fn root(trace: TraceId, base_ns: u64, day: i64) -> TraceCtx {
        TraceCtx {
            trace,
            parent: span_id(trace, SALT_ROOT, 0),
            base_ns,
            salt: SALT_ROOT,
            day,
        }
    }

    /// Derive the context for a child machine starting at `base_ns` in the
    /// span-id namespace `salt`. The parent link stays the root span.
    pub fn child(&self, salt: u64, base_ns: u64) -> TraceCtx {
        TraceCtx {
            salt,
            base_ns,
            ..*self
        }
    }

    /// Emit the `index`-th child span of this context: one completed
    /// network wait of `dur_ns` starting at `start_ns` (both virtual).
    pub fn emit_child(
        &self,
        index: u64,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        emit(CausalSpan {
            trace: self.trace,
            span_id: span_id(self.trace, self.salt, index),
            parent: Some(self.parent),
            name,
            fqdn: String::new(),
            day: self.day,
            start_ns,
            dur_ns,
            queue_wait_ns: 0,
            service_ns: dur_ns,
            args,
        });
    }
}

/// One completed causal span, stamped in simulated nanoseconds.
#[derive(Debug, Clone)]
pub struct CausalSpan {
    pub trace: TraceId,
    pub span_id: u64,
    /// `None` marks the trace's root span.
    pub parent: Option<u64>,
    pub name: &'static str,
    /// The crawled FQDN (root spans only; empty on children).
    pub fqdn: String,
    pub day: i64,
    /// Virtual nanoseconds since round start.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Virtual time spent waiting for an in-flight slot (root spans).
    pub queue_wait_ns: u64,
    /// Virtual time spent in priced network waits.
    pub service_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl CausalSpan {
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

struct TlBuf {
    spans: Vec<CausalSpan>,
}

impl Drop for TlBuf {
    fn drop(&mut self) {
        sink_push(&mut self.spans);
    }
}

thread_local! {
    static BUF: RefCell<TlBuf> = const { RefCell::new(TlBuf { spans: Vec::new() }) };
}

fn sink() -> &'static Mutex<Vec<CausalSpan>> {
    static SINK: OnceLock<Mutex<Vec<CausalSpan>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn sink_push(spans: &mut Vec<CausalSpan>) {
    if spans.is_empty() {
        return;
    }
    let mut s = match sink().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    s.append(spans);
}

/// Buffer one completed span. Callers gate on [`sampled`] (a machine only
/// carries a [`TraceCtx`] when its trace was kept), so this is
/// unconditional.
pub fn emit(span: CausalSpan) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.spans.push(span);
        if b.spans.len() >= FLUSH_AT {
            let mut spans = std::mem::take(&mut b.spans);
            sink_push(&mut spans);
        }
    });
}

/// Flush the calling thread's buffer into the global sink. Shard event
/// loops call this before returning so spans are visible even when the
/// worker thread is reused rather than exited.
pub fn flush_thread() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let mut spans = std::mem::take(&mut b.spans);
        sink_push(&mut spans);
    });
}

/// Flush and *clone* every collected span, leaving the sink intact — so
/// the critical-path renderer and the trace exporter can both read the
/// same run.
pub fn collect_causal() -> Vec<CausalSpan> {
    flush_thread();
    let s = match sink().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    s.clone()
}

/// Flush and *drain* every collected span (tests use this to isolate
/// legs; exited threads were flushed by their destructors).
pub fn take_causal() -> Vec<CausalSpan> {
    flush_thread();
    let mut s = match sink().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    std::mem::take(&mut *s)
}

// ---------------------------------------------------------------------------
// Perfetto export: pid 2, one synthetic thread per trace, flow arrows.
// ---------------------------------------------------------------------------

/// Order spans for export and analysis: by trace, then roots first, then
/// virtual start, then span id — fully deterministic regardless of which
/// worker flushed when.
fn sort_spans(spans: &mut [CausalSpan]) {
    spans.sort_by(|a, b| {
        (a.trace, a.parent.is_some(), a.start_ns, a.span_id).cmp(&(
            b.trace,
            b.parent.is_some(),
            b.start_ns,
            b.span_id,
        ))
    });
}

fn write_args<W: Write>(w: &mut W, pairs: &[(&str, ArgValue)]) -> io::Result<()> {
    write!(w, ", \"args\": {{")?;
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            write!(w, ", ")?;
        }
        write!(w, "\"{}\": ", crate::span::json_escape(k))?;
        match v {
            ArgValue::I64(n) => write!(w, "{n}")?,
            ArgValue::F64(f) if f.is_finite() => write!(w, "{f}")?,
            ArgValue::F64(_) => write!(w, "0")?,
            ArgValue::Str(s) => write!(w, "\"{}\"", crate::span::json_escape(s))?,
        }
    }
    write!(w, "}}")
}

fn write_ts<W: Write>(w: &mut W, key: &str, ns: u64) -> io::Result<()> {
    write!(w, ", \"{key}\": {}.{:03}", ns / 1_000, ns % 1_000)
}

/// Append causal spans to an open `traceEvents` array (every event is
/// prefixed with `,\n`): slices on pid 2 ("virtual network time"), one
/// synthetic tid per trace, plus `s`/`f` flow arrows chaining each trace's
/// spans in virtual-time order. Flow ids are the destination span ids —
/// globally unique by construction.
pub fn write_causal_trace_events<W: Write>(spans: &[CausalSpan], w: &mut W) -> io::Result<()> {
    if spans.is_empty() {
        return Ok(());
    }
    let mut spans = spans.to_vec();
    sort_spans(&mut spans);

    write!(
        w,
        ",\n    {{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", \
         \"args\": {{\"name\": \"virtual network time (causal crawl traces)\"}}}}"
    )?;

    // Intern a small tid per trace in sorted order.
    let mut tids: BTreeMap<TraceId, u64> = BTreeMap::new();
    for s in &spans {
        let next = tids.len() as u64 + 1;
        let tid = *tids.entry(s.trace).or_insert(next);
        if tid == next && s.parent.is_none() {
            write!(
                w,
                ",\n    {{\"ph\": \"M\", \"pid\": 2, \"tid\": {tid}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": \"{} (day {})\"}}}}",
                crate::span::json_escape(&s.fqdn),
                s.day
            )?;
        }
    }

    for s in &spans {
        let tid = tids[&s.trace];
        write!(
            w,
            ",\n    {{\"name\": \"{}\", \"cat\": \"causal\", \"ph\": \"X\", \
             \"pid\": 2, \"tid\": {tid}",
            crate::span::json_escape(s.name),
        )?;
        write_ts(w, "ts", s.start_ns)?;
        write_ts(w, "dur", s.dur_ns)?;
        let mut args: Vec<(&str, ArgValue)> = vec![
            ("trace", ArgValue::Str(format!("{:#018x}", s.trace.0))),
            ("span", ArgValue::Str(format!("{:#018x}", s.span_id))),
            ("day", ArgValue::I64(s.day)),
        ];
        if let Some(p) = s.parent {
            args.push(("parent", ArgValue::Str(format!("{p:#018x}"))));
        }
        if !s.fqdn.is_empty() {
            args.push(("fqdn", ArgValue::Str(s.fqdn.clone())));
        }
        if s.parent.is_none() {
            args.push(("queue_wait_ns", ArgValue::I64(s.queue_wait_ns as i64)));
            args.push(("service_ns", ArgValue::I64(s.service_ns as i64)));
        }
        args.extend(s.args.iter().cloned());
        write_args(w, &args)?;
        write!(w, "}}")?;
    }

    // Flow arrows: chain each trace's spans in virtual-time order (root
    // first — sort order guarantees it), binding step N to step N+1.
    let mut i = 0;
    while i < spans.len() {
        let trace = spans[i].trace;
        let mut j = i;
        while j + 1 < spans.len() && spans[j + 1].trace == trace {
            let (src, dst) = (&spans[j], &spans[j + 1]);
            let tid = tids[&trace];
            // The `s` event must land inside the source slice; the `f`
            // event (`bp: e`) binds to the destination slice's start.
            let ts_s = dst.start_ns.clamp(src.start_ns, src.end_ns());
            write!(
                w,
                ",\n    {{\"ph\": \"s\", \"pid\": 2, \"tid\": {tid}, \
                 \"name\": \"crawl-chain\", \"cat\": \"causal\", \
                 \"id\": \"{:#018x}\"",
                dst.span_id
            )?;
            write_ts(w, "ts", ts_s)?;
            write!(w, "}}")?;
            write!(
                w,
                ",\n    {{\"ph\": \"f\", \"bp\": \"e\", \"pid\": 2, \"tid\": {tid}, \
                 \"name\": \"crawl-chain\", \"cat\": \"causal\", \
                 \"id\": \"{:#018x}\"",
                dst.span_id
            )?;
            write_ts(w, "ts", dst.start_ns)?;
            write!(w, "}}")?;
            j += 1;
        }
        i = j + 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Critical-path analysis.
// ---------------------------------------------------------------------------

/// One trace's totals, as ranked by the analyzer.
#[derive(Debug, Clone)]
pub struct TraceDigest {
    pub trace: TraceId,
    pub fqdn: String,
    pub day: i64,
    /// Root-span duration: virtual time from round start to crawl
    /// completion.
    pub total_ns: u64,
    pub queue_wait_ns: u64,
    pub service_ns: u64,
    /// Child spans observed (network waits).
    pub spans: usize,
}

/// One round's critical path: the trace whose completion *is* the round's
/// virtual makespan, decomposed into queue-wait + service.
#[derive(Debug, Clone)]
pub struct RoundCriticalPath {
    pub day: i64,
    /// Sampled traces this round.
    pub traces: usize,
    /// Max virtual completion over the round's traces.
    pub makespan_ns: u64,
    /// Fraction of the makespan the critical trace's queue-wait + service
    /// segments account for (exactly 1.0 by construction — asserted ≥0.95
    /// by the acceptance tests, so a regression in the decomposition is
    /// loud).
    pub decomposed_fraction: f64,
    /// Sum over all traces.
    pub queue_wait_total_ns: u64,
    pub service_total_ns: u64,
    pub critical: TraceDigest,
    /// The critical trace's child spans in virtual-time order:
    /// `(name, start_ns, dur_ns)`.
    pub chain: Vec<(&'static str, u64, u64)>,
    /// Top-K slowest traces (by total), slowest first.
    pub top: Vec<TraceDigest>,
}

/// Group spans by simulated day and compute each round's critical path and
/// top-`top_k` slowest FQDNs. Deterministic: ties break on trace id.
pub fn critical_paths(spans: &[CausalSpan], top_k: usize) -> Vec<RoundCriticalPath> {
    let mut children: BTreeMap<TraceId, Vec<&CausalSpan>> = BTreeMap::new();
    let mut roots: BTreeMap<i64, Vec<&CausalSpan>> = BTreeMap::new();
    for s in spans {
        match s.parent {
            None => roots.entry(s.day).or_default().push(s),
            Some(_) => children.entry(s.trace).or_default().push(s),
        }
    }
    let mut out = Vec::new();
    for (day, mut day_roots) in roots {
        day_roots.sort_by_key(|s| (s.dur_ns, s.trace));
        let digest = |s: &CausalSpan| TraceDigest {
            trace: s.trace,
            fqdn: s.fqdn.clone(),
            day: s.day,
            total_ns: s.dur_ns,
            queue_wait_ns: s.queue_wait_ns,
            service_ns: s.service_ns,
            spans: children.get(&s.trace).map_or(0, |c| c.len()),
        };
        let critical_span = *day_roots.last().expect("non-empty day group");
        let makespan_ns = critical_span.end_ns();
        let critical = digest(critical_span);
        let mut chain: Vec<(&'static str, u64, u64)> = children
            .get(&critical_span.trace)
            .map(|c| c.iter().map(|s| (s.name, s.start_ns, s.dur_ns)).collect())
            .unwrap_or_default();
        chain.sort_by_key(|&(_, start, dur)| (start, dur));
        let decomposed = critical.queue_wait_ns + critical.service_ns;
        out.push(RoundCriticalPath {
            day,
            traces: day_roots.len(),
            makespan_ns,
            decomposed_fraction: if makespan_ns == 0 {
                1.0
            } else {
                decomposed as f64 / makespan_ns as f64
            },
            queue_wait_total_ns: day_roots.iter().map(|s| s.queue_wait_ns).sum(),
            service_total_ns: day_roots.iter().map(|s| s.service_ns).sum(),
            critical,
            chain,
            top: day_roots
                .iter()
                .rev()
                .take(top_k)
                .map(|s| digest(s))
                .collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(fqdn: &str, day: i64, wait: u64, service: u64) -> CausalSpan {
        let trace = trace_id(fqdn, day);
        CausalSpan {
            trace,
            span_id: span_id(trace, SALT_ROOT, 0),
            parent: None,
            name: "crawl",
            fqdn: fqdn.into(),
            day,
            start_ns: 0,
            dur_ns: wait + service,
            queue_wait_ns: wait,
            service_ns: service,
            args: Vec::new(),
        }
    }

    #[test]
    fn trace_ids_are_content_keyed() {
        assert_eq!(trace_id("a.example", 7), trace_id("a.example", 7));
        assert_ne!(trace_id("a.example", 7), trace_id("a.example", 14));
        assert_ne!(trace_id("a.example", 7), trace_id("b.example", 7));
    }

    #[test]
    fn sampling_is_a_pure_hash_decision() {
        set_causal_tracing(true);
        set_trace_sample(4);
        let kept: Vec<bool> = (0..64)
            .map(|i| sampled(trace_id(&format!("h{i}.example"), 3)))
            .collect();
        // Same inputs, same decisions.
        for (i, k) in kept.iter().enumerate() {
            assert_eq!(*k, sampled(trace_id(&format!("h{i}.example"), 3)));
        }
        assert!(kept.iter().any(|k| *k), "1-in-4 kept none of 64");
        assert!(kept.iter().any(|k| !*k), "1-in-4 kept all of 64");
        set_trace_sample(1);
        assert!(sampled(trace_id("h0.example", 3)), "sample 1 keeps all");
        set_causal_tracing(false);
        assert!(!sampled(trace_id("h0.example", 3)), "disabled keeps none");
    }

    #[test]
    fn span_ids_differ_across_salts_and_indices() {
        let t = trace_id("x.example", 1);
        let ids = [
            span_id(t, SALT_ROOT, 0),
            span_id(t, SALT_DNS, 0),
            span_id(t, SALT_DNS, 1),
            span_id(t, SALT_INDEX, 0),
            span_id(t, SALT_SITEMAP, 0),
        ];
        let mut dedup = ids.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn critical_path_finds_the_makespan_trace() {
        let spans = vec![
            root("fast.example", 7, 10, 100),
            root("slow.example", 7, 500, 2_000),
            root("mid.example", 7, 50, 300),
            root("other-day.example", 14, 1, 2),
        ];
        let rounds = critical_paths(&spans, 2);
        assert_eq!(rounds.len(), 2);
        let day7 = &rounds[0];
        assert_eq!(day7.day, 7);
        assert_eq!(day7.traces, 3);
        assert_eq!(day7.makespan_ns, 2_500);
        assert_eq!(day7.critical.fqdn, "slow.example");
        assert!((day7.decomposed_fraction - 1.0).abs() < 1e-12);
        assert_eq!(day7.top.len(), 2);
        assert_eq!(day7.top[0].fqdn, "slow.example");
        assert_eq!(day7.top[1].fqdn, "mid.example");
        assert_eq!(day7.queue_wait_total_ns, 560);
        assert_eq!(day7.service_total_ns, 2_400);
    }

    #[test]
    fn export_produces_slices_and_flows() {
        let trace = trace_id("flow.example", 3);
        let mut spans = vec![root("flow.example", 3, 5, 45)];
        let ctx = TraceCtx::root(trace, 5, 3);
        spans.push(CausalSpan {
            trace,
            span_id: span_id(trace, SALT_DNS, 0),
            parent: Some(ctx.parent),
            name: "dns.query",
            fqdn: String::new(),
            day: 3,
            start_ns: 5,
            dur_ns: 20,
            queue_wait_ns: 0,
            service_ns: 20,
            args: Vec::new(),
        });
        spans.push(CausalSpan {
            trace,
            span_id: span_id(trace, SALT_INDEX, 0),
            parent: Some(ctx.parent),
            name: "probe.connect",
            fqdn: String::new(),
            day: 3,
            start_ns: 25,
            dur_ns: 25,
            queue_wait_ns: 0,
            service_ns: 25,
            args: Vec::new(),
        });
        let mut buf = Vec::new();
        write_causal_trace_events(&spans, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"pid\": 2"));
        assert!(text.contains("virtual network time"));
        assert!(text.contains("\"ph\": \"s\""));
        assert!(text.contains("\"bp\": \"e\""));
        // Two edges (root->dns, dns->probe), ids = destination span ids.
        assert_eq!(text.matches("\"ph\": \"s\"").count(), 2);
        assert_eq!(text.matches("\"ph\": \"f\"").count(), 2);
        let dns_id = format!("{:#018x}", span_id(trace, SALT_DNS, 0));
        assert!(text.contains(&dns_id));
    }
}
