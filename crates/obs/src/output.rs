//! Verbosity-gated human output: the replacement for ad-hoc `eprintln!`
//! scattered through binaries and stages.
//!
//! Three channels, all writing to stderr so stdout stays machine-readable:
//!
//! - [`info!`] — normal progress narration. Printed at
//!   [`Verbosity::Normal`]; silent at [`Verbosity::Quiet`] (the library
//!   default, so `cargo test` output and embedding programs stay clean —
//!   binaries like `repro` opt in at startup, and `repro -q` opts back
//!   out).
//! - [`warn!`] — problems worth seeing regardless of verbosity (recovery
//!   after torn tails, refused resumes). Always printed.
//! - [`progress!`] — the per-monitoring-round status line. Off by default
//!   even at Normal verbosity (a multi-year run emits hundreds); enabled
//!   explicitly with `repro --progress`.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// How chatty [`info!`] is. [`warn!`] ignores this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Library default: only warnings reach stderr.
    Quiet = 0,
    /// Binary default: info narration too.
    Normal = 1,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(Verbosity::Quiet as u8);
static PROGRESS: AtomicBool = AtomicBool::new(false);

pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        _ => Verbosity::Normal,
    }
}

/// Enable the per-round [`progress!`] line.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

#[doc(hidden)]
pub fn info_args(args: std::fmt::Arguments<'_>) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("{args}");
    }
}

#[doc(hidden)]
pub fn warn_args(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

#[doc(hidden)]
pub fn progress_args(args: std::fmt::Arguments<'_>) {
    if progress_enabled() {
        eprintln!("{args}");
    }
}

/// Narrate progress; printed at [`Verbosity::Normal`] and above.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::output::info_args(format_args!($($t)*)) };
}

/// Report a problem; printed at every verbosity.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::output::warn_args(format_args!($($t)*)) };
}

/// Per-monitoring-round status line; printed only when enabled via
/// [`set_progress`].
#[macro_export]
macro_rules! progress {
    ($($t:tt)*) => { $crate::output::progress_args(format_args!($($t)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_without_progress() {
        // Other tests may have flipped the globals; assert the ordering
        // relation instead of the raw default where racy.
        assert!(Verbosity::Quiet < Verbosity::Normal);
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        set_verbosity(Verbosity::Normal);
        assert_eq!(verbosity(), Verbosity::Normal);
        set_verbosity(Verbosity::Quiet);
        set_progress(true);
        assert!(progress_enabled());
        set_progress(false);
        assert!(!progress_enabled());
    }
}
