//! Concurrency and export-format tests: striped metrics must merge exactly
//! under contention, and both JSON exports must parse with a real JSON
//! parser (the serde_json shim — dev-dependency only; obs itself stays
//! std-only).

use obs::metrics::{Counter, Histogram};

const THREADS: usize = 8;
const PER_THREAD: u64 = 100_000;

#[test]
fn concurrent_counter_merge_is_exact() {
    let c = Counter::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_merge_is_exact() {
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread values across buckets and per-thread extremes.
                    h.record((t as u64 + 1) * 1000 + (i % 7));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.min, 1000);
    assert_eq!(snap.max, THREADS as u64 * 1000 + 6);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| {
            (0..PER_THREAD)
                .map(|i| (t + 1) * 1000 + (i % 7))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

#[test]
fn metrics_json_parses_and_contains_registered_metrics() {
    obs::counter("test.json.counter").add(7);
    obs::gauge("test.json.gauge").set(1.5);
    let h = obs::histogram("test.json.hist_ns");
    for v in [10u64, 20, 30, 4096] {
        h.record(v);
    }
    let dump = obs::metrics_json();
    let v: serde_json::Value = serde_json::from_str(&dump).expect("metrics dump is valid JSON");
    assert_eq!(v["counters"]["test.json.counter"], 7);
    assert_eq!(v["gauges"]["test.json.gauge"], 1.5);
    let hist = &v["histograms"]["test.json.hist_ns"];
    assert_eq!(hist["count"], 4);
    assert_eq!(hist["min"], 10);
    assert_eq!(hist["max"], 4096);
    assert!(hist["buckets"].as_array().is_some_and(|b| !b.is_empty()));
}

#[test]
fn chrome_trace_parses_with_expected_shape() {
    obs::set_tracing(true);
    {
        let _g = obs::span("trace_test", "test")
            .arg_i64("day", 35)
            .arg_str("stage", "crawl \"quoted\"");
    }
    obs::set_tracing(false);
    let spans: Vec<_> = obs::take_spans()
        .into_iter()
        .filter(|s| s.name == "trace_test")
        .collect();
    assert!(!spans.is_empty());
    let mut out = Vec::new();
    obs::write_chrome_trace(&spans, &mut out).unwrap();
    let v: serde_json::Value = serde_json::from_slice(&out).expect("chrome trace is valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    // Metadata event + the span.
    assert!(events.len() >= 2);
    let span = events
        .iter()
        .find(|e| e["name"] == "trace_test")
        .expect("span event present");
    assert_eq!(span["ph"], "X");
    assert_eq!(span["cat"], "test");
    assert_eq!(span["args"]["day"], 35);
    assert!(span["dur"].as_f64().is_some());
}
