//! Hijack economics (§4.3).
//!
//! The paper infers attacker rationality from the data: every observed
//! hijack used a freetext resource, none used the IP lottery, and Google's
//! randomized names were untouched. This module makes that reasoning
//! executable: given an opportunity and a cost model, [`CostModel::decide`]
//! returns what a profit-maximizing attacker would do.

use cloudsim::{NamingModel, ServiceId};
use serde::{Deserialize, Serialize};

/// Attacker-side costs and valuations, in arbitrary currency units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of registering one freetext resource (an API call + minutes of
    /// operator time). Essentially free on all platforms' free tiers.
    pub freetext_registration_cost: f64,
    /// Cost of one allocate-check-release cycle against an IP pool
    /// (allocation fees + rate limits + time).
    pub ip_allocation_cycle_cost: f64,
    /// Expected revenue from monetizing one hijacked domain of median
    /// reputation (SEO referral income over the abuse lifetime).
    pub median_domain_value: f64,
    /// Revenue multiplier per unit of log-popularity (higher-reputation
    /// domains earn more).
    pub reputation_multiplier: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            freetext_registration_cost: 0.05,
            ip_allocation_cycle_cost: 0.08,
            median_domain_value: 40.0,
            reputation_multiplier: 12.0,
        }
    }
}

/// The decision for one dangling-record opportunity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HijackDecision {
    /// Register the freetext name; expected cost is the registration fee.
    ProceedFreetext { expected_cost: f64 },
    /// Decline: the resource identity is drawn from a pool of `pool_size`
    /// and the expected lottery cost exceeds the domain's value.
    DeclineIpLottery {
        expected_attempts: f64,
        expected_cost: f64,
        domain_value: f64,
    },
    /// Decline: the provider generates unguessable names; re-registration is
    /// impossible at any cost.
    ImpossibleRandomName,
}

impl HijackDecision {
    pub fn proceeds(&self) -> bool {
        matches!(self, HijackDecision::ProceedFreetext { .. })
    }
}

impl CostModel {
    /// Value of a domain given its Tranco-style rank (None = unranked).
    pub fn domain_value(&self, tranco_rank: Option<u32>) -> f64 {
        match tranco_rank {
            Some(r) => {
                // log-scaled: rank 1 ≈ value*(1+6·mult), rank 1M ≈ median.
                let boost = (1_000_000.0 / r.max(1) as f64).log10().max(0.0);
                self.median_domain_value + self.reputation_multiplier * boost
            }
            None => self.median_domain_value * 0.5,
        }
    }

    /// Decide whether to pursue a dangling record pointing at `service`,
    /// with `pool_free` free addresses in the relevant pool (IP services).
    ///
    /// For IP-pool targets the attacker holds intermediate allocations
    /// within a round (sampling without replacement), so the expected number
    /// of allocations to hit one specific address is `(N+1)/2`.
    pub fn decide(
        &self,
        service: ServiceId,
        tranco_rank: Option<u32>,
        pool_free: u64,
    ) -> HijackDecision {
        let spec = cloudsim::provider::spec(service);
        match spec.naming {
            NamingModel::Freetext => HijackDecision::ProceedFreetext {
                expected_cost: self.freetext_registration_cost,
            },
            NamingModel::RandomName => HijackDecision::ImpossibleRandomName,
            NamingModel::IpPool => {
                // With realistic pool sizes the expected cost dwarfs any
                // domain's value, and cheaper freetext targets are always in
                // supply — the attacker declines. (The economics are
                // reported so the `repro economics` experiment can show the
                // crossover that never occurs in practice.)
                let expected_attempts = (pool_free as f64 + 1.0) / 2.0;
                let expected_cost = expected_attempts * self.ip_allocation_cycle_cost;
                let domain_value = self.domain_value(tranco_rank);
                HijackDecision::DeclineIpLottery {
                    expected_attempts,
                    expected_cost,
                    domain_value,
                }
            }
        }
    }

    /// The break-even pool size below which a targeted IP lottery would be
    /// rational for a domain of the given rank.
    pub fn breakeven_pool_size(&self, tranco_rank: Option<u32>) -> u64 {
        let value = self.domain_value(tranco_rank);
        // value = ((N+1)/2) * cycle_cost  =>  N = 2*value/cost - 1
        ((2.0 * value / self.ip_allocation_cycle_cost) - 1.0).max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freetext_always_proceeds() {
        let m = CostModel::default();
        let d = m.decide(ServiceId::AzureWebApp, Some(100), 0);
        assert!(d.proceeds());
        let d = m.decide(ServiceId::HerokuApp, None, 0);
        assert!(d.proceeds());
    }

    #[test]
    fn random_names_impossible() {
        let m = CostModel::default();
        assert_eq!(
            m.decide(ServiceId::GoogleAppEngine, Some(1), 0),
            HijackDecision::ImpossibleRandomName
        );
    }

    #[test]
    fn ip_lottery_declined_at_realistic_pool_sizes() {
        let m = CostModel::default();
        // EC2 pools hold millions of addresses.
        let d = m.decide(ServiceId::AwsEc2PublicIp, Some(1), 4_000_000);
        assert!(!d.proceeds());
        match d {
            HijackDecision::DeclineIpLottery {
                expected_cost,
                domain_value,
                expected_attempts,
            } => {
                assert!(expected_cost > domain_value * 100.0);
                assert!((expected_attempts - 2_000_000.5).abs() < 1.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn value_grows_with_reputation() {
        let m = CostModel::default();
        assert!(m.domain_value(Some(10)) > m.domain_value(Some(100_000)));
        assert!(m.domain_value(Some(100_000)) > m.domain_value(None));
    }

    #[test]
    fn breakeven_is_tiny_compared_to_real_pools() {
        let m = CostModel::default();
        let be = m.breakeven_pool_size(Some(100));
        // Even a top-100 domain only justifies a pool of a few thousand —
        // orders of magnitude below real cloud pools (§4.3's conclusion).
        assert!(be < 10_000, "breakeven = {be}");
        assert!(be > 100);
    }
}
