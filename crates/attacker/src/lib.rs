//! # attacker — adversary behaviour models
//!
//! The paper's central empirical finding is *which* attacks real adversaries
//! run: deterministic re-registration of user-nameable cloud resources,
//! monetized overwhelmingly through blackhat SEO for Indonesian gambling,
//! organized into ~1,800 identifier-sharing infrastructures. This crate
//! models those adversaries:
//!
//! - [`economics`] — the cost model of §4.3: freetext re-registration is
//!   O($0) and certain; a targeted IP from the pool is a lottery whose
//!   expected cost scales with the pool size. The model *decides*, per
//!   opportunity, whether a rational attacker proceeds — zero IP takeovers
//!   is an output, not an assumption.
//! - [`identifiers`] — campaign contact identifiers with the paper's
//!   geography (phones mostly +62 Indonesia / +855 Cambodia, Figure 21;
//!   backend IPs at hosting providers in US/FR/SG, Figure 26),
//! - [`campaign`] — attacker groups with heavy-tailed target sizes (the
//!   1,609-identifier giant of Figure 22 down to single-identifier loners),
//!   activity waves matching Figure 16, and the §5.6.1 certificate-issuance
//!   windows,
//! - [`scanner`] — dangling-record discovery from a passive-DNS-style feed,
//! - [`cookievault`] — §5.5's darknet cookie-leak telemetry,
//! - [`malware`] — §5.4's (nearly absent) malware hosting.

pub mod campaign;
pub mod cookievault;
pub mod economics;
pub mod identifiers;
pub mod malware;
pub mod scanner;

pub use campaign::{generate_campaigns, Campaign, CampaignConfig};
pub use cookievault::{CookieLeak, CookieVault};
pub use economics::{CostModel, HijackDecision};
pub use identifiers::CampaignIdentifiers;
pub use malware::{BinaryArtifact, BinaryKind, MalwareModel};
pub use scanner::{DanglingFinding, Scanner};
