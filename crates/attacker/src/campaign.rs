//! Attacker campaigns.
//!
//! Campaign sizes follow Figure 22's long tail: one giant infrastructure
//! (743 hijacked domains, 1,609 identifiers at paper scale), a few large
//! ones (414/222/179/112), and ~1,800 mostly-singleton groups. Activity
//! follows Figure 16's waves: a burst in 2020, relative quiet in early 2021,
//! and a sustained ramp through 2021–2023.

use crate::identifiers::CampaignIdentifiers;
use cloudsim::AccountId;
use contentgen::abuse::{AbuseSpec, AbuseTopic, SeoTechnique};
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{Date, RngTree, Scale, SimTime, WeightedIndex};

/// Campaign generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    pub scale: Scale,
    /// Paper-scale head sizes (hijacked domains per top campaign).
    pub head_sizes_paper: Vec<u32>,
    /// Paper-scale number of campaigns overall (~1,798 clusters).
    pub n_campaigns_paper: u32,
    /// Paper-scale total hijack budget across all campaigns (~20,904).
    pub total_hijacks_paper: u32,
    /// Probability a hijacked page embeds campaign identifiers (§6 finds
    /// identifiers on ~1/3 of hijacked domains).
    pub identifier_embed_probability: f64,
    /// Probability the campaign obtains a certificate for a hijack.
    pub cert_probability: f64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            scale: Scale::DEFAULT,
            head_sizes_paper: vec![743, 414, 222, 179, 112],
            n_campaigns_paper: 1_798,
            total_hijacks_paper: 20_904,
            identifier_embed_probability: 0.38,
            cert_probability: 0.18,
        }
    }
}

/// One attacker group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    pub id: u32,
    pub identifiers: CampaignIdentifiers,
    /// How many domains the campaign aims to recruit in total.
    pub target_hijacks: u32,
    /// Campaign activity start/end.
    pub active_from: SimTime,
    pub active_until: SimTime,
    /// Weekly hijack capacity while active.
    pub hijacks_per_week: f64,
    pub topic_weights: Vec<(AbuseTopic, f64)>,
    pub technique_weights: Vec<(SeoTechnique, f64)>,
    /// Probability of embedding identifiers on a given site.
    pub identifier_embed_probability: f64,
    pub cert_probability: f64,
    /// Probability of hiding behind a maintenance shell.
    pub shell_probability: f64,
    /// The localized shell this campaign's toolkit ships (fixed per
    /// campaign, like the rest of its template).
    pub shell_lang: String,
    /// Probability of the keywords meta tag (41% overall, §5.2.1).
    pub meta_keyword_probability: f64,
}

impl Campaign {
    pub fn account(&self) -> AccountId {
        AccountId::Attacker(self.id)
    }

    pub fn is_active(&self, t: SimTime) -> bool {
        self.active_from <= t && t <= self.active_until
    }

    /// Sample a topic per site.
    pub fn sample_topic<R: Rng + ?Sized>(&self, rng: &mut R) -> AbuseTopic {
        let w: Vec<f64> = self.topic_weights.iter().map(|(_, w)| *w).collect();
        self.topic_weights[WeightedIndex::new(&w).sample(rng)].0
    }

    pub fn sample_technique<R: Rng + ?Sized>(&self, rng: &mut R) -> SeoTechnique {
        let w: Vec<f64> = self.technique_weights.iter().map(|(_, w)| *w).collect();
        self.technique_weights[WeightedIndex::new(&w).sample(rng)].0
    }

    /// The campaign's fixed doorway vocabulary for `topic`: a deterministic
    /// 5-keyword subset of the topic corpus, keyed only by campaign id and
    /// topic. Every hijack this campaign deploys with the same topic serves
    /// the same template — which is what lets §3.2's clustering group a
    /// campaign's domains by identical keyword lists.
    pub fn template_keywords(&self, topic: AbuseTopic) -> Vec<String> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let seed = 0x7e3a_9c1d_u64 ^ ((self.id as u64) << 3) ^ topic as u64;
        let mut trng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pool: Vec<&str> = topic.keywords().to_vec();
        pool.shuffle(&mut trng);
        pool.truncate(5);
        pool.into_iter().map(str::to_string).collect()
    }

    /// Build the content spec for a new hijack. `peers` are other hijacked
    /// hosts of the same campaign (for the link network).
    pub fn make_abuse_spec<R: Rng + ?Sized>(&self, peers: &[String], rng: &mut R) -> AbuseSpec {
        let topic = self.sample_topic(rng);
        let technique = self.sample_technique(rng);
        // Figure 6: heavy-tailed page counts, 2 .. ~145k, mean ≈ 31,810.
        let pages = simcore::LogNormal::from_median_spread(9_000.0, 4.0)
            .sample(rng)
            .clamp(2.0, 144_349.0) as u64;
        let embed = rng.gen_bool(self.identifier_embed_probability);
        let links = if embed {
            self.identifiers.sample_links(rng)
        } else {
            // Monetization links without *distinctive* identifiers: the
            // referral chain still exists but no contact identifiers are
            // embedded (the other ~2/3 of the abuse dataset).
            contentgen::abuse::CampaignLinks {
                target_site: self.identifiers.target_site.clone(),
                referral_code: self.identifiers.referral_code.clone(),
                ..Default::default()
            }
        };
        let shell = rng.gen_bool(self.shell_probability);
        AbuseSpec {
            topic,
            technique,
            page_count: pages,
            use_meta_keywords: rng.gen_bool(self.meta_keyword_probability),
            maintenance_shell_lang: shell.then(|| self.shell_lang.clone()),
            links,
            network_peers: peers.iter().rev().take(4).cloned().collect(),
            template_keywords: self.template_keywords(topic),
        }
    }
}

/// Figure 16's activity waves: start-date mixture.
fn sample_start<R: Rng + ?Sized>(rng: &mut R) -> SimTime {
    let wave: f64 = rng.gen();
    let (from, to) = if wave < 0.28 {
        // 2020 burst.
        (Date::new(2020, 2, 1), Date::new(2020, 10, 1))
    } else if wave < 0.36 {
        // early-2021 lull (few new campaigns).
        (Date::new(2021, 1, 1), Date::new(2021, 7, 1))
    } else {
        // late-2021 → 2023 ramp.
        (Date::new(2021, 8, 1), Date::new(2023, 3, 1))
    };
    let span = to.to_sim() - from.to_sim();
    from.to_sim() + rng.gen_range(0..span)
}

/// Generate the campaign population.
pub fn generate_campaigns(cfg: &CampaignConfig, rng_tree: &RngTree) -> Vec<Campaign> {
    let mut rng = rng_tree.rng("campaigns");
    let scale = cfg.scale;
    let mut campaigns = Vec::new();
    let total_budget = scale.apply(cfg.total_hijacks_paper as u64).max(4) as i64;
    let mut remaining = total_budget;

    // Head campaigns from the paper's top-5 sizes, then a Pareto tail of
    // small groups until the hijack budget is spent (the paper's ~1,798
    // clusters emerge from the budget rather than being imposed).
    let mut sizes: Vec<u32> = cfg
        .head_sizes_paper
        .iter()
        .map(|&s| scale.apply(s as u64).max(2) as u32)
        .collect();
    let tail = simcore::Pareto::new(1.0, 1.1);
    let head_total: i64 = sizes.iter().map(|&s| s as i64).sum();
    let mut tail_total = 0i64;
    while head_total + tail_total < total_budget {
        let s = tail.sample(&mut rng).min(40.0) as u32;
        tail_total += s as i64;
        sizes.push(s);
    }

    for (i, &size) in sizes.iter().enumerate() {
        if remaining <= 0 {
            break;
        }
        let size = (size as i64).min(remaining).max(1) as u32;
        remaining -= size as i64;
        let mut crng = rng_tree.rng_idx("campaigns/each", i as u64);
        let identifiers = CampaignIdentifiers::generate(i as u32, size, &mut crng);
        let start = sample_start(&mut crng);
        let horizon = SimTime::monitor_end();
        // Large campaigns run to the end; small ones may be short-lived.
        let until = if size > 20 || crng.gen_bool(0.6) {
            horizon
        } else {
            (start + crng.gen_range(60..600)).min(horizon)
        };
        let duration_weeks = ((until - start).max(7) as f64) / 7.0;
        let hijacks_per_week = (size as f64 / duration_weeks).max(0.05);
        // Campaigns are topic-coherent (Figure 3 categorizes whole clusters
        // by a single topic): sample the campaign's topic once, with
        // gambling dominant and adult second.
        let topic_mix = [
            (AbuseTopic::Gambling, 0.62),
            (AbuseTopic::Adult, 0.22),
            (AbuseTopic::Shopping, 0.10),
            (AbuseTopic::Pharma, 0.06),
        ];
        let mix: Vec<f64> = topic_mix.iter().map(|(_, w)| *w).collect();
        let topic = topic_mix[WeightedIndex::new(&mix).sample(&mut crng)].0;
        let topic_weights = vec![(topic, 1.0)];
        let shell_lang = ["en", "de", "ja", "ar", "ru"][crng.gen_range(0..5)].to_string();
        // Technique mix per §5.2.1: doorway 62.13%, keyword-stuffing bulk,
        // JKH+link networks 7.17%, clickjacking a few percent.
        let technique_weights = vec![
            (SeoTechnique::DoorwayPages, 0.6213),
            (SeoTechnique::KeywordStuffing, 0.2470),
            (SeoTechnique::JapaneseKeywordHack, 0.0359),
            (SeoTechnique::LinkNetwork, 0.0358),
            (SeoTechnique::ClickJacking, 0.06),
        ];
        campaigns.push(Campaign {
            id: i as u32,
            identifiers,
            target_hijacks: size,
            active_from: start,
            active_until: until,
            hijacks_per_week,
            topic_weights,
            technique_weights,
            identifier_embed_probability: cfg.identifier_embed_probability,
            cert_probability: cfg.cert_probability,
            shell_probability: 0.25,
            shell_lang,
            meta_keyword_probability: 0.41,
        });
    }
    campaigns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            scale: Scale::new(100),
            ..Default::default()
        }
    }

    #[test]
    fn head_and_tail_sizes() {
        let cs = generate_campaigns(&cfg(), &RngTree::new(1));
        assert!(cs.len() >= 3);
        // The giant head campaign carries its scaled paper size.
        assert_eq!(cs[0].target_hijacks, Scale::new(100).apply(743) as u32);
        // Long tail of small campaigns.
        let small = cs.iter().filter(|c| c.target_hijacks <= 2).count();
        assert!(small as f64 > 0.4 * cs.len() as f64);
    }

    #[test]
    fn budget_respected() {
        let c = cfg();
        let cs = generate_campaigns(&c, &RngTree::new(2));
        let total: u32 = cs.iter().map(|c| c.target_hijacks).sum();
        let budget = c.scale.apply(c.total_hijacks_paper as u64) as u32;
        assert!(total <= budget + 5, "total {total} vs budget {budget}");
        assert!(total as f64 > 0.5 * budget as f64);
    }

    #[test]
    fn activity_waves_cover_periods() {
        let cs = generate_campaigns(&cfg(), &RngTree::new(3));
        let y2020 = Date::new(2020, 6, 1).to_sim();
        let y2022 = Date::new(2022, 6, 1).to_sim();
        assert!(cs
            .iter()
            .any(|c| c.active_from <= y2020 && c.active_until >= y2020));
        assert!(cs
            .iter()
            .any(|c| c.active_from <= y2022 && c.active_until >= y2022));
        for c in &cs {
            assert!(c.active_until >= c.active_from);
            assert!(c.hijacks_per_week > 0.0);
        }
    }

    #[test]
    fn abuse_specs_sampled() {
        let cs = generate_campaigns(&cfg(), &RngTree::new(4));
        let mut rng = RngTree::new(5).rng("t");
        let c = &cs[0];
        let mut doorway = 0;
        let n = 400;
        for _ in 0..n {
            let spec = c.make_abuse_spec(&["peer.victim.com".into()], &mut rng);
            assert!((2..=144_349).contains(&spec.page_count));
            // Topic coherence: every site of a campaign carries its topic.
            assert_eq!(spec.topic, c.topic_weights[0].0);
            if spec.technique == SeoTechnique::DoorwayPages {
                doorway += 1;
            }
        }
        assert!(doorway as f64 > 0.5 * n as f64);
        // Gambling dominates the campaign population (Figure 3).
        let gambling = cs
            .iter()
            .filter(|c| c.topic_weights[0].0 == AbuseTopic::Gambling)
            .count();
        assert!(gambling as f64 > 0.4 * cs.len() as f64);
    }

    #[test]
    fn template_keywords_fixed_per_campaign_and_topic() {
        let cs = generate_campaigns(&cfg(), &RngTree::new(8));
        let c = &cs[0];
        let a = c.template_keywords(AbuseTopic::Gambling);
        let b = c.template_keywords(AbuseTopic::Gambling);
        assert_eq!(a, b, "template must be stable across calls");
        assert_eq!(a.len(), 5);
        for k in &a {
            assert!(AbuseTopic::Gambling.keywords().contains(&k.as_str()));
        }
        // Two hijacks of the same campaign+topic share the template even
        // though the per-site RNG streams differ. Campaigns are
        // topic-coherent, so the comparison needs a campaign that actually
        // runs gambling — resampling cs[0] until it yields one would spin
        // forever otherwise.
        let g = cs
            .iter()
            .find(|c| c.topic_weights[0].0 == AbuseTopic::Gambling)
            .expect("gambling dominates the campaign population");
        let mut r1 = RngTree::new(9).rng("a");
        let mut r2 = RngTree::new(10).rng("b");
        let s1 = g.make_abuse_spec(&[], &mut r1);
        let s2 = g.make_abuse_spec(&[], &mut r2);
        assert_eq!(s1.topic, AbuseTopic::Gambling);
        assert_eq!(s1.template_keywords, s2.template_keywords);
    }

    #[test]
    fn is_active_window() {
        let cs = generate_campaigns(&cfg(), &RngTree::new(6));
        let c = &cs[0];
        assert!(c.is_active(c.active_from));
        assert!(c.is_active(c.active_until));
        assert!(!c.is_active(c.active_from - 1));
    }

    #[test]
    fn deterministic() {
        let a = generate_campaigns(&cfg(), &RngTree::new(7));
        let b = generate_campaigns(&cfg(), &RngTree::new(7));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].identifiers, b[0].identifiers);
    }
}
