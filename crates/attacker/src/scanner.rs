//! Dangling-record discovery from the attacker's side.
//!
//! §1: "All that it requires is some way of collecting domain names (e.g.,
//! via passiveDNS or Certificate Transparency), checking if the resource is
//! hosted in the cloud and is reachable, and if not, registering the
//! resource through an account with the cloud provider." The scanner
//! implements exactly that loop against the simulated DNS and platform.

use cloudsim::{CloudPlatform, NamingModel, ServiceId};
use dns::resolver::Transport;
use dns::{Name, Resolver};
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// A confirmed hijack opportunity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DanglingFinding {
    /// The victim FQDN whose record dangles.
    pub victim_fqdn: Name,
    /// The cloud-generated CNAME target that is re-registrable.
    pub cloud_fqdn: Name,
    pub service: ServiceId,
    /// The freetext name to re-register.
    pub resource_name: String,
    pub region: Option<String>,
    pub found_at: SimTime,
}

/// The attacker's discovery engine.
pub struct Scanner {
    /// Known cloud suffixes mapped back to their service (built from the
    /// public catalog, just like real attackers use public docs).
    suffixes: Vec<(Name, ServiceId, Option<String>)>,
}

impl Default for Scanner {
    fn default() -> Self {
        Self::new()
    }
}

impl Scanner {
    pub fn new() -> Self {
        let mut suffixes = Vec::new();
        for spec in cloudsim::CATALOG {
            // Only Freetext services are deterministically re-registrable;
            // RandomName suffixes (Google, Cloudflare Pages) are skipped by
            // rational attackers and IpPool services have no suffix at all.
            if spec.naming != NamingModel::Freetext {
                continue;
            }
            let Some(s) = spec.suffix else { continue };
            if s.contains("REGION") {
                for r in spec.regions {
                    let n = Name::parse(&s.replace("REGION", r)).unwrap();
                    suffixes.push((n, spec.id, Some(r.to_string())));
                }
            } else {
                suffixes.push((Name::parse(s).unwrap(), spec.id, None));
            }
        }
        Scanner { suffixes }
    }

    /// Classify a CNAME target: which service and what resource name/region?
    pub fn classify_target(&self, target: &Name) -> Option<(ServiceId, String, Option<String>)> {
        for (suffix, service, region) in &self.suffixes {
            if target.is_subdomain_of(suffix) {
                // Resource name = the label(s) left of the suffix; freetext
                // names are a single label in this world.
                let extra = target.label_count() - suffix.label_count();
                if extra != 1 {
                    continue;
                }
                return Some((*service, target.labels()[0].to_string(), region.clone()));
            }
        }
        None
    }

    /// Scan a batch of candidate FQDNs: resolve each, detect dangling
    /// cloud-pointing CNAMEs, verify availability on the platform.
    pub fn scan<T: Transport>(
        &self,
        candidates: &[Name],
        resolver: &Resolver<T>,
        platform: &CloudPlatform,
        now: SimTime,
    ) -> Vec<DanglingFinding> {
        let mut findings = Vec::new();
        for fqdn in candidates {
            let outcome = resolver.resolve_a(fqdn, now);
            if !outcome.is_dangling_cname() {
                continue;
            }
            let Some(target) = outcome.final_cname() else {
                continue;
            };
            let Some((service, resource_name, region)) = self.classify_target(target) else {
                continue;
            };
            // The §4.3 availability check — free and unauthenticated.
            if platform.name_available(service, &resource_name, region.as_deref(), now) {
                findings.push(DanglingFinding {
                    victim_fqdn: fqdn.clone(),
                    cloud_fqdn: target.clone(),
                    service,
                    resource_name,
                    region,
                    found_at: now,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AccountId, PlatformConfig};
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classify_targets() {
        let s = Scanner::new();
        let (svc, name, region) = s
            .classify_target(&"contoso-shop.azurewebsites.net".parse().unwrap())
            .unwrap();
        assert_eq!(svc, ServiceId::AzureWebApp);
        assert_eq!(name, "contoso-shop");
        assert_eq!(region, None);

        let (svc, name, region) = s
            .classify_target(&"assets.s3-website.eu-west-1.amazonaws.com".parse().unwrap())
            .unwrap();
        assert_eq!(svc, ServiceId::AwsS3Website);
        assert_eq!(name, "assets");
        assert_eq!(region.as_deref(), Some("eu-west-1"));

        // Random-name services are skipped entirely.
        assert!(s
            .classify_target(&"abc123xyz.pages.dev".parse().unwrap())
            .is_none());
        assert!(s
            .classify_target(&"www.example.com".parse().unwrap())
            .is_none());
    }

    #[test]
    fn end_to_end_scan_finds_dangling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let t0 = SimTime(0);
        // Org provisions and abandons a web app, leaving the CNAME.
        let id = platform
            .register(
                ServiceId::AzureWebApp,
                Some("victim-shop"),
                None,
                AccountId::Org(1),
                t0,
                &mut rng,
            )
            .unwrap();
        let mut org_zone = Zone::new("victim.com".parse().unwrap());
        org_zone.add(ResourceRecord::new(
            "shop.victim.com".parse().unwrap(),
            300,
            RecordData::Cname("victim-shop.azurewebsites.net".parse().unwrap()),
        ));
        // Also a live one that must NOT be reported.
        org_zone.add(ResourceRecord::new(
            "www.victim.com".parse().unwrap(),
            300,
            RecordData::A("93.184.216.34".parse().unwrap()),
        ));
        platform.release(id, SimTime(10));

        // Compose DNS: org zone + platform zones.
        let mut zones = ZoneSet::new();
        zones.insert(org_zone);
        for z in platform.zones().iter() {
            zones.insert(z.clone());
        }
        let resolver = Resolver::new(Authority::new(zones));

        let scanner = Scanner::new();
        let candidates: Vec<Name> = vec![
            "shop.victim.com".parse().unwrap(),
            "www.victim.com".parse().unwrap(),
        ];
        let findings = scanner.scan(&candidates, &resolver, &platform, SimTime(20));
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.victim_fqdn.to_string(), "shop.victim.com");
        assert_eq!(f.resource_name, "victim-shop");
        assert_eq!(f.service, ServiceId::AzureWebApp);

        // Attacker completes the loop: re-register and verify control.
        let hid = platform
            .register(
                f.service,
                Some(&f.resource_name),
                f.region.as_deref(),
                AccountId::Attacker(0),
                SimTime(21),
                &mut rng,
            )
            .unwrap();
        assert!(platform.resource(hid).unwrap().owner.is_attacker());
        // The opportunity is gone afterwards.
        let findings = scanner.scan(&candidates, &resolver, &platform, SimTime(22));
        assert!(findings.is_empty());
    }
}
