//! Campaign contact/infrastructure identifiers (§6).
//!
//! Each campaign owns a pool of identifiers it embeds on its abuse pages:
//! WhatsApp phone numbers (Figure 21: overwhelmingly Indonesian +62 and
//! Cambodian +855), Telegram/Instagram/Facebook handles, URL-shortener
//! links, and backend IPs rented at hosting providers concentrated in the
//! US, France and Singapore (Figure 26).

use contentgen::abuse::CampaignLinks;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Phone country codes with Figure-21 weights.
pub const PHONE_COUNTRIES: &[(&str, &str, f64)] = &[
    ("62", "Indonesia", 0.68),
    ("855", "Cambodia", 0.22),
    ("60", "Malaysia", 0.04),
    ("66", "Thailand", 0.03),
    ("84", "Vietnam", 0.02),
    ("63", "Philippines", 0.01),
];

/// Backend hosting blocks with Figure-26 org/geo tags.
pub const HOSTING_BLOCKS: &[(&str, &str, &str)] = &[
    ("198.51.100.0/24", "ExampleHost US", "US"),
    ("203.0.113.0/24", "CloudRent US", "US"),
    ("192.0.2.0/24", "OVH-like FR", "FR"),
    ("100.64.10.0/24", "SingaHost SG", "SG"),
    ("100.64.20.0/24", "SingaHost SG", "SG"),
    ("100.64.30.0/24", "NL-Box NL", "NL"),
];

/// The identifier pool of one campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignIdentifiers {
    pub phones: Vec<String>,
    pub social: Vec<String>,
    pub shortlinks: Vec<String>,
    pub backend_ips: Vec<Ipv4Addr>,
    pub target_site: String,
    pub referral_code: String,
}

impl CampaignIdentifiers {
    /// Generate a pool sized for a campaign that aims at `target_domains`
    /// hijacks. Identifier counts scale sub-linearly (the giant cluster had
    /// ~2.2 identifiers per domain; loners have 1–2 total).
    pub fn generate<R: Rng + ?Sized>(
        campaign_idx: u32,
        target_domains: u32,
        rng: &mut R,
    ) -> CampaignIdentifiers {
        let n_ids = ((target_domains as f64).sqrt() * 2.0).ceil().max(1.0) as usize;
        let n_phones = (n_ids / 3).max(1);
        let n_social = (n_ids / 3).max(1);
        let n_short = (n_ids / 4).max(1);
        let n_ips = (n_ids / 4).max(1);

        let phone_weights: Vec<f64> = PHONE_COUNTRIES.iter().map(|(_, _, w)| *w).collect();
        let phone_dist = simcore::WeightedIndex::new(&phone_weights);

        let mut phones = Vec::with_capacity(n_phones);
        for _ in 0..n_phones {
            let (cc, _, _) = PHONE_COUNTRIES[phone_dist.sample(rng)];
            let mut digits = String::from(cc);
            for _ in 0..10 {
                digits.push((b'0' + rng.gen_range(0..10u8)) as char);
            }
            phones.push(digits);
        }

        let social_hosts = ["t.me", "instagram.com", "facebook.com", "twitter.com"];
        let mut social = Vec::with_capacity(n_social);
        for i in 0..n_social {
            let host = social_hosts.choose(rng).unwrap();
            social.push(format!("{host}/{}{}_{}", brand(rng), campaign_idx, i));
        }

        let short_hosts = ["bit.ly", "cutt.ly", "s.id", "linktr.ee"];
        let mut shortlinks = Vec::with_capacity(n_short);
        for _ in 0..n_short {
            let host = short_hosts.choose(rng).unwrap();
            let code: String = (0..7)
                .map(|_| {
                    let chars = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
                    chars[rng.gen_range(0..chars.len())] as char
                })
                .collect();
            shortlinks.push(format!("{host}/{code}"));
        }

        let mut backend_ips = Vec::with_capacity(n_ips);
        for _ in 0..n_ips {
            let (block, _, _) = HOSTING_BLOCKS.choose(rng).unwrap();
            let cidr: cloudsim::Cidr = block.parse().unwrap();
            backend_ips.push(cidr.nth(rng.gen_range(1..cidr.size() - 1)));
        }
        backend_ips.sort();
        backend_ips.dedup();

        CampaignIdentifiers {
            phones,
            social,
            shortlinks,
            backend_ips,
            target_site: format!("{}-{}.win", brand(rng), campaign_idx),
            referral_code: format!("REF{campaign_idx:04}"),
        }
    }

    /// Total identifier count.
    pub fn len(&self) -> usize {
        self.phones.len() + self.social.len() + self.shortlinks.len() + self.backend_ips.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draw a per-site subset to embed (real pages carry a handful of the
    /// campaign's identifiers, which is what makes the co-occurrence graph
    /// connected).
    pub fn sample_links<R: Rng + ?Sized>(&self, rng: &mut R) -> CampaignLinks {
        let pick = |v: &[String], n: usize, rng: &mut R| -> Vec<String> {
            let mut c: Vec<String> = v.to_vec();
            c.shuffle(rng);
            c.truncate(n.max(1).min(v.len().max(1)));
            c
        };
        CampaignLinks {
            phones: pick(&self.phones, 2, rng),
            social: pick(&self.social, 2, rng),
            shortlinks: pick(&self.shortlinks, 1, rng),
            backend_ips: {
                let mut ips = self.backend_ips.clone();
                ips.shuffle(rng);
                ips.truncate(1.max(ips.len().min(2)));
                ips
            },
            target_site: self.target_site.clone(),
            referral_code: self.referral_code.clone(),
        }
    }

    /// The country of a phone number (Figure 21 aggregation).
    pub fn phone_country(phone: &str) -> &'static str {
        for (cc, country, _) in PHONE_COUNTRIES {
            if phone.starts_with(cc) {
                return country;
            }
        }
        "Other"
    }

    /// The hosting org/geo of a backend IP (Figure 26 aggregation).
    pub fn ip_hosting(ip: Ipv4Addr) -> Option<(&'static str, &'static str)> {
        for (block, org, geo) in HOSTING_BLOCKS {
            let cidr: cloudsim::Cidr = block.parse().unwrap();
            if cidr.contains(ip) {
                return Some((org, geo));
            }
        }
        None
    }
}

fn brand<R: Rng + ?Sized>(rng: &mut R) -> String {
    let stems = [
        "slot", "gacor", "maxwin", "judi", "hoki", "jackpot", "bet", "spin",
    ];
    format!("{}{}", stems.choose(rng).unwrap(), rng.gen_range(10..1000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pool_sizes_scale_sublinearly() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = CampaignIdentifiers::generate(1, 2, &mut rng);
        let big = CampaignIdentifiers::generate(2, 750, &mut rng);
        assert!(small.len() >= 2);
        assert!(big.len() > small.len());
        assert!(big.len() < 750); // sub-linear
    }

    #[test]
    fn phone_geography_biased_to_indonesia() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut indo = 0;
        let mut total = 0;
        for i in 0..300 {
            let ids = CampaignIdentifiers::generate(i, 100, &mut rng);
            for p in &ids.phones {
                total += 1;
                if CampaignIdentifiers::phone_country(p) == "Indonesia" {
                    indo += 1;
                }
            }
        }
        let frac = indo as f64 / total as f64;
        assert!(frac > 0.55 && frac < 0.8, "frac = {frac}");
    }

    #[test]
    fn backend_ips_map_to_hosting_orgs() {
        let mut rng = StdRng::seed_from_u64(3);
        let ids = CampaignIdentifiers::generate(5, 200, &mut rng);
        for ip in &ids.backend_ips {
            let (org, geo) = CampaignIdentifiers::ip_hosting(*ip).expect("in a known block");
            assert!(!org.is_empty());
            assert!(["US", "FR", "SG", "NL"].contains(&geo));
        }
        assert_eq!(
            CampaignIdentifiers::ip_hosting("8.8.8.8".parse().unwrap()),
            None
        );
    }

    #[test]
    fn sampled_links_subset_of_pool() {
        let mut rng = StdRng::seed_from_u64(4);
        let ids = CampaignIdentifiers::generate(9, 400, &mut rng);
        let links = ids.sample_links(&mut rng);
        for p in &links.phones {
            assert!(ids.phones.contains(p));
        }
        for s in &links.social {
            assert!(ids.social.contains(s));
        }
        assert_eq!(links.referral_code, ids.referral_code);
        assert!(!links.backend_ips.is_empty());
    }

    #[test]
    fn deterministic() {
        let a = CampaignIdentifiers::generate(7, 50, &mut StdRng::seed_from_u64(9));
        let b = CampaignIdentifiers::generate(7, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
