//! Stolen-cookie telemetry (§5.5).
//!
//! The paper cannot observe server-side exfiltration; instead it joins a
//! darknet leak feed against the hijack windows, finding 83 unique
//! authentication cookies tied to 3 hijacked subdomains and 53 source IPs.
//! [`CookieVault`] models the attacker side: hijacks with full-webserver
//! capability (Table 4) capture all cookies; content-only hijacks capture
//! only non-HttpOnly cookies; `Secure` cookies additionally require the
//! hijack to serve HTTPS.

use cloudsim::CapabilityClass;
use dns::Name;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::net::Ipv4Addr;

/// One leaked authentication cookie observed in the feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CookieLeak {
    /// Unique cookie identity (name+value hash stand-in).
    pub cookie_id: u64,
    /// The hijacked subdomain the client visited.
    pub subdomain: Name,
    /// Client source IP.
    pub source_ip: Ipv4Addr,
    pub leaked_at: SimTime,
    /// Was the stolen cookie HttpOnly (requires webserver capability)?
    pub was_http_only: bool,
    /// Was it Secure (requires HTTPS on the hijack)?
    pub was_secure: bool,
}

/// Accumulates leaks across the simulation.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CookieVault {
    leaks: Vec<CookieLeak>,
    next_id: u64,
}

impl CookieVault {
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate client traffic hitting a hijacked subdomain during one
    /// monitoring interval. `visitors` is the expected visitor count;
    /// capability and HTTPS gate which cookies can be captured.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_visits<R: Rng + ?Sized>(
        &mut self,
        subdomain: &Name,
        capability: CapabilityClass,
        serves_https: bool,
        visitors: f64,
        auth_cookie_rate: f64,
        now: SimTime,
        rng: &mut R,
    ) -> usize {
        let n = simcore::Poisson::new(visitors * auth_cookie_rate).sample(rng);
        let mut captured = 0;
        for _ in 0..n {
            // Cookie attribute mix: most auth cookies are HttpOnly+Secure.
            let http_only = rng.gen_bool(0.8);
            let secure = rng.gen_bool(0.7);
            let can_read_headers = capability == CapabilityClass::FullWebserver;
            if http_only && !can_read_headers {
                continue; // content-only hijack cannot see it
            }
            if secure && !serves_https {
                continue; // browser never sends it over HTTP
            }
            let id = self.next_id;
            self.next_id += 1;
            self.leaks.push(CookieLeak {
                cookie_id: id,
                subdomain: subdomain.clone(),
                source_ip: Ipv4Addr::from(rng.gen::<u32>() | 0x0100_0000),
                leaked_at: now,
                was_http_only: http_only,
                was_secure: secure,
            });
            captured += 1;
        }
        captured
    }

    pub fn leaks(&self) -> &[CookieLeak] {
        &self.leaks
    }

    /// §5.5's summary triple: (unique cookies, unique subdomains, unique IPs).
    pub fn summary(&self) -> (usize, usize, usize) {
        let cookies = self.leaks.len();
        let mut subs: Vec<&Name> = self.leaks.iter().map(|l| &l.subdomain).collect();
        subs.sort();
        subs.dedup();
        let mut ips: Vec<Ipv4Addr> = self.leaks.iter().map(|l| l.source_ip).collect();
        ips.sort();
        ips.dedup();
        (cookies, subs.len(), ips.len())
    }

    /// Leaks within a hijack window (the join the paper performs).
    pub fn leaks_in_window(&self, subdomain: &Name, from: SimTime, to: SimTime) -> usize {
        self.leaks
            .iter()
            .filter(|l| &l.subdomain == subdomain && l.leaked_at >= from && l.leaked_at <= to)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn full_webserver_with_https_captures_most() {
        let mut v = CookieVault::new();
        let mut rng = StdRng::seed_from_u64(1);
        let captured = v.simulate_visits(
            &n("h.example.com"),
            CapabilityClass::FullWebserver,
            true,
            5000.0,
            0.01,
            SimTime(10),
            &mut rng,
        );
        assert!(captured > 20, "captured = {captured}");
        let (c, s, i) = v.summary();
        assert_eq!(c, captured);
        assert_eq!(s, 1);
        assert!(i <= c);
    }

    #[test]
    fn static_content_without_https_captures_little() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut full = CookieVault::new();
        full.simulate_visits(
            &n("a.x.com"),
            CapabilityClass::FullWebserver,
            true,
            5000.0,
            0.01,
            SimTime(0),
            &mut rng,
        );
        let mut weak = CookieVault::new();
        weak.simulate_visits(
            &n("a.x.com"),
            CapabilityClass::StaticContent,
            false,
            5000.0,
            0.01,
            SimTime(0),
            &mut rng,
        );
        // Only non-HttpOnly AND non-Secure cookies leak: ~6% of the mix.
        assert!(weak.leaks().len() * 4 < full.leaks().len());
        for l in weak.leaks() {
            assert!(!l.was_http_only);
            assert!(!l.was_secure);
        }
    }

    #[test]
    fn window_join() {
        let mut v = CookieVault::new();
        let mut rng = StdRng::seed_from_u64(3);
        v.simulate_visits(
            &n("h.x.com"),
            CapabilityClass::FullWebserver,
            true,
            3000.0,
            0.02,
            SimTime(50),
            &mut rng,
        );
        assert!(v.leaks_in_window(&n("h.x.com"), SimTime(40), SimTime(60)) > 0);
        assert_eq!(
            v.leaks_in_window(&n("h.x.com"), SimTime(100), SimTime(200)),
            0
        );
        assert_eq!(
            v.leaks_in_window(&n("other.x.com"), SimTime(40), SimTime(60)),
            0
        );
    }
}
