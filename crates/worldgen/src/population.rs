//! Population synthesis.

use crate::names;
use crate::org::{CaaPolicy, OrgCategory, OrgId, Organization, RegistrarId};
use crate::plan::{default_intensity, plans_for_org, PlanConfig, ResourcePlan};
use dns::Name;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{Date, RngTree, Scale, SimTime, Zipf};
use std::collections::HashSet;

/// Population sizing and behaviour parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    pub scale: Scale,
    /// Fortune-1000 enterprises (full size regardless of scale — victim-rate
    /// denominators).
    pub n_fortune1000: u32,
    /// Global-500 enterprises (overlapping with the Fortune list).
    pub n_global500: u32,
    /// Universities (paper: 9,933; scaled).
    pub n_universities_paper: u64,
    /// Government orgs with cloud presence (scaled).
    pub n_government_paper: u64,
    /// Popular (Tranco-style) web properties with cloud presence (scaled).
    pub n_popular_paper: u64,
    /// Number of registrars.
    pub n_registrars: u16,
    /// Fraction of popular domains that are parked.
    pub parked_fraction: f64,
    /// HSTS adoption on parent domains (App. A.2: >16%).
    pub hsts_fraction: f64,
    /// CAA adoption (§5.6.2: 2% any, 0.4 % paid-only — of parents).
    pub caa_any_fraction: f64,
    pub caa_paid_fraction: f64,
    pub plan: PlanConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            scale: Scale::DEFAULT,
            n_fortune1000: 1000,
            n_global500: 500,
            n_universities_paper: 9_933,
            n_government_paper: 30_000,
            n_popular_paper: 450_000,
            n_registrars: 50,
            parked_fraction: 0.04,
            hsts_fraction: 0.17,
            caa_any_fraction: 0.02,
            caa_paid_fraction: 0.004,
            plan: PlanConfig::default(),
        }
    }
}

/// The generated world population (Serialize-only; see [`Organization`]).
#[derive(Debug, Clone, Serialize)]
pub struct Population {
    pub config: WorldConfig,
    pub orgs: Vec<Organization>,
    pub plans: Vec<ResourcePlan>,
}

/// TLD mix approximating Table 6 (com dominates; 218 TLDs in the paper, a
/// representative subset here plus a generated long tail).
const TLD_WEIGHTS: &[(&str, f64)] = &[
    ("com", 12942.0),
    ("org", 1069.0),
    ("net", 996.0),
    ("uk", 758.0),
    ("au", 414.0),
    ("br", 308.0),
    ("de", 758.0),
    ("ca", 398.0),
    ("nl", 207.0),
    ("jp", 183.0),
    ("co", 156.0),
    ("fr", 140.0),
    ("it", 120.0),
    ("in", 110.0),
    ("se", 90.0),
    ("ch", 85.0),
    ("es", 80.0),
    ("mx", 70.0),
    ("kr", 60.0),
    ("pl", 55.0),
];

impl Population {
    /// Generate the full population from a seed tree.
    pub fn generate(config: WorldConfig, rng_tree: &RngTree) -> Population {
        let mut rng = rng_tree.rng("population");
        let scale = config.scale;
        let horizon = SimTime::monitor_end();
        let tld_dist =
            simcore::WeightedIndex::new(&TLD_WEIGHTS.iter().map(|(_, w)| *w).collect::<Vec<_>>());

        let mut orgs: Vec<Organization> = Vec::new();
        let mut taken_apexes: HashSet<Name> = HashSet::new();
        let mut next_id = 0u32;

        let mk_apex =
            |rng: &mut rand::rngs::StdRng, taken: &mut HashSet<Name>, tld: &str| -> Name {
                loop {
                    let label = names::label(rng);
                    if let Ok(apex) = Name::parse(&format!("{label}.{tld}")) {
                        if taken.insert(apex.clone()) {
                            return apex;
                        }
                    }
                }
            };

        // --- Enterprises (Fortune 1000; the top 500 are "Fortune 500") ---
        let n_f1000 = config.n_fortune1000;
        let n_g500 = config.n_global500;
        for i in 0..n_f1000 {
            let tld = TLD_WEIGHTS[tld_dist.sample(&mut rng)].0;
            let apex = mk_apex(&mut rng, &mut taken_apexes, tld);
            let sector = *crate::sectors().choose(&mut rng).unwrap();
            // ~30% of the Global 500 are US companies also in the Fortune
            // list; mark the top slice.
            let global500 = i < (n_g500 * 3 / 10);
            orgs.push(Organization {
                id: OrgId(next_id),
                name: names::org_name(&mut rng),
                sector,
                category: OrgCategory::Enterprise,
                apex,
                registrar: RegistrarId(rng.gen_range(0..config.n_registrars)),
                whois_created: old_domain_date(&mut rng),
                tranco_rank: Some(rng.gen_range(1..50_000)),
                fortune500: i < 500,
                fortune1000: true,
                global500,
                qs_ranked: false,
                cloud_intensity: default_intensity(OrgCategory::Enterprise, &mut rng),
                purge_diligence: rng.gen_range(0.55..0.9),
                remediation_median_days: rng.gen_range(15.0..90.0),
                uses_hsts: rng.gen_bool(config.hsts_fraction),
                caa: caa_policy(&mut rng, &config),
                parked: false,
                parking_provider: None,
            });
            next_id += 1;
        }
        // --- Remaining Global 500 (non-US, not in Fortune list) ---
        let g500_extra = n_g500 - (n_g500 * 3 / 10);
        for _ in 0..g500_extra {
            let tld = ["de", "jp", "uk", "fr", "kr", "in", "ch", "nl"]
                .choose(&mut rng)
                .unwrap();
            let apex = mk_apex(&mut rng, &mut taken_apexes, tld);
            let sector = *crate::sectors().choose(&mut rng).unwrap();
            orgs.push(Organization {
                id: OrgId(next_id),
                name: names::org_name(&mut rng),
                sector,
                category: OrgCategory::Enterprise,
                apex,
                registrar: RegistrarId(rng.gen_range(0..config.n_registrars)),
                whois_created: old_domain_date(&mut rng),
                tranco_rank: Some(rng.gen_range(1..80_000)),
                fortune500: false,
                fortune1000: false,
                global500: true,
                qs_ranked: false,
                cloud_intensity: default_intensity(OrgCategory::Enterprise, &mut rng) * 0.8,
                purge_diligence: rng.gen_range(0.6..0.92),
                remediation_median_days: rng.gen_range(15.0..90.0),
                uses_hsts: rng.gen_bool(config.hsts_fraction),
                caa: caa_policy(&mut rng, &config),
                parked: false,
                parking_provider: None,
            });
            next_id += 1;
        }

        // --- Universities ---
        let n_uni = scale.apply(config.n_universities_paper).min(10_000) as u32;
        for i in 0..n_uni {
            let tld = if rng.gen_bool(0.45) {
                "edu"
            } else {
                ["uk", "au", "de", "ca", "jp", "nl"]
                    .choose(&mut rng)
                    .unwrap()
            };
            let apex = mk_apex(&mut rng, &mut taken_apexes, tld);
            orgs.push(Organization {
                id: OrgId(next_id),
                name: names::university_name(&mut rng),
                sector: "Education",
                category: OrgCategory::University,
                apex,
                registrar: RegistrarId(rng.gen_range(0..config.n_registrars)),
                whois_created: old_domain_date(&mut rng) - rng.gen_range(0..3650),
                tranco_rank: (rng.gen_bool(0.4)).then(|| rng.gen_range(1_000..200_000)),
                fortune500: false,
                fortune1000: false,
                global500: false,
                qs_ranked: i < n_uni * 3 / 10,
                cloud_intensity: default_intensity(OrgCategory::University, &mut rng),
                purge_diligence: rng.gen_range(0.5..0.85),
                remediation_median_days: rng.gen_range(30.0..180.0),
                uses_hsts: rng.gen_bool(config.hsts_fraction * 0.7),
                caa: caa_policy(&mut rng, &config),
                parked: false,
                parking_provider: None,
            });
            next_id += 1;
        }

        // --- Government ---
        let n_gov = scale.apply(config.n_government_paper) as u32;
        for _ in 0..n_gov {
            let apex = mk_apex(&mut rng, &mut taken_apexes, "gov");
            orgs.push(Organization {
                id: OrgId(next_id),
                name: format!("{} Agency", names::org_name(&mut rng)),
                sector: "Government",
                category: OrgCategory::Government,
                apex,
                registrar: RegistrarId(rng.gen_range(0..config.n_registrars)),
                whois_created: old_domain_date(&mut rng) - rng.gen_range(0..3650),
                tranco_rank: (rng.gen_bool(0.2)).then(|| rng.gen_range(5_000..800_000)),
                fortune500: false,
                fortune1000: false,
                global500: false,
                qs_ranked: false,
                cloud_intensity: default_intensity(OrgCategory::Government, &mut rng),
                purge_diligence: rng.gen_range(0.5..0.8),
                remediation_median_days: rng.gen_range(45.0..240.0),
                uses_hsts: rng.gen_bool(config.hsts_fraction * 1.2),
                caa: caa_policy(&mut rng, &config),
                parked: false,
                parking_provider: None,
            });
            next_id += 1;
        }

        // --- Popular (Tranco-style ranks drawn Zipf-ishly) ---
        let n_pop = scale.apply(config.n_popular_paper) as u32;
        let rank_zipf = Zipf::new(1_000_000, 0.9);
        let mut used_ranks: HashSet<u32> = HashSet::new();
        for _ in 0..n_pop {
            let tld = TLD_WEIGHTS[tld_dist.sample(&mut rng)].0;
            let apex = mk_apex(&mut rng, &mut taken_apexes, tld);
            let sector = *crate::sectors().choose(&mut rng).unwrap();
            let mut rank = rank_zipf.sample(&mut rng) as u32;
            while !used_ranks.insert(rank) {
                rank = rng.gen_range(1..=1_000_000);
            }
            let parked = rng.gen_bool(config.parked_fraction);
            let registrar = RegistrarId(rng.gen_range(0..config.n_registrars));
            orgs.push(Organization {
                id: OrgId(next_id),
                name: names::org_name(&mut rng),
                sector,
                category: OrgCategory::Popular,
                apex,
                registrar,
                whois_created: mixed_domain_date(&mut rng),
                tranco_rank: Some(rank),
                fortune500: false,
                fortune1000: false,
                global500: false,
                qs_ranked: false,
                // Parked domains keep a single cloud-hosted parking page so
                // the Figure 10 confounder flows through the monitored set.
                cloud_intensity: if parked {
                    1.0
                } else {
                    default_intensity(OrgCategory::Popular, &mut rng)
                },
                purge_diligence: rng.gen_range(0.4..0.85),
                remediation_median_days: rng.gen_range(20.0..200.0),
                uses_hsts: rng.gen_bool(config.hsts_fraction),
                caa: caa_policy(&mut rng, &config),
                parked,
                // Parking provider is a function of the registrar: parked
                // domains of one registrar rotate content together (§3.2).
                parking_provider: parked.then_some((registrar.0 % 6) as u8),
            });
            next_id += 1;
        }

        // --- Cloud-usage plans per org ---
        let mut plans = Vec::new();
        for org in &orgs {
            if org.cloud_intensity <= 0.0 {
                continue;
            }
            let mut org_rng = rng_tree.rng_idx("population/plans", org.id.0 as u64);
            plans.extend(plans_for_org(org, &config.plan, horizon, &mut org_rng));
        }

        Population {
            config,
            orgs,
            plans,
        }
    }

    pub fn org(&self, id: OrgId) -> &Organization {
        &self.orgs[id.0 as usize]
    }

    pub fn fortune500_count(&self) -> usize {
        self.orgs.iter().filter(|o| o.fortune500).count()
    }

    pub fn global500_count(&self) -> usize {
        self.orgs.iter().filter(|o| o.global500).count()
    }
}

/// WHOIS creation date for an established org: 1995–2012.
fn old_domain_date<R: Rng + ?Sized>(rng: &mut R) -> SimTime {
    let y = rng.gen_range(1995..=2012);
    let m = rng.gen_range(1..=12);
    let d = rng.gen_range(1..=28);
    Date::new(y, m, d).to_sim()
}

/// Mixed ages for popular domains: mostly old (Figure 18: 98.51% older than
/// a year at observation), a sliver recent.
fn mixed_domain_date<R: Rng + ?Sized>(rng: &mut R) -> SimTime {
    if rng.gen_bool(0.015) {
        // Young: created 2019–2022.
        let y = rng.gen_range(2019..=2022);
        Date::new(y, rng.gen_range(1..=12), rng.gen_range(1..=28)).to_sim()
    } else if rng.gen_bool(0.75) {
        old_domain_date(rng)
    } else {
        let y = rng.gen_range(2013..=2018);
        Date::new(y, rng.gen_range(1..=12), rng.gen_range(1..=28)).to_sim()
    }
}

fn caa_policy<R: Rng + ?Sized>(rng: &mut R, cfg: &WorldConfig) -> CaaPolicy {
    if rng.gen_bool(cfg.caa_paid_fraction) {
        CaaPolicy::PaidOnly
    } else if rng.gen_bool(cfg.caa_any_fraction) {
        CaaPolicy::FreeCa
    } else {
        CaaPolicy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> Population {
        let cfg = WorldConfig {
            scale: Scale::new(400),
            ..Default::default()
        };
        Population::generate(cfg, &RngTree::new(42))
    }

    #[test]
    fn victim_denominators_full_size() {
        let p = small_world();
        assert_eq!(p.fortune500_count(), 500);
        assert_eq!(p.global500_count(), 500);
    }

    #[test]
    fn apexes_unique() {
        let p = small_world();
        let mut seen = HashSet::new();
        for o in &p.orgs {
            assert!(seen.insert(o.apex.clone()), "duplicate apex {}", o.apex);
        }
    }

    #[test]
    fn categories_present() {
        let p = small_world();
        for cat in [
            OrgCategory::Enterprise,
            OrgCategory::University,
            OrgCategory::Government,
            OrgCategory::Popular,
        ] {
            assert!(p.orgs.iter().any(|o| o.category == cat), "missing {cat:?}");
        }
        assert!(p.orgs.iter().any(|o| o.parked));
        assert!(p.orgs.iter().any(|o| o.qs_ranked));
    }

    #[test]
    fn domain_ages_mostly_old() {
        let p = small_world();
        let t = SimTime::monitor_start();
        let old = p.orgs.iter().filter(|o| o.domain_age_days(t) > 365).count();
        assert!(old as f64 / p.orgs.len() as f64 > 0.93);
    }

    #[test]
    fn plans_generated_and_skewed_to_freetext() {
        let p = small_world();
        assert!(!p.plans.is_empty());
        let freetext = p
            .plans
            .iter()
            .filter(|pl| {
                cloudsim::provider::spec(pl.service).naming == cloudsim::NamingModel::Freetext
            })
            .count();
        // Freetext services carry the majority of the monitored mass.
        assert!(freetext as f64 > 0.5 * p.plans.len() as f64);
        // Some dangling candidates exist.
        assert!(p.plans.iter().any(|pl| pl.becomes_dangling()));
    }

    #[test]
    fn deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(a.orgs.len(), b.orgs.len());
        assert_eq!(a.plans.len(), b.plans.len());
        assert_eq!(a.orgs[5].apex, b.orgs[5].apex);
    }

    #[test]
    fn caa_rare() {
        let p = small_world();
        let caa_any = p
            .orgs
            .iter()
            .filter(|o| !matches!(o.caa, CaaPolicy::None))
            .count();
        assert!((caa_any as f64) < 0.06 * p.orgs.len() as f64);
    }
}
