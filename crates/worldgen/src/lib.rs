//! # worldgen — synthetic internet population
//!
//! Stands in for the paper's data sources (§3.1): the 2M government-domain
//! list, Fortune 1000 / Global 500 enterprise lists, the Alexa/Tranco top-1M,
//! the 9,933-university list, FarSight passive DNS for subdomain discovery,
//! and WHOIS for registrars and creation dates. Population sizes scale with
//! [`simcore::Scale`]; *victim-rate denominators* (Fortune 500, Global 500,
//! QS universities) are kept at full size so percentages like "31% of the
//! Fortune 500 were abused" remain meaningful.
//!
//! Also contains the organizations' **cloud-usage plans** — which resources
//! they provision, when they release them, and crucially whether they forget
//! to purge the DNS record (the negligence that creates dangling records) —
//! and the VirusTotal blacklisting model of §5.4.

pub mod names;
pub mod org;
pub mod plan;
pub mod population;
pub mod virustotal;

pub use org::{CaaPolicy, OrgCategory, OrgId, Organization, RegistrarId};
pub use plan::ResourcePlan;
pub use population::{Population, WorldConfig};
pub use virustotal::VirusTotalModel;

/// Sector list re-exported for population generation.
pub fn sectors() -> &'static [&'static str] {
    SECTORS
}

const SECTORS: &[&str] = &[
    "Industrials",
    "Energy",
    "Motor Vehicles",
    "Financials",
    "Technology",
    "Healthcare",
    "Retail",
    "Telecommunications",
    "Media",
    "Food & Beverage",
    "Aerospace",
    "Chemicals",
];
