//! Deterministic name generation.
//!
//! Pronounceable organization names and domain labels from syllable
//! composition, plus the service-subdomain vocabulary real organizations use
//! (the labels whose CNAMEs end up dangling).

use rand::seq::SliceRandom;
use rand::Rng;

const SYLLABLES: &[&str] = &[
    "an", "ber", "cor", "dex", "el", "fin", "gra", "hol", "in", "jor", "kal", "lum", "mer", "nor",
    "om", "pra", "quin", "ral", "sol", "tur", "uni", "ver", "wex", "xan", "yor", "zen", "tech",
    "dyn", "net", "sys", "max", "alt",
];

const ORG_SUFFIXES: &[&str] = &[
    "corp",
    "group",
    "industries",
    "holdings",
    "systems",
    "labs",
    "global",
    "partners",
    "energy",
    "motors",
    "health",
    "media",
    "foods",
    "chemical",
];

/// Subdomain labels organizations actually point at cloud resources.
pub const SERVICE_LABELS: &[&str] = &[
    "www", "shop", "assets", "blog", "dev", "staging", "api", "cdn", "events", "careers", "promo",
    "m", "portal", "app", "static", "img", "media", "test", "beta", "docs", "mail", "news",
    "store", "support", "campaign", "survey", "jobs", "lab", "partners", "demo",
];

/// A pronounceable lowercase label of 2–4 syllables.
pub fn label<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(2..=4);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYLLABLES.choose(rng).unwrap());
    }
    s
}

/// A company-style display name ("Verdex Holdings").
pub fn org_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    let base = label(rng);
    let mut chars = base.chars();
    let capitalized: String = chars
        .next()
        .map(|c| c.to_uppercase().chain(chars).collect())
        .unwrap_or_default();
    format!(
        "{capitalized} {}",
        capitalize(ORG_SUFFIXES.choose(rng).unwrap())
    )
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    chars
        .next()
        .map(|c| c.to_uppercase().chain(chars).collect())
        .unwrap_or_default()
}

/// A university name ("University of Kalsol").
pub fn university_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("University of {}", capitalize(&label(rng)))
}

/// A project codename usable as a cloud resource label.
pub fn project_label<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("{}-{}", label(rng), rng.gen_range(1..100))
}

/// A subdomain label: mostly service vocabulary, sometimes a codename.
pub fn subdomain_label<R: Rng + ?Sized>(rng: &mut R) -> String {
    if rng.gen_bool(0.7) {
        SERVICE_LABELS.choose(rng).unwrap().to_string()
    } else {
        project_label(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_are_valid_dns() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let l = label(&mut rng);
            assert!(!l.is_empty() && l.len() <= 63);
            assert!(l.chars().all(|c| c.is_ascii_lowercase()));
            let s = subdomain_label(&mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn names_deterministic() {
        let a = org_name(&mut StdRng::seed_from_u64(7));
        let b = org_name(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn name_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let o = org_name(&mut rng);
        assert!(o.contains(' '));
        let u = university_name(&mut rng);
        assert!(u.starts_with("University of "));
    }
}
