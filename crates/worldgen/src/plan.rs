//! Cloud-usage plans: which resources an organization provisions, when it
//! releases them, and whether it forgets the DNS record.
//!
//! The plan is the causal origin of every dangling record in the simulation:
//! a [`ResourcePlan`] with `release_at = Some(t)` and
//! `purge_record_on_release = false` leaves a CNAME (or A record) pointing
//! at a released resource from `t` onward — exactly the `foo.com A 1.2.3.4`
//! scenario of §1.

use crate::org::{OrgCategory, OrgId, Organization};
use cloudsim::{NamingModel, ServiceId};
use dns::Name;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{LogNormal, SimTime};

/// One planned cloud resource for one organization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourcePlan {
    pub org: OrgId,
    /// Subdomain of the org's apex that will CNAME/A to the resource
    /// (e.g. `shop.verdexcorp.com`).
    pub subdomain: Name,
    pub service: ServiceId,
    pub region: Option<String>,
    /// Requested freetext resource name (None for IP-pool services).
    pub resource_name: Option<String>,
    pub create_at: SimTime,
    /// When the org decommissions the service (None = still running at the
    /// end of the simulation).
    pub release_at: Option<SimTime>,
    /// Does the org remember to delete the DNS record at release?
    pub purge_record_on_release: bool,
    /// When the FQDN becomes visible to the study's feed (passive DNS /
    /// commercial feed discovery — drives Figure 1's growth).
    pub discovered_at: SimTime,
}

impl ResourcePlan {
    /// Will this plan produce a dangling record at some point?
    pub fn becomes_dangling(&self) -> bool {
        self.release_at.is_some() && !self.purge_record_on_release
    }

    /// Is the underlying resource deterministically re-registrable (the
    /// attack precondition of §4.3)?
    pub fn deterministically_hijackable(&self) -> bool {
        self.becomes_dangling()
            && cloudsim::provider::spec(self.service).naming == NamingModel::Freetext
    }
}

/// Service mix: monitored-population weights approximating Table 2 (the
/// randomized-allocation services carry real mass so their *absence* from
/// the abuse data is an outcome, not an input).
pub fn service_weights() -> Vec<(ServiceId, f64)> {
    vec![
        (ServiceId::AzureWebApp, 690_779.0),
        (ServiceId::AwsS3Website, 565_684.0),
        (ServiceId::AzureEdge, 299_494.0),
        (ServiceId::AzureTrafficManager, 140_183.0),
        (ServiceId::AwsElasticBeanstalk, 138_523.0),
        (ServiceId::AzureCloudappLegacy, 98_000.0),
        (ServiceId::AzureCloudappRegional, 86_000.0),
        (ServiceId::HerokuApp, 37_360.0),
        (ServiceId::AzureWebAppSip, 30_532.0),
        (ServiceId::GoogleAppEngine, 20_389.0),
        (ServiceId::CloudflarePages, 17_100.0),
        (ServiceId::PantheonSite, 14_183.0),
        (ServiceId::NetlifyApp, 10_152.0),
        (ServiceId::AwsEc2PublicIp, 420_000.0),
        (ServiceId::AzureVmPublicIp, 400_000.0),
    ]
}

/// Parameters of plan generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Probability that a resource is released before the simulation ends.
    pub release_probability: f64,
    /// Median resource lifetime in days (log-normal).
    pub lifetime_median_days: f64,
    pub lifetime_spread: f64,
    /// Additional services mixed into the monitored population with their
    /// paper-scale weights — used by the §7 WordPress-ecosystem extension.
    pub extra_services: Vec<(ServiceId, f64)>,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            release_probability: 0.22,
            lifetime_median_days: 420.0,
            lifetime_spread: 2.5,
            extra_services: Vec::new(),
        }
    }
}

/// Generate the cloud-usage plan for one organization.
///
/// `horizon` is the end of the simulated period; resources are created from
/// 2016 up to ~6 months before the horizon.
pub fn plans_for_org<R: Rng + ?Sized>(
    org: &Organization,
    cfg: &PlanConfig,
    horizon: SimTime,
    rng: &mut R,
) -> Vec<ResourcePlan> {
    let n = simcore::Poisson::new(org.cloud_intensity).sample(rng) as usize;
    let mut weights = service_weights();
    weights.extend(cfg.extra_services.iter().cloned());
    let widx = simcore::WeightedIndex::new(&weights.iter().map(|(_, w)| *w).collect::<Vec<_>>());
    let lifetime = LogNormal::from_median_spread(cfg.lifetime_median_days, cfg.lifetime_spread);
    let start_epoch = simcore::Date::new(2016, 1, 1).to_sim();
    let create_span = (horizon - 180 - start_epoch).max(1);
    let monitor_start = SimTime::monitor_start();

    let mut used_labels: Vec<String> = Vec::new();
    let mut apex_used = false;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (service, _) = weights[widx.sample(rng)];
        let spec = cloudsim::provider::spec(service);
        // ~8% of cloud uses sit on the apex itself (the paper's 1,565
        // SLD-level hijacks); the rest on service subdomains.
        let subdomain = if !apex_used && rng.gen_bool(0.08) {
            apex_used = true;
            org.apex.clone()
        } else {
            let mut label = crate::names::subdomain_label(rng);
            let mut guard = 0;
            while used_labels.contains(&label) {
                label = crate::names::project_label(rng);
                guard += 1;
                if guard > 20 {
                    label = format!("{label}-{i}");
                    break;
                }
            }
            used_labels.push(label.clone());
            let Ok(sub) = org.apex.child(&label) else {
                continue;
            };
            sub
        };
        let region = if spec.needs_region() {
            Some(spec.regions.choose(rng).unwrap().to_string())
        } else {
            None
        };
        // Freetext name: orgs commonly derive it from their own brand + the
        // subdomain label ("www" for apex-level uses) — which is what makes
        // the generated FQDN recognizable & valuable.
        let resource_name = match spec.naming {
            NamingModel::IpPool => None,
            _ => {
                let apex_label = org.apex.labels()[0];
                let tag = if subdomain == org.apex {
                    "www".to_string()
                } else {
                    subdomain.labels()[0].to_string()
                };
                Some(format!("{apex_label}-{tag}"))
            }
        };
        let create_at = start_epoch + rng.gen_range(0..create_span);
        let release_at = if rng.gen_bool(cfg.release_probability) {
            let life = lifetime.sample(rng).max(30.0) as i32;
            let at = create_at + life;
            (at < horizon).then_some(at)
        } else {
            None
        };
        let purge_record_on_release = rng.gen_bool(org.purge_diligence);
        // Feed discovery: FQDNs existing before 2020 are in the initial
        // 1.5M list; later ones arrive via the commercial feed with a lag.
        let discovered_at = if create_at <= monitor_start {
            monitor_start
        } else {
            create_at + rng.gen_range(7..90)
        };
        out.push(ResourcePlan {
            org: org.id,
            subdomain,
            service,
            region,
            resource_name,
            create_at,
            release_at,
            purge_record_on_release,
            discovered_at,
        });
    }
    out
}

/// Per-category cloud intensity (expected resources per org): enterprises
/// run fleets (one real victim had >100 abused subdomains), universities and
/// governments fewer, popular sites a couple.
pub fn default_intensity(category: OrgCategory, rng: &mut impl Rng) -> f64 {
    match category {
        OrgCategory::Enterprise => 8.0 + rng.gen_range(0.0..30.0),
        OrgCategory::University => 2.0 + rng.gen_range(0.0..6.0),
        OrgCategory::Government => 1.0 + rng.gen_range(0.0..4.0),
        OrgCategory::Popular => 0.8 + rng.gen_range(0.0..2.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::{CaaPolicy, RegistrarId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn org() -> Organization {
        Organization {
            id: OrgId(1),
            name: "Verdex Corp".into(),
            sector: "Technology",
            category: OrgCategory::Enterprise,
            apex: "verdexcorp.com".parse().unwrap(),
            registrar: RegistrarId(1),
            whois_created: simcore::Date::new(2003, 1, 1).to_sim(),
            tranco_rank: Some(500),
            fortune500: true,
            fortune1000: true,
            global500: false,
            qs_ranked: false,
            cloud_intensity: 20.0,
            purge_diligence: 0.75,
            remediation_median_days: 40.0,
            uses_hsts: false,
            caa: CaaPolicy::None,
            parked: false,
            parking_provider: None,
        }
    }

    #[test]
    fn plans_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = SimTime::monitor_end();
        let plans = plans_for_org(&org(), &PlanConfig::default(), horizon, &mut rng);
        assert!(!plans.is_empty());
        for p in &plans {
            assert!(p.subdomain.ends_with(&"verdexcorp.com".parse().unwrap()));
            if let Some(r) = p.release_at {
                assert!(r > p.create_at);
                assert!(r < horizon);
            }
            assert!(p.discovered_at >= SimTime::monitor_start() || p.create_at < p.discovered_at);
            let spec = cloudsim::provider::spec(p.service);
            assert_eq!(spec.needs_region(), p.region.is_some());
            assert_eq!(
                matches!(spec.naming, NamingModel::IpPool),
                p.resource_name.is_none()
            );
        }
        // Subdomain labels unique within the org.
        let mut labels: Vec<_> = plans.iter().map(|p| p.subdomain.clone()).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn some_plans_become_dangling() {
        let mut rng = StdRng::seed_from_u64(2);
        let horizon = SimTime::monitor_end();
        let mut dangling = 0;
        let mut hijackable = 0;
        let mut total = 0;
        for seed in 0..30 {
            let mut o = org();
            o.id = OrgId(seed);
            let plans = plans_for_org(&o, &PlanConfig::default(), horizon, &mut rng);
            total += plans.len();
            dangling += plans.iter().filter(|p| p.becomes_dangling()).count();
            hijackable += plans
                .iter()
                .filter(|p| p.deterministically_hijackable())
                .count();
        }
        assert!(total > 100);
        assert!(dangling > 0);
        assert!(hijackable > 0);
        assert!(hijackable <= dangling);
        // Dangling is a minority outcome (release_prob * (1-diligence)).
        assert!((dangling as f64) < 0.2 * total as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let horizon = SimTime::monitor_end();
        let a = plans_for_org(
            &org(),
            &PlanConfig::default(),
            horizon,
            &mut StdRng::seed_from_u64(9),
        );
        let b = plans_for_org(
            &org(),
            &PlanConfig::default(),
            horizon,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.subdomain, y.subdomain);
            assert_eq!(x.create_at, y.create_at);
        }
    }
}
