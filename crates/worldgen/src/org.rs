//! Organizations, registrars, and per-org security posture.

use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// Organization handle (index into the population).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrgId(pub u32);

/// Registrar handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegistrarId(pub u16);

/// Category of organization — drives content style, victim statistics, and
/// cloud-usage intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgCategory {
    /// Fortune/Global enterprise.
    Enterprise,
    /// University (Figure 9's population).
    University,
    /// Government agency.
    Government,
    /// Popular web property from the Tranco-style list.
    Popular,
}

impl OrgCategory {
    pub fn as_str(self) -> &'static str {
        match self {
            OrgCategory::Enterprise => "Enterprise",
            OrgCategory::University => "University",
            OrgCategory::Government => "Government",
            OrgCategory::Popular => "Popular",
        }
    }
}

/// CAA posture (§5.6.2: 2% of parents set CAA at all, 0.4% restrict to
/// paid-only CAs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaaPolicy {
    /// No CAA records (98% of parents).
    None,
    /// CAA authorizing a free CA (the common, ineffective configuration).
    FreeCa,
    /// CAA authorizing only a paid CA (the paper's hypothetical deterrent).
    PaidOnly,
}

/// One organization in the synthetic world.
///
/// Serialize-only: `sector` borrows from the static sector table, so the
/// type is not deserializable (reports never need to round-trip it).
#[derive(Debug, Clone, Serialize)]
pub struct Organization {
    pub id: OrgId,
    pub name: String,
    pub sector: &'static str,
    pub category: OrgCategory,
    /// Registrable apex domain (e.g. `verdexcorp.com`).
    pub apex: Name,
    pub registrar: RegistrarId,
    /// WHOIS creation date (Figure 18: 98.51% of hijacked SLDs are older
    /// than a year, most older than a decade).
    pub whois_created: SimTime,
    /// Tranco-style popularity rank (1 = most popular), if listed.
    pub tranco_rank: Option<u32>,
    pub fortune500: bool,
    pub fortune1000: bool,
    pub global500: bool,
    /// QS-ranked university.
    pub qs_ranked: bool,
    /// Expected number of cloud resources the org provisions over the whole
    /// simulated period (Poisson intensity).
    pub cloud_intensity: f64,
    /// Probability that the org purges the DNS record when releasing a
    /// resource. The complement is the §1 negligence that creates dangling
    /// records.
    pub purge_diligence: f64,
    /// Median days from hijack *detection opportunity* to remediation; draws
    /// the Figure 15 lifespan distribution.
    pub remediation_median_days: f64,
    /// Serves an HSTS header on the apex (App. A.2: >16%).
    pub uses_hsts: bool,
    pub caa: CaaPolicy,
    /// Parked domain (serves registrar parking content; the §3.2 benign-
    /// change confounder).
    pub parked: bool,
    /// Parking provider index when parked (tied to the registrar).
    pub parking_provider: Option<u8>,
}

impl Organization {
    /// Domain age in days at time `t`.
    pub fn domain_age_days(&self, t: SimTime) -> i32 {
        t - self.whois_created
    }
}

/// Registrar display names (50 registrars; parking providers are keyed to
/// registrars so parked-domain rotations correlate with a single registrar,
/// as in the real ecosystem).
pub fn registrar_name(r: RegistrarId) -> String {
    const STEMS: &[&str] = &[
        "NameVault",
        "DomainHub",
        "RegistroNet",
        "HostPort",
        "ZoneMart",
        "DNSmith",
        "WebAnchor",
        "TldWorks",
        "NetNames",
        "DomainForge",
    ];
    let stem = STEMS[(r.0 as usize) % STEMS.len()];
    format!("{stem}-{:02}", r.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Date;

    #[test]
    fn domain_age() {
        let org = Organization {
            id: OrgId(0),
            name: "X".into(),
            sector: "Technology",
            category: OrgCategory::Enterprise,
            apex: "x.com".parse().unwrap(),
            registrar: RegistrarId(3),
            whois_created: Date::new(2005, 6, 1).to_sim(),
            tranco_rank: Some(10),
            fortune500: true,
            fortune1000: true,
            global500: false,
            qs_ranked: false,
            cloud_intensity: 5.0,
            purge_diligence: 0.8,
            remediation_median_days: 30.0,
            uses_hsts: true,
            caa: CaaPolicy::None,
            parked: false,
            parking_provider: None,
        };
        let t = Date::new(2020, 6, 1).to_sim();
        let age = org.domain_age_days(t);
        assert!(age > 15 * 365 - 30 && age < 15 * 365 + 30);
    }

    #[test]
    fn registrar_names_distinct_per_id() {
        assert_ne!(
            registrar_name(RegistrarId(1)),
            registrar_name(RegistrarId(2))
        );
        assert_eq!(
            registrar_name(RegistrarId(7)),
            registrar_name(RegistrarId(7))
        );
    }
}
