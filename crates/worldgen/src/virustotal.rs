//! VirusTotal blacklisting model (§5.4, Figure 19).
//!
//! The paper finds AV blacklisting nearly absent: of 17,698 hijacked FQDNs
//! only 135 were flagged by ≥1 vendor and 18 by ≥2, with widespread listing
//! taking upwards of two years from first certificate issuance. The model
//! assigns each hijacked domain a (deterministic, seeded) flag outcome with
//! those base rates, gated on exposure time.

use dns::Name;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::rng::splitmix64;
use simcore::{RngTree, SimTime};

/// Model parameters (paper base rates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirusTotalModel {
    /// P(flagged by ≥1 vendor) once exposure exceeds the lag. 135/17698.
    pub p_flag_one: f64,
    /// P(flagged by ≥2 vendors | flagged). 18/135.
    pub p_flag_multi: f64,
    /// Median days from first observation to listing.
    pub median_lag_days: f64,
    seed: u64,
}

impl VirusTotalModel {
    pub fn new(rng_tree: &RngTree) -> Self {
        VirusTotalModel {
            p_flag_one: 135.0 / 17_698.0,
            p_flag_multi: 18.0 / 135.0,
            median_lag_days: 700.0,
            seed: rng_tree.child("virustotal").seed(),
        }
    }

    /// Number of vendors flagging `domain` when queried at `query_time`,
    /// given the domain became abusive at `abuse_start`. Deterministic per
    /// domain and seed.
    pub fn vendor_flags(&self, domain: &Name, abuse_start: SimTime, query_time: SimTime) -> u32 {
        if query_time <= abuse_start {
            return 0;
        }
        let h = splitmix64(self.seed ^ hash_name(domain));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h);
        if !rng.gen_bool(self.p_flag_one) {
            return 0;
        }
        // Listing lag: log-normal around the median.
        let lag = simcore::LogNormal::from_median_spread(self.median_lag_days, 1.6)
            .sample(&mut rng)
            .max(60.0) as i32;
        if query_time - abuse_start < lag {
            return 0;
        }
        if rng.gen_bool(self.p_flag_multi) {
            2 + (h % 3) as u32 // 2..=4 vendors
        } else {
            1
        }
    }
}

fn hash_name(n: &Name) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in n.to_string().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> VirusTotalModel {
        VirusTotalModel::new(&RngTree::new(11))
    }

    #[test]
    fn mostly_unflagged() {
        let m = model();
        let start = SimTime(0);
        let late = SimTime(2000);
        let mut flagged = 0;
        let n = 20_000;
        for i in 0..n {
            let d: Name = format!("h{i}.example.com").parse().unwrap();
            if m.vendor_flags(&d, start, late) > 0 {
                flagged += 1;
            }
        }
        let rate = flagged as f64 / n as f64;
        // Base rate 0.76%; allow sampling slack.
        assert!(rate > 0.004 && rate < 0.012, "rate = {rate}");
    }

    #[test]
    fn flags_require_lag() {
        let m = model();
        let start = SimTime(0);
        // Find a domain that is eventually flagged.
        let flagged_domain = (0..50_000)
            .map(|i| format!("h{i}.example.com").parse::<Name>().unwrap())
            .find(|d| m.vendor_flags(d, start, SimTime(3000)) > 0)
            .expect("some domain flags");
        // Immediately after abuse start it is not yet flagged.
        assert_eq!(m.vendor_flags(&flagged_domain, start, SimTime(30)), 0);
        assert_eq!(m.vendor_flags(&flagged_domain, start, start), 0);
    }

    #[test]
    fn deterministic() {
        let m = model();
        let d: Name = "h7.example.com".parse().unwrap();
        assert_eq!(
            m.vendor_flags(&d, SimTime(0), SimTime(2500)),
            m.vendor_flags(&d, SimTime(0), SimTime(2500))
        );
    }

    #[test]
    fn multi_vendor_subset() {
        let m = model();
        let start = SimTime(0);
        let late = SimTime(3000);
        let mut one = 0;
        let mut multi = 0;
        for i in 0..50_000 {
            let d: Name = format!("x{i}.victim.org").parse().unwrap();
            match m.vendor_flags(&d, start, late) {
                0 => {}
                1 => one += 1,
                _ => multi += 1,
            }
        }
        assert!(one > multi, "single-vendor flags should dominate");
        assert!(multi > 0);
    }
}
