//! Language tagging and detection.
//!
//! The monitoring pipeline flags *language changes* as a hijack indicator
//! (signature type 6 in §3.2): a Fortune-500 product page suddenly serving
//! Indonesian gambling text or auto-generated Japanese is a strong signal.
//! Detection combines Unicode-script counting (ja/th/ru/ar) with stopword
//! scoring (en/id/de).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Languages that occur in the study's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    English,
    Indonesian,
    Japanese,
    Thai,
    Russian,
    German,
    Arabic,
}

impl Language {
    pub fn tag(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::Indonesian => "id",
            Language::Japanese => "ja",
            Language::Thai => "th",
            Language::Russian => "ru",
            Language::German => "de",
            Language::Arabic => "ar",
        }
    }

    pub fn from_tag(tag: &str) -> Option<Language> {
        Some(match tag {
            "en" => Language::English,
            "id" => Language::Indonesian,
            "ja" => Language::Japanese,
            "th" => Language::Thai,
            "ru" => Language::Russian,
            "de" => Language::German,
            "ar" => Language::Arabic,
            _ => return None,
        })
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

const EN_STOPWORDS: &[&str] = &[
    "the", "and", "for", "with", "our", "your", "from", "this", "that", "are", "was", "have",
    "will", "more", "about", "service", "services", "products",
];

const ID_STOPWORDS: &[&str] = &[
    "yang",
    "dan",
    "di",
    "dengan",
    "untuk",
    "dari",
    "ini",
    "itu",
    "anda",
    "kami",
    "situs",
    "judi",
    "daftar",
    "terpercaya",
    "agen",
    "bola",
    "pulsa",
    "gacor",
    "slot",
];

const DE_STOPWORDS: &[&str] = &[
    "der", "die", "das", "und", "mit", "für", "von", "ist", "wird", "unsere", "sie", "nicht",
    "eine", "auf", "werden", "derzeit",
];

/// Detect the dominant language of a text. Returns `None` for texts with no
/// recognizable signal (e.g. pure markup).
pub fn detect(text: &str) -> Option<Language> {
    // Script-based detection first: count characters per script.
    let mut ja = 0usize;
    let mut th = 0usize;
    let mut ru = 0usize;
    let mut ar = 0usize;
    let mut latin = 0usize;
    for c in text.chars() {
        let u = c as u32;
        match u {
            // Hiragana, Katakana, CJK unified ideographs.
            0x3040..=0x30FF | 0x4E00..=0x9FFF => ja += 1,
            0x0E00..=0x0E7F => th += 1,
            0x0400..=0x04FF => ru += 1,
            0x0600..=0x06FF => ar += 1,
            _ if c.is_ascii_alphabetic() => latin += 1,
            _ => {}
        }
    }
    let script_max = ja.max(th).max(ru).max(ar);
    if script_max > 0 && script_max * 4 >= latin {
        if ja == script_max {
            return Some(Language::Japanese);
        }
        if th == script_max {
            return Some(Language::Thai);
        }
        if ru == script_max {
            return Some(Language::Russian);
        }
        return Some(Language::Arabic);
    }
    if latin == 0 {
        return None;
    }
    // Stopword scoring for Latin-script languages.
    let lower = text.to_lowercase();
    let words: Vec<&str> = lower
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return None;
    }
    let score = |stop: &[&str]| words.iter().filter(|w| stop.contains(w)).count();
    let en = score(EN_STOPWORDS);
    let id = score(ID_STOPWORDS);
    let de = score(DE_STOPWORDS);
    let best = en.max(id).max(de);
    if best == 0 {
        return None;
    }
    if id == best {
        Some(Language::Indonesian)
    } else if de == best {
        Some(Language::German)
    } else {
        Some(Language::English)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_english() {
        assert_eq!(
            detect("Welcome to our services, learn more about the products we have for you"),
            Some(Language::English)
        );
    }

    #[test]
    fn detects_indonesian_gambling() {
        assert_eq!(
            detect("daftar situs judi slot online terpercaya dengan agen bola gacor"),
            Some(Language::Indonesian)
        );
    }

    #[test]
    fn detects_japanese() {
        assert_eq!(
            detect("当社のウェブサイトは現在メンテナンス中です"),
            Some(Language::Japanese)
        );
    }

    #[test]
    fn detects_thai() {
        assert_eq!(detect("สล็อตออนไลน์ การพนัน"), Some(Language::Thai));
    }

    #[test]
    fn detects_russian() {
        assert_eq!(
            detect("Как вы здесь оказались? создайте алиас в настройках"),
            Some(Language::Russian)
        );
    }

    #[test]
    fn detects_german() {
        assert_eq!(
            detect("Unsere Website wird derzeit planmäßig gewartet und ist nicht erreichbar"),
            Some(Language::German)
        );
    }

    #[test]
    fn detects_arabic() {
        assert_eq!(
            detect("يخضع موقعنا حاليًا للصيانة المجدولة"),
            Some(Language::Arabic)
        );
    }

    #[test]
    fn no_signal() {
        assert_eq!(detect(""), None);
        assert_eq!(detect("12345 --- ###"), None);
        assert_eq!(detect("zzz qqq xxx"), None);
    }

    #[test]
    fn tag_roundtrip() {
        for l in [
            Language::English,
            Language::Indonesian,
            Language::Japanese,
            Language::Thai,
            Language::Russian,
            Language::German,
            Language::Arabic,
        ] {
            assert_eq!(Language::from_tag(l.tag()), Some(l));
        }
        assert_eq!(Language::from_tag("xx"), None);
    }
}
