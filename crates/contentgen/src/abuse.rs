//! Abuse content generation — §5.2's technique catalogue.
//!
//! Builders for the content families the paper observed on hijacked
//! domains: doorway pages (62.13% of SEO), the Japanese Keyword Hack /
//! private link networks (7.17%), keyword stuffing (the keywords meta tag on
//! 41% of pages), and click-jacking redirect pages. Campaign identifiers
//! (WhatsApp phones, Telegram handles, shortlinks, backend IPs) are embedded
//! as hyperlinks exactly where §6's extractor will find them.

use crate::corpus::{
    ADULT_KEYWORDS, GAMBLING_KEYWORDS, JAPANESE_FRAGMENTS, PHARMA_KEYWORDS, POPUNDER_SCRIPTS,
    SHOPPING_KEYWORDS, THAI_FRAGMENTS,
};
use crate::html::{sitemap_xml, HtmlDoc};
use cloudsim::{PageStats, SiteContent, Sitemap};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Content topics (Figure 3 / Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AbuseTopic {
    Gambling,
    Adult,
    Pharma,
    Shopping,
}

impl AbuseTopic {
    pub fn keywords(self) -> &'static [&'static str] {
        match self {
            AbuseTopic::Gambling => GAMBLING_KEYWORDS,
            AbuseTopic::Adult => ADULT_KEYWORDS,
            AbuseTopic::Pharma => PHARMA_KEYWORDS,
            AbuseTopic::Shopping => SHOPPING_KEYWORDS,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            AbuseTopic::Gambling => "Gambling",
            AbuseTopic::Adult => "Adult",
            AbuseTopic::Pharma => "Pharma",
            AbuseTopic::Shopping => "Shopping",
        }
    }

    /// The primary language of the generated content (the dataset's bias
    /// toward Indonesian gambling, §6).
    pub fn language(self) -> &'static str {
        match self {
            AbuseTopic::Gambling => "id",
            _ => "en",
        }
    }
}

/// SEO/abuse techniques (§5.2.1–5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SeoTechnique {
    /// Low-quality pages that rank and redirect to the monetized target.
    DoorwayPages,
    /// Cloaking with mass auto-generated Japanese pages + robots.txt games.
    JapaneseKeywordHack,
    /// Pages that exist only to link to other hijacked domains.
    LinkNetwork,
    /// Keyword-stuffed pages without a distinct doorway structure.
    KeywordStuffing,
    /// onClick interception redirecting to ad servers (adult pages).
    ClickJacking,
}

impl SeoTechnique {
    pub fn as_str(self) -> &'static str {
        match self {
            SeoTechnique::DoorwayPages => "Doorway pages",
            SeoTechnique::JapaneseKeywordHack => "Japanese Keyword Hack",
            SeoTechnique::LinkNetwork => "Private link network",
            SeoTechnique::KeywordStuffing => "Keyword stuffing",
            SeoTechnique::ClickJacking => "Click-jacking",
        }
    }
}

/// Campaign-level identifiers embedded into every page of the campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignLinks {
    pub phones: Vec<String>,
    pub social: Vec<String>,
    pub shortlinks: Vec<String>,
    pub backend_ips: Vec<Ipv4Addr>,
    /// The monetized target site (gambling brand) and referral code.
    pub target_site: String,
    pub referral_code: String,
}

/// Specification of the abuse content for one hijacked host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbuseSpec {
    pub topic: AbuseTopic,
    pub technique: SeoTechnique,
    /// Number of HTML files to (statistically) upload — Figure 6's heavy
    /// tail, 2 .. 144,349.
    pub page_count: u64,
    /// Whether pages carry the keywords meta tag (41% do, §5.2.1).
    pub use_meta_keywords: bool,
    /// Hide behind a localized maintenance shell instead of a doorway index.
    pub maintenance_shell_lang: Option<String>,
    pub links: CampaignLinks,
    /// Other hijacked hosts to cross-link (the 2-way link network).
    pub network_peers: Vec<String>,
    /// Campaign-fixed doorway vocabulary. Real campaigns stamp the same
    /// template onto every hijacked domain — the premise behind §3.2's
    /// "identical keyword lists indicate the same page content" clustering.
    /// Empty means untemplated: sample the whole topic corpus per page.
    pub template_keywords: Vec<String>,
}

impl AbuseSpec {
    /// The keyword vocabulary pages of this spec draw from.
    fn keyword_pool(&self) -> Vec<&str> {
        if self.template_keywords.is_empty() {
            self.topic.keywords().to_vec()
        } else {
            self.template_keywords.iter().map(String::as_str).collect()
        }
    }
}

/// Build the hosted content for `host` according to `spec`.
pub fn build_abuse_site<R: Rng + ?Sized>(spec: &AbuseSpec, host: &str, rng: &mut R) -> SiteContent {
    let kws = spec.keyword_pool();
    let lang = spec.topic.language();

    // ----- index page -----
    let index_html = if let Some(shell_lang) = &spec.maintenance_shell_lang {
        // Innocuous shell; the real content hides in the page store.
        crate::benign::maintenance_shell(shell_lang)
    } else {
        let mut doc = HtmlDoc::new(title_for(spec, rng)).with_lang(lang);
        if spec.use_meta_keywords {
            for k in kws.iter().take(8) {
                doc = doc.keyword(k);
            }
            doc = doc.description(format!(
                "{} {} {} terbaik",
                kws[0],
                kws[1 % kws.len()],
                kws[2 % kws.len()]
            ));
        }
        doc = doc.heading(title_for(spec, rng));
        for _ in 0..4 {
            doc = doc.paragraph(keyword_sentence(&kws, rng));
        }
        doc = embed_campaign(doc, spec);
        if matches!(spec.technique, SeoTechnique::ClickJacking) {
            doc = doc.inline_script(format!(
                "document.addEventListener('click',function(e){{e.preventDefault();\
                 window.open('http://{}/pops?ref={}');}},true);",
                spec.links
                    .backend_ips
                    .first()
                    .map(|ip| ip.to_string())
                    .unwrap_or_else(|| spec.links.target_site.clone()),
                spec.links.referral_code
            ));
        }
        for peer in spec.network_peers.iter().take(5) {
            doc = doc.link(format!("https://{peer}/"), keyword_sentence(&kws, rng));
        }
        doc.render()
    };

    // ----- page store & sitemap -----
    let page_names: Vec<String> = (0..spec.page_count.min(25))
        .map(|i| random_page_name(rng, i))
        .collect();
    let sample_page = Some(build_inner_page(spec, rng));
    let robots_txt = if matches!(spec.technique, SeoTechnique::JapaneseKeywordHack) {
        // Point crawlers at the generated spam and away from the original
        // content (§5.2.1 cloaking).
        Some(format!(
            "User-agent: *\nAllow: /{}\nDisallow: /original/\nSitemap: https://{host}/sitemap.xml\n",
            page_names.first().cloned().unwrap_or_default()
        ))
    } else {
        Some("User-agent: *\nAllow: /\n".to_string())
    };

    SiteContent {
        index_html,
        sitemap: Some(Sitemap {
            entries: spec.page_count,
            bytes: 120 + spec.page_count * 80,
            sample_xml: sitemap_xml(host, &page_names),
        }),
        pages: PageStats {
            count: spec.page_count,
            // The paper's mean abused file is 52.4 kB.
            total_bytes: spec.page_count * 52_400,
        },
        sample_page,
        robots_txt,
        extra_headers: Vec::new(),
        language: lang.to_string(),
    }
}

fn title_for<R: Rng + ?Sized>(spec: &AbuseSpec, rng: &mut R) -> String {
    let kws = spec.topic.keywords();
    match spec.topic {
        AbuseTopic::Gambling => format!(
            "{} {} {} gacor terpercaya",
            kws.choose(rng).unwrap(),
            kws.choose(rng).unwrap(),
            kws.choose(rng).unwrap()
        ),
        AbuseTopic::Adult => "Top adult videos and photos".to_string(),
        AbuseTopic::Pharma => "Cheap online pharmacy — no prescription".to_string(),
        AbuseTopic::Shopping => "Luxury outlet — replica handbags sale".to_string(),
    }
}

fn keyword_sentence<R: Rng + ?Sized>(kws: &[&str], rng: &mut R) -> String {
    let n = rng.gen_range(4..9);
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(*kws.choose(rng).unwrap());
    }
    words.join(" ")
}

fn embed_campaign(mut doc: HtmlDoc, spec: &AbuseSpec) -> HtmlDoc {
    for p in &spec.links.phones {
        doc = doc.link(format!("https://wa.me/{p}"), "WhatsApp");
    }
    for s in &spec.links.social {
        doc = doc.link(format!("https://{s}"), "Channel");
    }
    for s in &spec.links.shortlinks {
        doc = doc.link(format!("https://{s}"), "Promo");
    }
    for ip in &spec.links.backend_ips {
        doc = doc.link(
            format!("http://{ip}/land?ref={}", spec.links.referral_code),
            "Masuk / Login",
        );
    }
    if !spec.links.target_site.is_empty() {
        doc = doc.link(
            format!(
                "https://{}/register?ref={}",
                spec.links.target_site, spec.links.referral_code
            ),
            "Daftar sekarang",
        );
    }
    if let Some(ip) = spec.links.backend_ips.first() {
        doc = doc.script(format!(
            "http://{ip}/js/{}",
            POPUNDER_SCRIPTS[(spec.links.referral_code.len()) % POPUNDER_SCRIPTS.len()]
        ));
    }
    doc
}

fn build_inner_page<R: Rng + ?Sized>(spec: &AbuseSpec, rng: &mut R) -> String {
    let kws = spec.topic.keywords();
    match spec.technique {
        SeoTechnique::JapaneseKeywordHack => {
            let mut doc =
                HtmlDoc::new(JAPANESE_FRAGMENTS.choose(rng).unwrap().to_string()).with_lang("ja");
            for _ in 0..5 {
                doc = doc.paragraph(format!(
                    "{} {}",
                    JAPANESE_FRAGMENTS.choose(rng).unwrap(),
                    JAPANESE_FRAGMENTS.choose(rng).unwrap()
                ));
            }
            doc = doc.link("/sitemap.xml", "ページディレクトリ");
            embed_campaign(doc, spec).render()
        }
        SeoTechnique::LinkNetwork => {
            let mut doc = HtmlDoc::new(keyword_sentence(kws, rng)).with_lang(spec.topic.language());
            for peer in &spec.network_peers {
                doc = doc.link(
                    format!("https://{peer}/{}", random_page_name(rng, 0)),
                    keyword_sentence(kws, rng),
                );
            }
            embed_campaign(doc, spec).render()
        }
        _ => {
            let mut doc = HtmlDoc::new(title_for(spec, rng)).with_lang(spec.topic.language());
            if spec.use_meta_keywords {
                for k in kws.iter().take(12) {
                    doc = doc.keyword(k);
                }
            }
            for _ in 0..6 {
                doc = doc.paragraph(keyword_sentence(kws, rng));
            }
            if spec.topic == AbuseTopic::Gambling && rng.gen_bool(0.3) {
                doc = doc.paragraph(THAI_FRAGMENTS.choose(rng).unwrap().to_string());
            }
            embed_campaign(doc, spec).render()
        }
    }
}

/// The "consistent random name generation" of signature example 4.
fn random_page_name<R: Rng + ?Sized>(rng: &mut R, salt: u64) -> String {
    let mut s = String::with_capacity(12);
    for _ in 0..10 {
        let c = b"abcdefghijklmnopqrstuvwxyz0123456789"[rng.gen_range(0..36usize)];
        s.push(c as char);
    }
    format!("{s}{salt}.html")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn links() -> CampaignLinks {
        CampaignLinks {
            phones: vec!["6281234567890".into()],
            social: vec!["t.me/slotgacor88".into()],
            shortlinks: vec!["bit.ly/abc123".into()],
            backend_ips: vec!["203.0.113.7".parse().unwrap()],
            target_site: "maxwin-heaven.example".into(),
            referral_code: "REF777".into(),
        }
    }

    fn spec(technique: SeoTechnique) -> AbuseSpec {
        AbuseSpec {
            topic: AbuseTopic::Gambling,
            technique,
            page_count: 31_810,
            use_meta_keywords: true,
            maintenance_shell_lang: None,
            links: links(),
            network_peers: vec!["x.victim-a.com".into(), "y.victim-b.org".into()],
            template_keywords: vec![],
        }
    }

    #[test]
    fn doorway_site_carries_keywords_and_identifiers() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = build_abuse_site(&spec(SeoTechnique::DoorwayPages), "h.victim.com", &mut rng);
        let kws = extract::meta_keywords(&s.index_html);
        assert!(kws.contains(&"slot".to_string()));
        let ids = extract::identifiers(&s.index_html);
        assert_eq!(ids.phones, vec!["6281234567890"]);
        assert_eq!(ids.social, vec!["t.me/slotgacor88"]);
        assert!(!ids.ips.is_empty());
        assert!(s.index_html.contains("ref=REF777"));
        assert_eq!(s.language, "id");
        assert_eq!(s.pages.count, 31_810);
        assert_eq!(s.sitemap.as_ref().unwrap().entries, 31_810);
    }

    #[test]
    fn maintenance_shell_hides_content() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sp = spec(SeoTechnique::DoorwayPages);
        sp.maintenance_shell_lang = Some("en".into());
        let s = build_abuse_site(&sp, "h.victim.com", &mut rng);
        // Index is innocuous...
        assert!(s.index_html.contains("maintenance"));
        assert!(extract::identifiers(&s.index_html).is_empty());
        // ...but thousands of pages hide behind it.
        assert!(s.pages.count > 10_000);
        assert!(!extract::identifiers(s.sample_page.as_ref().unwrap()).is_empty());
    }

    #[test]
    fn jkh_has_japanese_pages_and_robots_cloaking() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = build_abuse_site(
            &spec(SeoTechnique::JapaneseKeywordHack),
            "h.victim.com",
            &mut rng,
        );
        let page = s.sample_page.unwrap();
        assert_eq!(
            crate::lang::detect(&extract::visible_text_chars(&page)),
            Some(crate::lang::Language::Japanese)
        );
        let robots = s.robots_txt.unwrap();
        assert!(robots.contains("Disallow: /original/"));
        assert!(robots.contains("Sitemap:"));
    }

    #[test]
    fn link_network_links_peers() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = build_abuse_site(&spec(SeoTechnique::LinkNetwork), "h.victim.com", &mut rng);
        let page = s.sample_page.unwrap();
        let hrefs = extract::hrefs(&page);
        assert!(hrefs.iter().any(|h| h.contains("x.victim-a.com")));
        assert!(hrefs.iter().any(|h| h.contains("y.victim-b.org")));
    }

    #[test]
    fn clickjacking_intercepts_clicks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sp = spec(SeoTechnique::ClickJacking);
        sp.topic = AbuseTopic::Adult;
        let s = build_abuse_site(&sp, "h.victim.com", &mut rng);
        assert!(s.index_html.contains("addEventListener('click'"));
        assert!(s.index_html.contains("preventDefault"));
        assert_eq!(s.language, "en");
    }

    #[test]
    fn no_meta_keywords_when_disabled() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sp = spec(SeoTechnique::KeywordStuffing);
        sp.use_meta_keywords = false;
        let s = build_abuse_site(&sp, "h.victim.com", &mut rng);
        assert!(extract::meta_keywords(&s.index_html).is_empty());
        // Content keywords are still present in the body.
        let toks = extract::tokens(&s.index_html);
        assert!(toks
            .iter()
            .any(|t| t == "slot" || t == "judi" || t == "gacor"));
    }

    #[test]
    fn average_page_weight_matches_paper() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = build_abuse_site(&spec(SeoTechnique::DoorwayPages), "h", &mut rng);
        assert_eq!(s.pages.total_bytes / s.pages.count, 52_400);
    }
}
