//! # contentgen — synthetic web content
//!
//! Generates everything the crawler downloads: benign organization sites,
//! parked-domain pages, and the abuse content families the paper catalogues
//! in §5.2 (doorway pages, the Japanese Keyword Hack, private link networks,
//! keyword stuffing, clickjacking), with the Indonesian-gambling and adult
//! keyword vocabularies of Tables 1/5 and the multi-language maintenance
//! shells of Figure 23 / Appendix Figure 29.
//!
//! The companion [`extract`] module holds the HTML feature extractors the
//! detection pipeline (and §6's identifier clustering) runs over downloaded
//! pages: hrefs, meta keywords, generator tags, visible text, embedded
//! IP-literal links, WhatsApp/Telegram contact links, and shortener URLs.

pub mod abuse;
pub mod benign;
pub mod corpus;
pub mod extract;
pub mod html;
pub mod lang;

pub use abuse::{AbuseSpec, AbuseTopic, SeoTechnique};
pub use benign::{benign_site, benign_topical_site, parked_site, BenignKind};
pub use html::HtmlDoc;
pub use lang::Language;
