//! Benign site generation.
//!
//! Legitimate organization sites (per sector), university/government pages,
//! and parked-domain pages. Parked pages matter for the §3.2 false-positive
//! analysis: parking providers rotate commercial content *identically across
//! many domains of the same registrar*, which naive change-detection would
//! flag; the registrar-diversity rule-out must discard them.

use crate::corpus::{sector_words, MAINTENANCE_SHELLS};
use crate::html::{sitemap_xml, HtmlDoc};
use cloudsim::{PageStats, SiteContent, Sitemap};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of benign site to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenignKind {
    /// Corporate site with sector vocabulary.
    Corporate,
    /// University department site.
    University,
    /// Government agency site.
    Government,
    /// A small personal/blog site.
    Blog,
}

/// Build a benign site for an organization.
pub fn benign_site<R: Rng + ?Sized>(
    kind: BenignKind,
    org_name: &str,
    sector: &str,
    host: &str,
    rng: &mut R,
) -> SiteContent {
    let words = sector_words(match kind {
        BenignKind::Corporate | BenignKind::Blog => sector,
        BenignKind::University => "Education",
        BenignKind::Government => "Government",
    });
    let mut doc = HtmlDoc::new(format!("{org_name} — official site")).with_lang("en");
    doc = doc.heading(org_name.to_string());
    for _ in 0..3 {
        let a = words.choose(rng).unwrap();
        let b = words.choose(rng).unwrap();
        doc = doc.paragraph(format!(
            "Welcome to {org_name}. Learn more about our {a} and {b} services for customers worldwide."
        ));
    }
    doc = doc
        .link("/about.html", "About us")
        .link("/contact.html", "Contact")
        .link("/careers.html", "Careers");
    if matches!(kind, BenignKind::Blog) {
        doc = doc.generator("WordPress 5.4");
    }
    let page_count = match kind {
        BenignKind::Corporate => rng.gen_range(20..200),
        BenignKind::University => rng.gen_range(50..500),
        BenignKind::Government => rng.gen_range(30..300),
        BenignKind::Blog => rng.gen_range(5..50),
    };
    let pages: Vec<String> = (0..page_count.min(20))
        .map(|i| format!("page-{i}.html"))
        .collect();
    SiteContent {
        index_html: doc.render(),
        sitemap: Some(Sitemap {
            entries: page_count,
            bytes: 120 + page_count * 80,
            sample_xml: sitemap_xml(host, &pages),
        }),
        pages: PageStats {
            count: page_count,
            total_bytes: page_count * 30_000,
        },
        sample_page: Some(
            HtmlDoc::new(format!("{org_name} — information"))
                .paragraph(format!(
                    "More about the {} work we do.",
                    words.first().unwrap()
                ))
                .render(),
        ),
        robots_txt: Some("User-agent: *\nAllow: /\n".to_string()),
        extra_headers: Vec::new(),
        language: "en".into(),
    }
}

/// A legitimate site whose vocabulary brushes against the abuse lexicon —
/// gaming-news / regulation / app-review pages that use words like "online",
/// "game", "casino" in benign prose. These are what the paper's signature
/// validation exists for: any derived signature generic enough to fire on
/// them gets discarded (§3.2).
pub fn benign_topical_site<R: Rng + ?Sized>(
    org_name: &str,
    host: &str,
    rng: &mut R,
) -> SiteContent {
    let angles = [
        "Regulators debate new rules for online game platforms and player protection",
        "Our review team compares the best online game releases of the season",
        "Consumer watchdog warns about unlicensed casino apps and how to spot them",
        "Industry report: the online game market grows while oversight tightens",
    ];
    let mut doc = HtmlDoc::new(format!("{org_name} — gaming news"))
        .with_lang("en")
        .heading(org_name.to_string());
    for _ in 0..3 {
        doc = doc.paragraph((*angles.choose(rng).unwrap()).to_string());
    }
    doc = doc
        .link("/archive.html", "News archive")
        .link("/about.html", "About us");
    let page_count = rng.gen_range(30..300);
    let pages: Vec<String> = (0..10).map(|i| format!("story-{i}.html")).collect();
    SiteContent {
        index_html: doc.render(),
        sitemap: Some(Sitemap {
            entries: page_count,
            bytes: 120 + page_count * 80,
            sample_xml: sitemap_xml(host, &pages),
        }),
        pages: PageStats {
            count: page_count,
            total_bytes: page_count * 25_000,
        },
        sample_page: Some(
            HtmlDoc::new("Story")
                .paragraph("More coverage of the online game industry and its regulation.")
                .render(),
        ),
        robots_txt: Some("User-agent: *\nAllow: /\n".to_string()),
        extra_headers: Vec::new(),
        language: "en".into(),
    }
}

/// A parked-domain page from a parking provider. `rotation` selects the
/// provider-wide creative; all domains parked with the same provider serve
/// the same rotation at the same time (the benign-change confounder).
pub fn parked_site(provider: &str, rotation: u32) -> SiteContent {
    let creatives = [
        "Premium domains for sale — enquire today about pricing and transfer",
        "This domain may be for sale. Browse related searches and sponsored listings",
        "Buy this domain. The owner has chosen to park it with sponsored results",
        "Domain parked free, courtesy of the registrar. Search related topics",
    ];
    let creative = creatives[(rotation as usize) % creatives.len()];
    let doc = HtmlDoc::new("Domain parked")
        .with_lang("en")
        .paragraph(creative.to_string())
        .paragraph(format!("Parking services provided by {provider}."))
        .link("/listings.html", "Sponsored listings");
    SiteContent {
        index_html: doc.render(),
        sitemap: None,
        pages: PageStats::default(),
        sample_page: None,
        robots_txt: None,
        extra_headers: Vec::new(),
        language: "en".into(),
    }
}

/// The multi-language "under maintenance" shell the hijackers hide behind
/// (§3, Figure 23). Used by the attacker module but defined here with the
/// benign shells because the *text* is indistinguishable from a legitimate
/// maintenance page — that is exactly the detection problem.
pub fn maintenance_shell(lang_tag: &str) -> String {
    let text = MAINTENANCE_SHELLS
        .iter()
        .find(|(l, _)| *l == lang_tag)
        .map(|(_, t)| *t)
        .unwrap_or(MAINTENANCE_SHELLS[0].1);
    HtmlDoc::new("Website maintenance")
        .with_lang(lang_tag)
        .heading("SORRY!")
        .paragraph(text.to_string())
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corporate_site_has_sector_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = benign_site(
            BenignKind::Corporate,
            "Contoso",
            "Financials",
            "www.contoso.com",
            &mut rng,
        );
        assert!(s.index_html.contains("Contoso"));
        let has_sector_word = sector_words("Financials")
            .iter()
            .any(|w| s.index_html.contains(w));
        assert!(has_sector_word);
        assert!(s.sitemap.is_some());
        assert_eq!(s.language, "en");
    }

    #[test]
    fn blog_has_wordpress_generator() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = benign_site(
            BenignKind::Blog,
            "My Blog",
            "Technology",
            "blog.x.com",
            &mut rng,
        );
        assert!(s.index_html.contains("WordPress"));
    }

    #[test]
    fn parked_rotations_differ_but_cycle() {
        let a = parked_site("ParkCo", 0);
        let b = parked_site("ParkCo", 1);
        let c = parked_site("ParkCo", 4);
        assert_ne!(a.index_html, b.index_html);
        assert_eq!(a.index_html, c.index_html); // cycles mod 4
    }

    #[test]
    fn parked_identical_across_domains() {
        // Same provider + rotation => byte-identical content (the registrar
        // confounder the pipeline must handle).
        assert_eq!(
            parked_site("ParkCo", 2).index_html,
            parked_site("ParkCo", 2).index_html
        );
    }

    #[test]
    fn maintenance_shells_localized() {
        let en = maintenance_shell("en");
        let de = maintenance_shell("de");
        let ja = maintenance_shell("ja");
        assert!(en.contains("maintenance"));
        assert!(de.contains("gewartet"));
        assert!(ja.contains("メンテナンス"));
        // Unknown tag falls back to English.
        assert_eq!(
            maintenance_shell("xx"),
            en.replace("lang=\"en\"", "lang=\"xx\"")
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(7);
            benign_site(
                BenignKind::University,
                "State U",
                "Education",
                "u.edu",
                &mut rng,
            )
        };
        assert_eq!(mk().index_html, mk().index_html);
    }
}
