//! HTML feature extraction — the crawler-side inverse of [`crate::html`].
//!
//! The detection pipeline never re-parses with a browser; it extracts
//! exactly the features §3.2 and §6 use: visible text and keywords, the
//! keywords/generator meta tags, all hrefs and script srcs, and the §6
//! identifier classes (WhatsApp phone links, Telegram/social handles, URL
//! shorteners, raw IP-literal links).
//!
//! The extractors are regex-free, single-pass scanners that tolerate
//! malformed markup (hostile input never panics).

use std::net::Ipv4Addr;

/// Pull the content of the first `<tag ...>...</tag>` occurrence.
fn tag_content(html: &str, tag: &str) -> Option<String> {
    let lower = html.to_ascii_lowercase();
    let open = format!("<{tag}");
    let start = lower.find(&open)?;
    let after_open = start + lower[start..].find('>')? + 1;
    let close = format!("</{tag}>");
    let end = after_open + lower[after_open..].find(&close)?;
    Some(html[after_open..end].to_string())
}

/// The `<title>` text.
pub fn title(html: &str) -> Option<String> {
    tag_content(html, "title").map(|t| t.trim().to_string())
}

/// All values of `attr` inside `tag` elements, e.g. (`a`, `href`).
fn attr_values(html: &str, tag: &str, attr: &str) -> Vec<String> {
    let lower = html.to_ascii_lowercase();
    let mut out = Vec::new();
    let open = format!("<{tag}");
    let needle = format!("{attr}=\"");
    let mut pos = 0;
    while let Some(rel) = lower[pos..].find(&open) {
        let tag_start = pos + rel;
        let Some(tag_end_rel) = lower[tag_start..].find('>') else {
            break;
        };
        let tag_end = tag_start + tag_end_rel;
        let tag_text = &lower[tag_start..tag_end];
        if let Some(a) = tag_text.find(&needle) {
            let vstart = tag_start + a + needle.len();
            if let Some(vlen) = html[vstart..].find('"') {
                out.push(html[vstart..vstart + vlen].to_string());
            }
        }
        pos = tag_end + 1;
    }
    out
}

/// All `<a href>` and `<link href>` values.
pub fn hrefs(html: &str) -> Vec<String> {
    let mut out = attr_values(html, "a ", "href");
    out.extend(attr_values(html, "link ", "href"));
    out
}

/// All `<script src>` values.
pub fn script_srcs(html: &str) -> Vec<String> {
    attr_values(html, "script", "src")
}

/// The value of a `<meta name="...">` tag's content attribute.
pub fn meta(html: &str, name: &str) -> Option<String> {
    let lower = html.to_ascii_lowercase();
    let needle = format!("name=\"{}\"", name.to_lowercase());
    let pos = lower.find(&needle)?;
    // Search for content="..." within the same tag.
    let tag_end = lower[pos..].find('>')? + pos;
    let tag_start = lower[..pos].rfind('<')?;
    let tag = &html[tag_start..tag_end];
    let c = tag.to_ascii_lowercase().find("content=\"")?;
    let vstart = tag_start + c + "content=\"".len();
    let vlen = html[vstart..].find('"')?;
    Some(html[vstart..vstart + vlen].to_string())
}

/// Comma-separated keywords from the keywords meta tag, lowercased.
pub fn meta_keywords(html: &str) -> Vec<String> {
    meta(html, "keywords")
        .map(|v| {
            v.split(',')
                .map(|k| k.trim().to_lowercase())
                .filter(|k| !k.is_empty())
                .collect()
        })
        .unwrap_or_default()
}

/// The generator meta tag (WordPress fingerprinting in §6).
pub fn generator(html: &str) -> Option<String> {
    meta(html, "generator")
}

/// Lowercased word tokens of the visible text.
pub fn tokens(html: &str) -> Vec<String> {
    visible_text_chars(html)
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() >= 2)
        .map(str::to_string)
        .collect()
}

/// ASCII-case-insensitive byte search; `needle` must be pure ASCII. The
/// returned index is always a char boundary because the needle starts with
/// an ASCII byte that can only match an ASCII byte in the haystack.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    debug_assert!(needle.is_ascii());
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

/// Char-correct visible text (UTF-8 safe).
pub fn visible_text_chars(html: &str) -> String {
    let mut out = String::with_capacity(html.len() / 2);
    let mut in_tag = false;
    let mut rest = html;
    loop {
        let lower_starts = |s: &str, p: &str| {
            s.len() >= p.len() && s.as_bytes()[..p.len()].eq_ignore_ascii_case(p.as_bytes())
        };
        if rest.is_empty() {
            break;
        }
        if lower_starts(rest, "<script") {
            if let Some(idx) = find_ci(rest, "</script>") {
                rest = &rest[idx + "</script>".len()..];
                continue;
            }
            break;
        }
        if lower_starts(rest, "<style") {
            if let Some(idx) = find_ci(rest, "</style>") {
                rest = &rest[idx + "</style>".len()..];
                continue;
            }
            break;
        }
        let mut chars = rest.char_indices();
        let (_, c) = chars.next().unwrap();
        let next_idx = chars.next().map(|(i, _)| i).unwrap_or(rest.len());
        match c {
            '<' => {
                in_tag = true;
            }
            '>' => {
                in_tag = false;
                out.push(' ');
            }
            _ if !in_tag => out.push(c),
            _ => {}
        }
        rest = &rest[next_idx..];
    }
    out
}

/// §6 identifier classes extracted from a page.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Identifiers {
    /// Phone numbers from WhatsApp links (`wa.me/<digits>`), with country
    /// code prefix preserved.
    pub phones: Vec<String>,
    /// Telegram/social handles (`t.me/<handle>`, `instagram.com/<h>`, …).
    pub social: Vec<String>,
    /// URL-shortener links.
    pub shortlinks: Vec<String>,
    /// Raw IPv4 literals in hrefs or script srcs.
    pub ips: Vec<Ipv4Addr>,
}

impl Identifiers {
    pub fn is_empty(&self) -> bool {
        self.phones.is_empty()
            && self.social.is_empty()
            && self.shortlinks.is_empty()
            && self.ips.is_empty()
    }

    /// All identifiers as tagged strings (for clustering keys).
    pub fn tagged(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.extend(self.phones.iter().map(|p| format!("phone:{p}")));
        out.extend(self.social.iter().map(|s| format!("social:{s}")));
        out.extend(self.shortlinks.iter().map(|s| format!("short:{s}")));
        out.extend(self.ips.iter().map(|ip| format!("ip:{ip}")));
        out.sort();
        out.dedup();
        out
    }
}

const SOCIAL_HOSTS: &[&str] = &[
    "t.me",
    "telegram.me",
    "instagram.com",
    "facebook.com",
    "twitter.com",
];

const SHORTENER_HOSTS: &[&str] = &["bit.ly", "cutt.ly", "s.id", "tinyurl.com", "linktr.ee"];

/// Extract §6 identifiers from a page.
pub fn identifiers(html: &str) -> Identifiers {
    let mut ids = Identifiers::default();
    let mut urls = hrefs(html);
    urls.extend(script_srcs(html));
    for url in urls {
        let stripped = url
            .trim_start_matches("https://")
            .trim_start_matches("http://")
            .trim_start_matches("www.");
        let (host, path) = match stripped.split_once('/') {
            Some((h, p)) => (h, p),
            None => (stripped, ""),
        };
        if host == "wa.me" || host == "api.whatsapp.com" {
            let digits: String = path
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '+')
                .collect();
            if digits.len() >= 8 {
                ids.phones.push(digits);
            }
        } else if SOCIAL_HOSTS.contains(&host) {
            let handle: String = path
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.')
                .collect();
            if !handle.is_empty() {
                ids.social.push(format!("{host}/{handle}"));
            }
        } else if SHORTENER_HOSTS.contains(&host) {
            let code: String = path
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !code.is_empty() {
                ids.shortlinks.push(format!("{host}/{code}"));
            }
        } else if let Ok(ip) = host.split(':').next().unwrap_or("").parse::<Ipv4Addr>() {
            ids.ips.push(ip);
        }
    }
    for v in [&mut ids.phones, &mut ids.social, &mut ids.shortlinks] {
        v.sort();
        v.dedup();
    }
    ids.ips.sort();
    ids.ips.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<!DOCTYPE html><html><head>
        <title>SLOT GACOR</title>
        <meta name="keywords" content="slot, Judi, situs ">
        <meta name="generator" content="WordPress 5.8">
        <script type="text/javascript" src="http://203.0.113.7/js/popunder.js"></script>
        </head><body>
        <h1>daftar situs judi slot online terpercaya</h1>
        <p>hubungi kami</p>
        <a href="https://wa.me/6281234567890">WhatsApp</a>
        <a href="https://t.me/slotgacor88">Telegram</a>
        <a href="https://bit.ly/3xyzAb">Promo</a>
        <a href="http://198.51.100.9/land?ref=xyz">Masuk</a>
        <script>var x = 1;</script>
        </body></html>"#;

    #[test]
    fn title_and_meta() {
        assert_eq!(title(PAGE).unwrap(), "SLOT GACOR");
        assert_eq!(meta_keywords(PAGE), vec!["slot", "judi", "situs"]);
        assert_eq!(generator(PAGE).unwrap(), "WordPress 5.8");
        assert_eq!(meta(PAGE, "missing"), None);
    }

    #[test]
    fn href_and_script_extraction() {
        let h = hrefs(PAGE);
        assert!(h.iter().any(|u| u.contains("wa.me")));
        assert!(h.iter().any(|u| u.contains("bit.ly")));
        assert_eq!(script_srcs(PAGE), vec!["http://203.0.113.7/js/popunder.js"]);
    }

    #[test]
    fn visible_text_skips_scripts() {
        let t = visible_text_chars(PAGE);
        assert!(t.contains("daftar situs judi"));
        assert!(!t.contains("var x"));
        assert!(!t.contains("popunder"));
    }

    #[test]
    fn tokens_lowercased() {
        let toks = tokens(PAGE);
        assert!(toks.contains(&"slot".to_string()));
        assert!(toks.contains(&"gacor".to_string()));
        assert!(toks.contains(&"terpercaya".to_string()));
    }

    #[test]
    fn identifier_classes() {
        let ids = identifiers(PAGE);
        assert_eq!(ids.phones, vec!["6281234567890"]);
        assert_eq!(ids.social, vec!["t.me/slotgacor88"]);
        assert_eq!(ids.shortlinks, vec!["bit.ly/3xyzAb"]);
        assert_eq!(
            ids.ips,
            vec![
                "198.51.100.9".parse::<Ipv4Addr>().unwrap(),
                "203.0.113.7".parse().unwrap()
            ]
        );
        let tagged = ids.tagged();
        assert_eq!(tagged.len(), 5);
        assert!(tagged[0].starts_with("ip:"));
    }

    #[test]
    fn tolerates_malformed_html() {
        for bad in [
            "",
            "<a href=\"unterminated",
            "<title>no close",
            "<script>never closed",
            "<<<>>><a><a href=\"\">",
        ] {
            let _ = title(bad);
            let _ = hrefs(bad);
            let _ = identifiers(bad);
            let _ = visible_text_chars(bad);
            let _ = tokens(bad);
        }
    }

    #[test]
    fn no_identifiers_on_benign_page() {
        let benign = "<html><body><a href=\"https://example.com/about\">About</a></body></html>";
        assert!(identifiers(benign).is_empty());
    }
}
