//! Word lists and phrase corpora.
//!
//! The abuse vocabularies reproduce the paper's Tables 1 and 5 (Indonesian
//! gambling dominates, adult content second) and the Appendix Figure 29
//! fragments (maintenance shells in many languages, the "Comming soon" typo
//! signature, popunder script references).

/// Table 5's meta-keyword vocabulary, ordered roughly by paper frequency.
pub const GAMBLING_KEYWORDS: &[&str] = &[
    "slot",
    "online",
    "judi",
    "situs",
    "joker123",
    "terpercaya",
    "gacor",
    "agen",
    "daftar",
    "game",
    "bola",
    "pulsa",
    "sbobet",
    "slotxo",
    "dominoqq",
    "jili",
    "xinslot",
    "pkv",
];

/// Adult-content keywords (Table 1 rows 4/6).
pub const ADULT_KEYWORDS: &[&str] = &[
    "sex", "porn", "adult", "videos", "photos", "xxx", "onlyfuns",
];

/// Pharmaceutical spam keywords (a minor topic in Figure 3).
pub const PHARMA_KEYWORDS: &[&str] = &[
    "viagra",
    "cialis",
    "pharmacy",
    "pills",
    "prescription",
    "cheap",
];

/// Counterfeit-shopping keywords.
pub const SHOPPING_KEYWORDS: &[&str] = &[
    "replica", "outlet", "discount", "handbags", "sneakers", "luxury", "sale",
];

/// Japanese fragments for the Japanese Keyword Hack pages.
pub const JAPANESE_FRAGMENTS: &[&str] = &[
    "ページディレクトリ",
    "日本の無料プログ",
    "全著作権所有",
    "現在作成中です",
    "脱出 ゲーム 攻略",
    "著作権",
    "当社のウェブサイト",
];

/// Thai gambling fragments (Figure 29).
pub const THAI_FRAGMENTS: &[&str] = &["สล็อตออนไลน์", "การพนัน", "บาคาร่าออนไลน์", "สล็อตแตกง่าย"];

/// Maintenance-shell phrases per language — the error pages that made the
/// authors notice the hijacks in the first place (§3, Figure 23).
pub const MAINTENANCE_SHELLS: &[(&str, &str)] = &[
    (
        "en",
        "Our website is currently undergoing scheduled maintenance. \
         We're working to restore all services as soon as possible. Please check back soon.",
    ),
    ("de", "Unsere Website wird derzeit planmäßig gewartet."),
    ("ja", "当社のウェブサイトは現在メンテナンス中です"),
    ("ar", "يخضع موقعنا حاليًا للصيانة المجدولة"),
    (
        "ru",
        "Наш сайт в настоящее время находится на плановом обслуживании",
    ),
];

/// The famous typo signature (signature example 1 in §3.2).
pub const COMMING_SOON: &str = "Comming soon ...";

/// Attacker script names seen in the wild (signature example 3).
pub const POPUNDER_SCRIPTS: &[&str] = &["popunder.js", "pops.js", "push.js"];

/// Benign vocabulary per organization sector (Figure 12's sector axis).
pub fn sector_words(sector: &str) -> &'static [&'static str] {
    match sector {
        "Industrials" => &[
            "manufacturing",
            "engineering",
            "equipment",
            "industrial",
            "supply",
            "quality",
        ],
        "Energy" => &[
            "energy",
            "power",
            "renewable",
            "grid",
            "oil",
            "sustainability",
        ],
        "Motor Vehicles" => &[
            "vehicles",
            "automotive",
            "dealers",
            "models",
            "electric",
            "parts",
        ],
        "Financials" => &[
            "banking",
            "investment",
            "insurance",
            "accounts",
            "credit",
            "wealth",
        ],
        "Technology" => &[
            "software",
            "cloud",
            "platform",
            "solutions",
            "digital",
            "data",
        ],
        "Healthcare" => &[
            "health", "patients", "medical", "clinical", "care", "hospital",
        ],
        "Retail" => &[
            "stores",
            "shopping",
            "brands",
            "customers",
            "delivery",
            "catalog",
        ],
        "Telecommunications" => &[
            "network",
            "mobile",
            "broadband",
            "coverage",
            "plans",
            "fiber",
        ],
        "Media" => &[
            "news",
            "entertainment",
            "streaming",
            "content",
            "studios",
            "audience",
        ],
        "Education" => &[
            "students",
            "research",
            "faculty",
            "admissions",
            "campus",
            "academics",
        ],
        "Government" => &[
            "citizens",
            "public",
            "department",
            "policy",
            "permits",
            "regulations",
        ],
        "Food & Beverage" => &[
            "food",
            "beverage",
            "recipes",
            "nutrition",
            "restaurants",
            "fresh",
        ],
        "Aerospace" => &[
            "aerospace",
            "defense",
            "aircraft",
            "systems",
            "avionics",
            "flight",
        ],
        "Chemicals" => &[
            "chemicals",
            "materials",
            "polymers",
            "coatings",
            "research",
            "safety",
        ],
        _ => &["company", "about", "contact", "careers", "news", "services"],
    }
}

/// All sectors used by the world generator.
pub const SECTORS: &[&str] = &[
    "Industrials",
    "Energy",
    "Motor Vehicles",
    "Financials",
    "Technology",
    "Healthcare",
    "Retail",
    "Telecommunications",
    "Media",
    "Education",
    "Government",
    "Food & Beverage",
    "Aerospace",
    "Chemicals",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_nonempty_and_lowercase() {
        for w in GAMBLING_KEYWORDS
            .iter()
            .chain(ADULT_KEYWORDS)
            .chain(PHARMA_KEYWORDS)
            .chain(SHOPPING_KEYWORDS)
        {
            assert!(!w.is_empty());
            assert_eq!(*w, w.to_lowercase());
        }
    }

    #[test]
    fn every_sector_has_words() {
        for s in SECTORS {
            assert!(sector_words(s).len() >= 5, "{s}");
        }
        // Fallback.
        assert!(!sector_words("Unknown Sector").is_empty());
    }

    #[test]
    fn table5_top_keywords_present() {
        // The paper's top meta keywords must be representable.
        for k in ["slot", "online", "judi", "situs", "gacor", "daftar"] {
            assert!(GAMBLING_KEYWORDS.contains(&k), "{k}");
        }
    }
}
