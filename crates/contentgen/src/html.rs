//! Minimal HTML document builder.
//!
//! Produces the HTML artifacts the crawler stores: title, meta tags
//! (keywords — Table 5's stuffing vector; generator — §6's WordPress
//! fingerprint; description), body text, hyperlinks, and script includes.

use std::fmt::Write as _;

/// An HTML document under construction.
#[derive(Debug, Clone, Default)]
pub struct HtmlDoc {
    pub title: String,
    pub lang: Option<String>,
    pub meta_keywords: Vec<String>,
    pub meta_description: Option<String>,
    pub meta_generator: Option<String>,
    pub headings: Vec<String>,
    pub paragraphs: Vec<String>,
    /// `(href, anchor_text)` pairs.
    pub links: Vec<(String, String)>,
    /// External script srcs.
    pub scripts: Vec<String>,
    /// Inline script bodies.
    pub inline_scripts: Vec<String>,
}

impl HtmlDoc {
    pub fn new(title: impl Into<String>) -> Self {
        HtmlDoc {
            title: title.into(),
            ..Default::default()
        }
    }

    pub fn with_lang(mut self, lang: &str) -> Self {
        self.lang = Some(lang.to_string());
        self
    }

    pub fn keyword(mut self, kw: &str) -> Self {
        self.meta_keywords.push(kw.to_string());
        self
    }

    pub fn paragraph(mut self, text: impl Into<String>) -> Self {
        self.paragraphs.push(text.into());
        self
    }

    pub fn heading(mut self, text: impl Into<String>) -> Self {
        self.headings.push(text.into());
        self
    }

    pub fn link(mut self, href: impl Into<String>, text: impl Into<String>) -> Self {
        self.links.push((href.into(), text.into()));
        self
    }

    pub fn script(mut self, src: impl Into<String>) -> Self {
        self.scripts.push(src.into());
        self
    }

    pub fn inline_script(mut self, body: impl Into<String>) -> Self {
        self.inline_scripts.push(body.into());
        self
    }

    pub fn generator(mut self, g: impl Into<String>) -> Self {
        self.meta_generator = Some(g.into());
        self
    }

    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.meta_description = Some(d.into());
        self
    }

    /// Render to an HTML string.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let lang_attr = self
            .lang
            .as_ref()
            .map(|l| format!(" lang=\"{l}\""))
            .unwrap_or_default();
        let _ = write!(out, "<!DOCTYPE html><html{lang_attr}><head>");
        let _ = write!(out, "<title>{}</title>", escape(&self.title));
        let _ = write!(
            out,
            "<meta charset=\"utf-8\"><meta name=\"viewport\" content=\"width=device-width\">"
        );
        if !self.meta_keywords.is_empty() {
            let _ = write!(
                out,
                "<meta name=\"keywords\" content=\"{}\">",
                escape(&self.meta_keywords.join(", "))
            );
        }
        if let Some(d) = &self.meta_description {
            let _ = write!(out, "<meta name=\"description\" content=\"{}\">", escape(d));
        }
        if let Some(g) = &self.meta_generator {
            let _ = write!(out, "<meta name=\"generator\" content=\"{}\">", escape(g));
        }
        for s in &self.scripts {
            let _ = write!(
                out,
                "<script type=\"text/javascript\" src=\"{}\"></script>",
                escape(s)
            );
        }
        let _ = write!(out, "</head><body>");
        for h in &self.headings {
            let _ = write!(out, "<h1>{}</h1>", escape(h));
        }
        for p in &self.paragraphs {
            let _ = write!(out, "<p>{}</p>", escape(p));
        }
        if !self.links.is_empty() {
            let _ = write!(out, "<ul>");
            for (href, text) in &self.links {
                let _ = write!(
                    out,
                    "<li><a href=\"{}\">{}</a></li>",
                    escape(href),
                    escape(text)
                );
            }
            let _ = write!(out, "</ul>");
        }
        for s in &self.inline_scripts {
            let _ = write!(out, "<script type=\"text/javascript\">{s}</script>");
        }
        let _ = write!(out, "</body></html>");
        out
    }
}

/// Minimal attribute/text escaping.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Build a sitemap XML sample for `host` with `n` entries (capped).
pub fn sitemap_xml(host: &str, page_names: &[String]) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<urlset>\n");
    for p in page_names {
        let _ = writeln!(out, "  <url><loc>https://{host}/{p}</loc></url>");
    }
    out.push_str("</urlset>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_parts() {
        let html = HtmlDoc::new("Title & Co")
            .with_lang("id")
            .keyword("slot")
            .keyword("judi")
            .description("daftar situs")
            .generator("WordPress 5.8")
            .heading("Heading")
            .paragraph("Body text")
            .link("https://wa.me/6281234", "contact")
            .script("https://cdn.evil.example/popunder.js")
            .inline_script("document.cookie = 'x=1'")
            .render();
        assert!(html.contains("<title>Title &amp; Co</title>"));
        assert!(html.contains("lang=\"id\""));
        assert!(html.contains("content=\"slot, judi\""));
        assert!(html.contains("generator"));
        assert!(html.contains("wa.me/6281234"));
        assert!(html.contains("popunder.js"));
        assert!(html.contains("document.cookie"));
    }

    #[test]
    fn escaping() {
        let html = HtmlDoc::new("<script>").paragraph("a < b & c").render();
        assert!(html.contains("<title>&lt;script&gt;</title>"));
        assert!(html.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn sitemap_sample() {
        let xml = sitemap_xml("x.example.com", &["a.html".into(), "b.html".into()]);
        assert!(xml.contains("<loc>https://x.example.com/a.html</loc>"));
        assert_eq!(xml.matches("<url>").count(), 2);
    }
}
