//! Property tests: extractor totality on hostile input, builder/extractor
//! roundtrips, and language-detection stability.

use contentgen::extract;
use contentgen::html::HtmlDoc;
use contentgen::lang;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every extractor is total on arbitrary (including multi-byte) input.
    #[test]
    fn extractors_total(s in "\\PC{0,400}") {
        let _ = extract::title(&s);
        let _ = extract::hrefs(&s);
        let _ = extract::script_srcs(&s);
        let _ = extract::meta_keywords(&s);
        let _ = extract::generator(&s);
        let _ = extract::visible_text_chars(&s);
        let _ = extract::tokens(&s);
        let _ = extract::identifiers(&s);
        let _ = lang::detect(&s);
    }

    /// Extractors survive byte-noise wrapped in angle brackets.
    #[test]
    fn extractors_total_on_taggy_garbage(parts in proptest::collection::vec("[<>\"a-z= /]{0,20}", 0..30)) {
        let s: String = parts.concat();
        let _ = extract::title(&s);
        let _ = extract::hrefs(&s);
        let _ = extract::identifiers(&s);
        let _ = extract::visible_text_chars(&s);
    }

    /// What the builder writes, the extractor reads back.
    #[test]
    fn builder_extractor_roundtrip(
        title in "[a-zA-Z ]{1,30}",
        kws in proptest::collection::vec("[a-z]{2,10}", 1..6),
        hrefs in proptest::collection::vec("[a-z0-9./:-]{5,30}", 0..5),
    ) {
        let mut doc = HtmlDoc::new(title.clone());
        for k in &kws {
            doc = doc.keyword(k);
        }
        for h in &hrefs {
            doc = doc.link(h.clone(), "x");
        }
        let html = doc.render();
        prop_assert_eq!(extract::title(&html).unwrap(), title.trim());
        let mut got = extract::meta_keywords(&html);
        let mut want: Vec<String> = kws.clone();
        got.sort(); got.dedup();
        want.sort(); want.dedup();
        prop_assert_eq!(got, want);
        let got_hrefs = extract::hrefs(&html);
        for h in &hrefs {
            prop_assert!(got_hrefs.contains(h), "missing href {}", h);
        }
    }

    /// Language detection is deterministic.
    #[test]
    fn lang_detect_deterministic(s in "\\PC{0,200}") {
        prop_assert_eq!(lang::detect(&s), lang::detect(&s));
    }
}
