//! Property-based tests for the global label interner (256 cases each):
//! dense-id bijection, intern-order determinism under sharded interning,
//! `Name` round-trips through ids (including 63-octet and punycode-shaped
//! "unicode-adjacent" labels), and id stability across a storelog-style
//! record/resume cycle.
//!
//! The interner itself is generic over strings — only `Name` construction
//! restricts the alphabet — so the interner-level properties run on
//! arbitrary printable text (multi-byte characters included) while the
//! `Name`-level properties stick to the RFC 1035 label charset.

use dns::{Interner, Name};
use proptest::prelude::*;
use std::collections::HashMap;
use storelog::intern::InternTable;

/// Arbitrary interner input: printable strings including multi-byte
/// characters (the `\PC` universe), 1–20 chars.
fn arb_free_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("\\PC{1,20}").unwrap()
}

/// Valid DNS labels, biased toward the edges: ordinary labels up to the
/// 63-octet limit, punycode-shaped `xn--` labels (how real unicode names
/// reach the DNS), underscore service labels, and the exact-63-octet case.
fn arb_dns_label() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,62}").unwrap(),
        proptest::string::string_regex("xn--[a-z0-9]{1,10}-[a-z0-9]{1,8}").unwrap(),
        proptest::string::string_regex("_[a-z]{1,12}").unwrap(),
        Just("a".repeat(63)),
        Just(format!("x{}9", "-".repeat(61))),
    ]
}

/// Build a `Name` from as many of `labels` as fit the 255-octet wire limit.
fn name_from(labels: &[String]) -> Name {
    let mut kept: Vec<&String> = Vec::new();
    let mut wire = 1usize; // root byte
    for l in labels {
        if wire + 1 + l.len() > 255 {
            break;
        }
        wire += 1 + l.len();
        kept.push(l);
    }
    Name::from_labels(kept).expect("validated labels within limits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dense-id bijection: ids are assigned 0,1,2,… in first-sight order,
    /// distinct strings get distinct ids, equal strings always get the same
    /// id, and every id resolves back to exactly its string.
    #[test]
    fn dense_id_bijection(labels in proptest::collection::vec(arb_free_label(), 1..50)) {
        let t = Interner::new();
        let mut first_ids: HashMap<&str, u32> = HashMap::new();
        for label in &labels {
            let id = t.intern(label);
            match first_ids.get(label.as_str()) {
                // Re-intern: the id must be the one first sight assigned.
                Some(&prev) => prop_assert_eq!(id.index(), prev),
                // First sight: ids are handed out densely, in order.
                None => {
                    prop_assert_eq!(id.index() as usize, first_ids.len());
                    first_ids.insert(label, id.index());
                }
            }
            prop_assert_eq!(t.get(id), label.as_str());
            prop_assert_eq!(t.lookup(label), Some(id));
        }
        prop_assert_eq!(t.len(), first_ids.len());
        // Bijection: no two distinct strings share an id.
        let mut by_id: HashMap<u32, &str> = HashMap::new();
        for (s, id) in &first_ids {
            prop_assert!(by_id.insert(*id, s).is_none(), "id {} assigned twice", id);
        }
    }

    /// Determinism under sharded interning: the crawl's shard workers
    /// admit labels in a schedule-dependent interleaving. The contract is
    /// two-sided — (a) the *same* admission sequence always produces the
    /// same ids (what replay relies on), and (b) *any* interleaving of the
    /// same label population produces the same vocabulary with every label
    /// resolving identically (why ids may never escape into results).
    #[test]
    fn sharded_interning_is_deterministic(
        labels in proptest::collection::vec(arb_free_label(), 1..60),
        shards in 1usize..5,
    ) {
        // Shard the stream by a content hash, then admit round-robin
        // across shards — a deterministic stand-in for a thread schedule.
        let mut per_shard: Vec<Vec<&String>> = vec![Vec::new(); shards];
        for l in &labels {
            let h = l.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
            per_shard[(h % shards as u64) as usize].push(l);
        }
        let sharded_order: Vec<&String> = {
            let mut out = Vec::new();
            let mut cursors = vec![0usize; shards];
            loop {
                let mut progressed = false;
                for (s, cursor) in cursors.iter_mut().enumerate() {
                    if let Some(l) = per_shard[s].get(*cursor) {
                        out.push(*l);
                        *cursor += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            out
        };

        // (a) Same sequence, fresh tables: identical ids.
        let a = Interner::new();
        let b = Interner::new();
        for l in &sharded_order {
            prop_assert_eq!(a.intern(l).index(), b.intern(l).index());
        }

        // (b) Different interleavings (arrival order vs sharded order):
        // same vocabulary, and every label resolves to itself in both.
        let arrival = Interner::new();
        for l in &labels {
            let id = arrival.intern(l);
            prop_assert_eq!(arrival.get(id), l.as_str());
        }
        prop_assert_eq!(arrival.len(), a.len());
        for l in &labels {
            let ia = arrival.lookup(l).expect("interned on arrival");
            let is = a.lookup(l).expect("interned via shards");
            prop_assert_eq!(arrival.get(ia), a.get(is));
        }
    }

    /// `Name` round-trips through its interned ids: rebuilding from the id
    /// strings, and re-parsing the display form, reproduce an equal name —
    /// at the 63-octet label edge and for punycode-shaped labels too.
    #[test]
    fn name_roundtrip_through_ids(
        labels in proptest::collection::vec(arb_dns_label(), 1..6),
    ) {
        let name = name_from(&labels);
        // Through the ids.
        let rebuilt = Name::from_labels(name.labels().iter().map(|id| id.as_str()))
            .expect("labels came from a valid name");
        prop_assert_eq!(&rebuilt, &name);
        // Through the presentation form.
        let reparsed: Name = name.to_string().parse().expect("display form reparses");
        prop_assert_eq!(&reparsed, &name);
        // Ids are the global interner's: equal labels share ids across
        // independently constructed names.
        for (i, id) in name.labels().iter().enumerate() {
            prop_assert_eq!(rebuilt.labels()[i], *id);
            prop_assert_eq!(id.as_str().len() <= 63, true);
        }
    }

    /// Name ordering over interned ids must equal lexicographic ordering
    /// of the label strings — the canonical order every pipeline pass
    /// sorts by, unchanged from `Arc<[String]>` storage.
    #[test]
    fn name_order_matches_string_order(
        a in proptest::collection::vec(arb_dns_label(), 1..5),
        b in proptest::collection::vec(arb_dns_label(), 1..5),
    ) {
        let na = name_from(&a);
        let nb = name_from(&b);
        let sa: Vec<&str> = na.labels().iter().map(|l| l.as_str()).collect();
        let sb: Vec<&str> = nb.labels().iter().map(|l| l.as_str()).collect();
        prop_assert_eq!(na.cmp(&nb), sa.cmp(&sb));
        prop_assert_eq!(na == nb, sa == sb);
    }

    /// Id stability across a storelog-style resume: replaying the recorded
    /// label stream into a fresh table reassigns exactly the recorded ids
    /// (dense, first-sight order), and the global-interner design agrees
    /// with `storelog::intern::InternTable` — the streaming-intern scheme
    /// it reuses — id for id.
    #[test]
    fn id_stability_across_storelog_resume(
        labels in proptest::collection::vec(arb_free_label(), 1..60),
    ) {
        // Record: a storelog intern table sees the stream once.
        let mut recorded = InternTable::new();
        let mut sink = Vec::new();
        let record_ids: Vec<u32> = labels
            .iter()
            .map(|l| {
                recorded.put_ref(l, &mut sink);
                recorded.lookup(l).expect("just interned")
            })
            .collect();

        // Resume: a fresh process replays the same stream.
        let mut resumed = InternTable::new();
        let replay_ids: Vec<u32> = labels
            .iter()
            .map(|l| {
                resumed.put_ref(l, &mut sink);
                resumed.lookup(l).expect("just interned")
            })
            .collect();
        prop_assert_eq!(&record_ids, &replay_ids);

        // The global-interner design assigns the same dense ids for the
        // same stream, and resolution agrees with the recorded table.
        let fresh = Interner::new();
        for (l, &recorded_id) in labels.iter().zip(&record_ids) {
            let id = fresh.intern(l);
            prop_assert_eq!(id.index(), recorded_id);
            prop_assert_eq!(fresh.get(id), recorded.get(recorded_id));
        }
        prop_assert_eq!(fresh.len(), resumed.len());
    }
}
