//! Property-based tests for the DNS substrate: wire-format roundtrips over
//! arbitrary messages, name algebra invariants, and decoder robustness
//! against arbitrary byte soup.

use dns::wire::{decode, encode};
use dns::{
    CaaRecord, Header, Message, Name, Opcode, Question, Rcode, RecordData, RecordType,
    ResourceRecord, Soa,
};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_][a-z0-9_-]{0,14}").unwrap()
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_map(|labels| Name::from_labels(labels).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| RecordData::Aaaa(Ipv6Addr::from(o))),
        arb_name().prop_map(RecordData::Cname),
        arb_name().prop_map(RecordData::Ns),
        (arb_name(), arb_name(), any::<u32>(), any::<u32>()).prop_map(
            |(mname, rname, serial, refresh)| RecordData::Soa(Soa {
                mname,
                rname,
                serial,
                refresh,
                retry: 600,
                expire: 86400,
                minimum: 300,
            })
        ),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RecordData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 1..4).prop_map(RecordData::Txt),
        ("[a-z]{1,10}", "[ -~]{0,30}", any::<bool>()).prop_map(|(tag, value, crit)| {
            RecordData::Caa(CaaRecord {
                flags: if crit { 0x80 } else { 0 },
                tag,
                value,
            })
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, data)| ResourceRecord::new(name, ttl, data))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(arb_name(), 1..3),
        proptest::collection::vec(arb_record(), 0..6),
        proptest::collection::vec(arb_record(), 0..3),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(id, qr, rd, qnames, answers, authority, additional)| Message {
                header: Header {
                    id,
                    qr,
                    opcode: Opcode::Query,
                    aa: qr,
                    tc: false,
                    rd,
                    ra: qr,
                    rcode: Rcode::NoError,
                },
                questions: qnames
                    .into_iter()
                    .map(|n| Question::new(n, RecordType::A))
                    .collect(),
                answers,
                authority,
                additional,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on arbitrary well-formed messages.
    #[test]
    fn wire_roundtrip(msg in arb_message()) {
        let wire = encode(&msg);
        let back = decode(&wire).expect("decode of own encoding");
        prop_assert_eq!(back, msg);
    }

    /// The decoder never panics and never loops on arbitrary bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Flipping any single byte of a valid message never panics the decoder.
    #[test]
    fn decoder_survives_single_byte_corruption(
        msg in arb_message(),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let wire = encode(&msg).to_vec();
        let mut corrupted = wire.clone();
        let i = idx.index(corrupted.len());
        corrupted[i] ^= xor;
        let _ = decode(&corrupted);
    }

    /// Compression never changes semantics: every name decoded from the wire
    /// matches its source name (spot-checked via questions).
    #[test]
    fn names_survive_compression(names in proptest::collection::vec(arb_name(), 1..8)) {
        let mut msg = Message::query(1, names[0].clone(), RecordType::A);
        for n in &names {
            msg.questions.push(Question::new(n.clone(), RecordType::A));
            // Repeat names so the compressor has targets to point at.
            msg.answers.push(ResourceRecord::new(
                n.clone(),
                60,
                RecordData::Cname(names[0].clone()),
            ));
        }
        let back = decode(&encode(&msg)).unwrap();
        prop_assert_eq!(back.questions.len(), msg.questions.len());
        for (a, b) in back.questions.iter().zip(msg.questions.iter()) {
            prop_assert_eq!(&a.name, &b.name);
        }
    }

    /// Name parse/display roundtrip and suffix algebra.
    #[test]
    fn name_parse_display_roundtrip(name in arb_name()) {
        let s = name.to_string();
        let back: Name = s.parse().unwrap();
        prop_assert_eq!(&back, &name);
        // every name ends with its own parent chain
        let mut p = name.parent();
        while let Some(anc) = p {
            prop_assert!(name.ends_with(&anc));
            if anc.label_count() > 0 {
                prop_assert!(name.is_subdomain_of(&anc));
            }
            p = anc.parent();
        }
    }

    /// child() then parent() is the identity.
    #[test]
    fn child_parent_inverse(name in arb_name(), label in arb_label()) {
        if let Ok(c) = name.child(&label) {
            prop_assert_eq!(c.parent().unwrap(), name);
        }
    }
}
