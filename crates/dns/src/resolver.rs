//! Stub resolver with CNAME chasing and a TTL cache.
//!
//! [`Resolver::resolve_a`] is the exact primitive Algorithm 1 of the paper
//! consumes: given an FQDN it returns the full CNAME chain *and* the terminal
//! A records (`A_results, CNAME_results ← DNS_A_query(fqdn)`), or the
//! negative outcome (NXDOMAIN / NODATA / SERVFAIL). The resolver queries an
//! [`Authority`] through the [`Transport`] trait so tests can interpose
//! failures, and caches positive and negative answers with day-granularity
//! TTLs driven by simulated time.

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::record::{RecordData, RecordType, ResourceRecord};
use crate::server::Authority;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Where queries go. The production implementation is [`Authority`]; tests
/// can inject flaky or adversarial transports.
///
/// `Sync` is a supertrait: the shard-parallel crawl executor resolves
/// against one shared world from many threads, so every transport must be
/// safely shareable (all implementations here are plain data or lock their
/// interior state).
pub trait Transport: Sync {
    fn exchange(&self, query: &Message) -> Message;

    /// Lossy-aware exchange: `None` means the query was dropped on the wire
    /// — no response ever arrives and the caller's retry/timeout budget
    /// decides what happens next. The default never drops, so existing
    /// transports are lossless unless they opt in.
    fn try_exchange(&self, query: &Message) -> Option<Message> {
        Some(self.exchange(query))
    }
}

impl Transport for Authority {
    fn exchange(&self, query: &Message) -> Message {
        self.answer(query)
    }
}

impl<T: Transport + Send + ?Sized> Transport for Arc<T> {
    fn exchange(&self, query: &Message) -> Message {
        (**self).exchange(query)
    }

    fn try_exchange(&self, query: &Message) -> Option<Message> {
        (**self).try_exchange(query)
    }
}

/// Outcome of resolving an FQDN's A record, the unit of observation for the
/// collection and monitoring pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionOutcome {
    /// Final response code of the chain.
    pub rcode: Rcode,
    /// CNAME chain in order of traversal (may be empty).
    pub cname_chain: Vec<Name>,
    /// Terminal A records (empty on negative outcomes).
    pub addresses: Vec<Ipv4Addr>,
    /// Simulated time the resolution consumed, summed over every query of
    /// the chain (retries and timeout budgets included). Zero under the
    /// legacy blocking path, on cache hits, and under the zero-latency
    /// profile — timing telemetry, never an input to any result.
    pub sim_elapsed_ns: u64,
}

impl ResolutionOutcome {
    /// True if the name ultimately resolved to at least one address.
    pub fn is_resolvable(&self) -> bool {
        self.rcode == Rcode::NoError && !self.addresses.is_empty()
    }

    /// True if the chain contains a CNAME whose target does not exist — the
    /// *dangling record* signature the attackers and the pipeline both hunt
    /// for.
    pub fn is_dangling_cname(&self) -> bool {
        !self.cname_chain.is_empty()
            && (self.rcode == Rcode::NxDomain
                || (self.rcode == Rcode::NoError && self.addresses.is_empty()))
    }

    /// The last CNAME in the chain (the cloud-side generated name, when the
    /// chain points into a cloud platform).
    pub fn final_cname(&self) -> Option<&Name> {
        self.cname_chain.last()
    }
}

/// Resolver tuning knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Maximum total CNAME indirections across queries.
    pub max_chain: usize,
    /// Enable the TTL cache.
    pub cache: bool,
    /// Cap on cached entries (FIFO-ish eviction by insertion day).
    pub cache_capacity: usize,
    /// Attempts per query before the resolver gives up with SERVFAIL: one
    /// initial send plus `max_query_attempts - 1` retries after drops. Only
    /// lossy transports/latency profiles ever consume more than the first.
    pub max_query_attempts: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            max_chain: 16,
            cache: true,
            cache_capacity: 100_000,
            max_query_attempts: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    expires: SimTime,
    outcome: ResolutionOutcome,
}

#[derive(Debug)]
enum FlightState {
    /// One query is on the wire awaiting its completion.
    Pending { query: Message },
    /// Terminal: [`Resolver::conclude`] may harvest the outcome.
    Done,
}

/// One A-resolution in flight: the submit/poll form of
/// [`Resolver::resolve_a`]. The machine has at most **one query pending at
/// a time**; each [`Resolver::advance`] consumes that query's completion
/// and either readies the next (CNAME hop, or retry after a drop) or
/// finishes. The event-driven crawl schedules each pending query on its
/// completion queue; the blocking wrapper completes them inline — both
/// traverse exactly the same states.
#[derive(Debug)]
pub struct ResolutionInFlight {
    name: Name,
    now: SimTime,
    state: FlightState,
    /// Pre-resolved outcome from the TTL cache (machine starts done).
    cached: Option<ResolutionOutcome>,
    chain: Vec<Name>,
    seen: Vec<Name>,
    current: Name,
    addresses: Vec<Ipv4Addr>,
    rcode: Rcode,
    min_ttl: u32,
    /// CNAME hops still permitted (the old `0..=max_chain` bound).
    hops_left: usize,
    /// Attempts left for the *current* query before SERVFAIL.
    attempts_left: u32,
    /// Simulated nanoseconds consumed so far.
    elapsed_ns: u64,
    /// Causal trace context + next child-span index, when this resolution's
    /// trace is sampled. Pure telemetry: never read by resolution logic.
    trace: Option<(obs::TraceCtx, u64)>,
}

impl ResolutionInFlight {
    fn cached(name: Name, now: SimTime, outcome: ResolutionOutcome) -> Self {
        ResolutionInFlight {
            current: name.clone(),
            name,
            now,
            state: FlightState::Done,
            cached: Some(outcome),
            chain: Vec::new(),
            seen: Vec::new(),
            addresses: Vec::new(),
            rcode: Rcode::NoError,
            min_ttl: 0,
            hops_left: 0,
            attempts_left: 0,
            elapsed_ns: 0,
            trace: None,
        }
    }

    fn fresh(name: Name, now: SimTime, query: Message, config: &ResolverConfig) -> Self {
        ResolutionInFlight {
            current: name.clone(),
            seen: vec![name.clone()],
            name,
            now,
            state: FlightState::Pending { query },
            cached: None,
            chain: Vec::new(),
            addresses: Vec::new(),
            rcode: Rcode::NoError,
            min_ttl: 86_400 * 7, // cap cache residency at a week
            hops_left: config.max_chain,
            attempts_left: config.max_query_attempts.max(1),
            elapsed_ns: 0,
            trace: None,
        }
    }

    /// Attach a causal trace context (the crawl's, re-based to this
    /// machine's start). Each completed query then emits a `dns.query`
    /// child span stamped in virtual time.
    pub fn set_trace(&mut self, ctx: obs::TraceCtx) {
        self.trace = Some((ctx, 0));
    }

    /// The query currently on the wire, if any.
    pub fn pending_query(&self) -> Option<&Message> {
        match &self.state {
            FlightState::Pending { query } => Some(query),
            FlightState::Done => None,
        }
    }

    /// The name the pending query asks about (the current CNAME hop) — what
    /// a latency model prices the exchange against.
    pub fn pending_qname(&self) -> Option<&Name> {
        match &self.state {
            FlightState::Pending { .. } => Some(&self.current),
            FlightState::Done => None,
        }
    }

    pub fn is_done(&self) -> bool {
        matches!(self.state, FlightState::Done)
    }

    /// Simulated time consumed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed_ns
    }
}

/// A caching stub resolver.
pub struct Resolver<T: Transport> {
    transport: T,
    config: ResolverConfig,
    cache: Mutex<HashMap<(Name, RecordType), CacheEntry>>,
    next_id: Mutex<u16>,
    /// Counters for the benchmark harness.
    stats: Mutex<ResolverStats>,
}

/// Query statistics.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct ResolverStats {
    pub queries_sent: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl<T: Transport> Resolver<T> {
    pub fn new(transport: T) -> Self {
        Self::with_config(transport, ResolverConfig::default())
    }

    pub fn with_config(transport: T, config: ResolverConfig) -> Self {
        Resolver {
            transport,
            config,
            cache: Mutex::new(HashMap::new()),
            next_id: Mutex::new(1),
            stats: Mutex::new(ResolverStats::default()),
        }
    }

    pub fn stats(&self) -> ResolverStats {
        *self.stats.lock()
    }

    /// Drop all cached entries (tests / epoch changes).
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.lock();
        *id = id.wrapping_add(1);
        *id
    }

    /// Resolve the A records for `name` at simulated time `now`, chasing
    /// CNAME chains with loop detection.
    ///
    /// Thin blocking wrapper over the submit/poll machine: every query
    /// completes instantly and in submission order, which is exactly the
    /// schedule the event-driven crawl produces under the zero-latency
    /// profile.
    pub fn resolve_a(&self, name: &Name, now: SimTime) -> ResolutionOutcome {
        let mut fl = self.begin(name, now);
        while !fl.is_done() {
            let resp = self.exchange_pending(&fl);
            self.advance(&mut fl, resp, 0);
        }
        self.conclude(fl)
    }

    /// Start resolving `name`: checks the cache and, on a miss, readies the
    /// first query. Drive the returned machine with [`Self::advance`] until
    /// [`ResolutionInFlight::is_done`], then harvest via [`Self::conclude`].
    pub fn begin(&self, name: &Name, now: SimTime) -> ResolutionInFlight {
        if self.config.cache {
            let cache = self.cache.lock();
            if let Some(e) = cache.get(&(name.clone(), RecordType::A)) {
                if e.expires > now {
                    self.stats.lock().cache_hits += 1;
                    let mut outcome = e.outcome.clone();
                    outcome.sim_elapsed_ns = 0; // a hit costs no network time
                    return ResolutionInFlight::cached(name.clone(), now, outcome);
                }
            }
        }
        self.stats.lock().cache_misses += 1;
        let query = Message::query(self.fresh_id(), name.clone(), RecordType::A);
        ResolutionInFlight::fresh(name.clone(), now, query, &self.config)
    }

    /// Send the machine's pending query over the transport, counting it.
    /// `None` when the transport dropped it (or nothing is pending).
    pub fn exchange_pending(&self, fl: &ResolutionInFlight) -> Option<Message> {
        let q = fl.pending_query()?;
        self.stats.lock().queries_sent += 1;
        self.transport.try_exchange(q)
    }

    /// Feed one completion into the machine: the response to its pending
    /// query (`None` = dropped on the wire) and the simulated time the
    /// attempt consumed. Readies the next query (CNAME hop or retry) or
    /// finishes the chain.
    pub fn advance(&self, fl: &mut ResolutionInFlight, response: Option<Message>, cost_ns: u64) {
        let FlightState::Pending { .. } = fl.state else {
            return; // already done; nothing in flight to complete
        };
        if let Some((ctx, index)) = &mut fl.trace {
            let start_ns = ctx.base_ns + fl.elapsed_ns;
            ctx.emit_child(
                *index,
                "dns.query",
                start_ns,
                cost_ns,
                vec![
                    ("qname", obs::span::ArgValue::Str(fl.current.to_string())),
                    (
                        "dropped",
                        obs::span::ArgValue::I64(response.is_none() as i64),
                    ),
                ],
            );
            *index += 1;
        }
        fl.elapsed_ns += cost_ns;
        let Some(resp) = response else {
            // Dropped: burn one attempt, retry the same name or give up.
            fl.attempts_left -= 1;
            if fl.attempts_left == 0 {
                fl.rcode = Rcode::ServFail;
                fl.state = FlightState::Done;
            } else {
                let q = Message::query(self.fresh_id(), fl.current.clone(), RecordType::A);
                fl.state = FlightState::Pending { query: q };
            }
            return;
        };
        fl.rcode = resp.header.rcode;
        if fl.rcode == Rcode::Refused || fl.rcode == Rcode::ServFail {
            fl.state = FlightState::Done;
            return;
        }
        let mut progressed = false;
        for rr in &resp.answers {
            fl.min_ttl = fl.min_ttl.min(rr.ttl);
            match &rr.data {
                RecordData::A(ip) => {
                    fl.addresses.push(*ip);
                }
                RecordData::Cname(target) => {
                    if fl.seen.contains(target) {
                        // CNAME loop crossing authorities.
                        fl.rcode = Rcode::ServFail;
                        fl.state = FlightState::Done;
                        return;
                    }
                    fl.chain.push(target.clone());
                    fl.seen.push(target.clone());
                    fl.current = target.clone();
                    progressed = true;
                }
                _ => {}
            }
        }
        if !fl.addresses.is_empty() || fl.rcode == Rcode::NxDomain || !progressed {
            fl.state = FlightState::Done;
            return;
        }
        if fl.hops_left == 0 {
            // Chain budget exhausted (same bound as the old `0..=max_chain`).
            fl.state = FlightState::Done;
            return;
        }
        fl.hops_left -= 1;
        fl.attempts_left = self.config.max_query_attempts.max(1);
        let q = Message::query(self.fresh_id(), fl.current.clone(), RecordType::A);
        fl.state = FlightState::Pending { query: q };
    }

    /// Finish a completed resolution: build the outcome and cache it under
    /// the same TTL rules the blocking path always had.
    pub fn conclude(&self, fl: ResolutionInFlight) -> ResolutionOutcome {
        debug_assert!(fl.is_done(), "concluding a resolution still in flight");
        if let Some(outcome) = fl.cached {
            return outcome; // cache hit: never re-inserted
        }
        let outcome = ResolutionOutcome {
            rcode: fl.rcode,
            cname_chain: fl.chain,
            addresses: fl.addresses,
            sim_elapsed_ns: fl.elapsed_ns,
        };
        if self.config.cache && fl.rcode != Rcode::ServFail && fl.rcode != Rcode::Refused {
            let ttl_days = (fl.min_ttl / 86_400) as i32;
            if ttl_days >= 1 {
                let mut cache = self.cache.lock();
                if cache.len() >= self.config.cache_capacity {
                    cache.clear(); // crude but deterministic
                }
                cache.insert(
                    (fl.name.clone(), RecordType::A),
                    CacheEntry {
                        expires: fl.now + ttl_days,
                        outcome: outcome.clone(),
                    },
                );
            }
        }
        outcome
    }

    /// Fetch records of an arbitrary type at a single name (no chain
    /// chasing); used for CAA/TXT lookups by the certificate machinery.
    pub fn query_raw(&self, name: &Name, rtype: RecordType) -> (Rcode, Vec<ResourceRecord>) {
        let q = Message::query(self.fresh_id(), name.clone(), rtype);
        self.stats.lock().queries_sent += 1;
        let resp = self.transport.exchange(&q);
        (resp.header.rcode, resp.answers)
    }

    /// RFC 8659 §3 relevant-CAA lookup: climb from `name` toward the root and
    /// return the first non-empty CAA record set found.
    pub fn find_caa(&self, name: &Name) -> Vec<crate::record::CaaRecord> {
        let mut probe = Some(name.clone());
        while let Some(p) = probe {
            let (rcode, answers) = self.query_raw(&p, RecordType::Caa);
            if rcode == Rcode::NoError {
                let caa: Vec<_> = answers
                    .into_iter()
                    .filter_map(|rr| match rr.data {
                        RecordData::Caa(c) => Some(c),
                        _ => None,
                    })
                    .collect();
                if !caa.is_empty() {
                    return caa;
                }
            }
            probe = p.parent();
            // Stop below the TLD: the synthetic world never sets CAA at TLDs.
            if probe.as_ref().map(|n| n.label_count() < 2).unwrap_or(true) {
                break;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CaaRecord;
    use crate::zone::{Zone, ZoneSet};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn authority() -> Authority {
        let mut zs = ZoneSet::new();
        let mut ex = Zone::new(n("example.com"));
        ex.add(ResourceRecord::new(
            n("www.example.com"),
            86_400 * 2,
            RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        ex.add(ResourceRecord::new(
            n("shop.example.com"),
            300,
            RecordData::Cname(n("shop-prod.azurewebsites.net")),
        ));
        ex.add(ResourceRecord::new(
            n("example.com"),
            3600,
            RecordData::Caa(CaaRecord::issue("digicert.com")),
        ));
        zs.insert(ex);
        let mut az = Zone::new(n("azurewebsites.net"));
        az.add(ResourceRecord::new(
            n("shop-prod.azurewebsites.net"),
            60,
            RecordData::A(Ipv4Addr::new(20, 40, 60, 80)),
        ));
        zs.insert(az);
        Authority::new(zs)
    }

    #[test]
    fn resolves_direct_a() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("www.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(out.addresses, vec![Ipv4Addr::new(1, 2, 3, 4)]);
        assert!(out.cname_chain.is_empty());
    }

    #[test]
    fn resolves_through_cname() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(out.cname_chain, vec![n("shop-prod.azurewebsites.net")]);
        assert_eq!(out.addresses, vec![Ipv4Addr::new(20, 40, 60, 80)]);
        assert_eq!(out.final_cname(), Some(&n("shop-prod.azurewebsites.net")));
    }

    #[test]
    fn dangling_cname_detected() {
        let mut auth = authority();
        auth.zones_mut()
            .get_mut(&n("azurewebsites.net"))
            .unwrap()
            .remove_name(&n("shop-prod.azurewebsites.net"));
        let r = Resolver::new(auth);
        let out = r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(!out.is_resolvable());
        assert!(out.is_dangling_cname());
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert_eq!(out.cname_chain, vec![n("shop-prod.azurewebsites.net")]);
    }

    #[test]
    fn nxdomain_plain() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("nope.example.com"), SimTime(0));
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(!out.is_dangling_cname()); // no CNAME involved
    }

    #[test]
    fn cache_hits_within_ttl() {
        let r = Resolver::new(authority());
        let day0 = SimTime(0);
        r.resolve_a(&n("www.example.com"), day0); // ttl 2 days -> cached
        let sent_before = r.stats().queries_sent;
        let out = r.resolve_a(&n("www.example.com"), SimTime(1));
        assert!(out.is_resolvable());
        assert_eq!(r.stats().queries_sent, sent_before, "should hit cache");
        // After expiry it re-queries.
        r.resolve_a(&n("www.example.com"), SimTime(3));
        assert!(r.stats().queries_sent > sent_before);
    }

    #[test]
    fn short_ttl_not_cached() {
        let r = Resolver::new(authority());
        r.resolve_a(&n("shop.example.com"), SimTime(0)); // min ttl 60s
        let sent = r.stats().queries_sent;
        r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(r.stats().queries_sent > sent);
    }

    #[test]
    fn cross_authority_loop_detected() {
        let mut zs = ZoneSet::new();
        let mut a = Zone::new(n("a.test"));
        a.add(ResourceRecord::new(
            n("x.a.test"),
            60,
            RecordData::Cname(n("y.b.test")),
        ));
        zs.insert(a);
        let mut b = Zone::new(n("b.test"));
        b.add(ResourceRecord::new(
            n("y.b.test"),
            60,
            RecordData::Cname(n("x.a.test")),
        ));
        zs.insert(b);
        let r = Resolver::new(Authority::new(zs));
        let out = r.resolve_a(&n("x.a.test"), SimTime(0));
        assert_eq!(out.rcode, Rcode::ServFail);
    }

    #[test]
    fn caa_climbing() {
        let r = Resolver::new(authority());
        // No CAA at the subdomain; must climb to example.com.
        let caa = r.find_caa(&n("shop.example.com"));
        assert_eq!(caa.len(), 1);
        assert_eq!(caa[0].value, "digicert.com");
        // Unrelated domain: none.
        assert!(r.find_caa(&n("x.other.net")).is_empty());
    }

    #[test]
    fn refused_propagates() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("www.unknown-zone.net"), SimTime(0));
        assert_eq!(out.rcode, Rcode::Refused);
        assert!(!out.is_resolvable());
    }

    /// Drops the first N queries it sees, then behaves like its inner
    /// authority — the timeout/retry test double.
    struct DroppingTransport {
        inner: Authority,
        drop_first: u64,
        seen: Mutex<u64>,
    }

    impl DroppingTransport {
        fn new(inner: Authority, drop_first: u64) -> Self {
            DroppingTransport {
                inner,
                drop_first,
                seen: Mutex::new(0),
            }
        }
    }

    impl Transport for DroppingTransport {
        fn exchange(&self, query: &Message) -> Message {
            self.inner.exchange(query)
        }

        fn try_exchange(&self, query: &Message) -> Option<Message> {
            let mut seen = self.seen.lock();
            *seen += 1;
            if *seen <= self.drop_first {
                None
            } else {
                Some(self.inner.exchange(query))
            }
        }
    }

    #[test]
    fn drops_within_budget_retry_to_success() {
        // 2 drops, 3 attempts: the third attempt lands.
        let r = Resolver::new(DroppingTransport::new(authority(), 2));
        let out = r.resolve_a(&n("www.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(r.stats().queries_sent, 3);
    }

    #[test]
    fn drops_exhausting_budget_yield_servfail() {
        // 3 drops, 3 attempts: budget exhausted -> SERVFAIL, never cached.
        let r = Resolver::new(DroppingTransport::new(authority(), 3));
        let out = r.resolve_a(&n("www.example.com"), SimTime(0));
        assert_eq!(out.rcode, Rcode::ServFail);
        assert!(!out.is_resolvable());
        // Not cached: the next call goes back to the (now healed) wire.
        let out2 = r.resolve_a(&n("www.example.com"), SimTime(0));
        assert!(out2.is_resolvable());
    }

    /// Two separate authorities (the chain must cross them query by query)
    /// with drops injected at chosen query ordinals.
    struct SplitLossyTransport {
        org: Authority,
        cloud: Authority,
        drop_ordinals: Vec<u64>,
        seen: Mutex<u64>,
    }

    impl SplitLossyTransport {
        fn new(drop_ordinals: Vec<u64>) -> Self {
            let mut org_zs = ZoneSet::new();
            let mut ex = Zone::new(n("example.com"));
            ex.add(ResourceRecord::new(
                n("shop.example.com"),
                300,
                RecordData::Cname(n("shop-prod.azurewebsites.net")),
            ));
            org_zs.insert(ex);
            let mut cloud_zs = ZoneSet::new();
            let mut az = Zone::new(n("azurewebsites.net"));
            az.add(ResourceRecord::new(
                n("shop-prod.azurewebsites.net"),
                60,
                RecordData::A(Ipv4Addr::new(20, 40, 60, 80)),
            ));
            cloud_zs.insert(az);
            SplitLossyTransport {
                org: Authority::new(org_zs),
                cloud: Authority::new(cloud_zs),
                drop_ordinals,
                seen: Mutex::new(0),
            }
        }

        fn route(&self, query: &Message) -> Message {
            let qname = &query.questions[0].name;
            if qname.ends_with(&n("azurewebsites.net")) {
                self.cloud.exchange(query)
            } else {
                self.org.exchange(query)
            }
        }
    }

    impl Transport for SplitLossyTransport {
        fn exchange(&self, query: &Message) -> Message {
            self.route(query)
        }

        fn try_exchange(&self, query: &Message) -> Option<Message> {
            let mut seen = self.seen.lock();
            *seen += 1;
            if self.drop_ordinals.contains(&seen) {
                None
            } else {
                Some(self.route(query))
            }
        }
    }

    #[test]
    fn drop_retry_spans_cname_hops() {
        // Drop budget is per query, not per chain: one drop on each hop
        // still resolves with 2 attempts per query.
        let cfg = ResolverConfig {
            max_query_attempts: 2,
            ..ResolverConfig::default()
        };
        // Query 1 (hop 1) and query 3 (hop 2) are dropped; retries land.
        let r = Resolver::with_config(SplitLossyTransport::new(vec![1, 3]), cfg);
        let out = r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(out.cname_chain, vec![n("shop-prod.azurewebsites.net")]);
        assert_eq!(r.stats().queries_sent, 4);
    }

    #[test]
    fn machine_accumulates_elapsed_time() {
        // Drive the submit/poll machine by hand, charging a modeled cost per
        // completion: a drop burns the full timeout budget, answers their RTT.
        let r = Resolver::new(SplitLossyTransport::new(vec![1]));
        let mut fl = r.begin(&n("shop.example.com"), SimTime(0));
        let mut costs = [5_000_000_000u64, 20_000_000, 25_000_000].into_iter();
        while !fl.is_done() {
            assert!(fl.pending_qname().is_some());
            let resp = r.exchange_pending(&fl);
            r.advance(&mut fl, resp, costs.next().expect("≤3 completions"));
        }
        let out = r.conclude(fl);
        assert!(out.is_resolvable());
        // Dropped hop-1 attempt + answered hop-1 retry + answered hop 2.
        assert_eq!(out.sim_elapsed_ns, 5_000_000_000 + 20_000_000 + 25_000_000);
    }

    #[test]
    fn cache_hit_costs_no_simulated_time() {
        let r = Resolver::new(authority());
        let mut fl = r.begin(&n("www.example.com"), SimTime(0));
        while !fl.is_done() {
            let resp = r.exchange_pending(&fl);
            r.advance(&mut fl, resp, 1_000_000);
        }
        let first = r.conclude(fl);
        assert_eq!(first.sim_elapsed_ns, 1_000_000);
        // Second resolution hits the TTL cache: same answer, zero cost.
        let hit = r.resolve_a(&n("www.example.com"), SimTime(1));
        assert!(hit.is_resolvable());
        assert_eq!(hit.sim_elapsed_ns, 0);
    }

    #[test]
    fn blocking_wrapper_matches_machine() {
        // The blocking API and a hand-driven machine traverse identical
        // states: same outcome, field for field.
        let r1 = Resolver::new(authority());
        let r2 = Resolver::new(authority());
        for name in ["www.example.com", "shop.example.com", "nope.example.com"] {
            let blocking = r1.resolve_a(&n(name), SimTime(0));
            let mut fl = r2.begin(&n(name), SimTime(0));
            while !fl.is_done() {
                let resp = r2.exchange_pending(&fl);
                r2.advance(&mut fl, resp, 0);
            }
            assert_eq!(blocking, r2.conclude(fl), "{name}");
        }
    }
}
