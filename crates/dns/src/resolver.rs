//! Stub resolver with CNAME chasing and a TTL cache.
//!
//! [`Resolver::resolve_a`] is the exact primitive Algorithm 1 of the paper
//! consumes: given an FQDN it returns the full CNAME chain *and* the terminal
//! A records (`A_results, CNAME_results ← DNS_A_query(fqdn)`), or the
//! negative outcome (NXDOMAIN / NODATA / SERVFAIL). The resolver queries an
//! [`Authority`] through the [`Transport`] trait so tests can interpose
//! failures, and caches positive and negative answers with day-granularity
//! TTLs driven by simulated time.

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::record::{RecordData, RecordType, ResourceRecord};
use crate::server::Authority;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Where queries go. The production implementation is [`Authority`]; tests
/// can inject flaky or adversarial transports.
///
/// `Sync` is a supertrait: the shard-parallel crawl executor resolves
/// against one shared world from many threads, so every transport must be
/// safely shareable (all implementations here are plain data or lock their
/// interior state).
pub trait Transport: Sync {
    fn exchange(&self, query: &Message) -> Message;
}

impl Transport for Authority {
    fn exchange(&self, query: &Message) -> Message {
        self.answer(query)
    }
}

impl<T: Transport + Send + ?Sized> Transport for Arc<T> {
    fn exchange(&self, query: &Message) -> Message {
        (**self).exchange(query)
    }
}

/// Outcome of resolving an FQDN's A record, the unit of observation for the
/// collection and monitoring pipelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionOutcome {
    /// Final response code of the chain.
    pub rcode: Rcode,
    /// CNAME chain in order of traversal (may be empty).
    pub cname_chain: Vec<Name>,
    /// Terminal A records (empty on negative outcomes).
    pub addresses: Vec<Ipv4Addr>,
}

impl ResolutionOutcome {
    /// True if the name ultimately resolved to at least one address.
    pub fn is_resolvable(&self) -> bool {
        self.rcode == Rcode::NoError && !self.addresses.is_empty()
    }

    /// True if the chain contains a CNAME whose target does not exist — the
    /// *dangling record* signature the attackers and the pipeline both hunt
    /// for.
    pub fn is_dangling_cname(&self) -> bool {
        !self.cname_chain.is_empty()
            && (self.rcode == Rcode::NxDomain
                || (self.rcode == Rcode::NoError && self.addresses.is_empty()))
    }

    /// The last CNAME in the chain (the cloud-side generated name, when the
    /// chain points into a cloud platform).
    pub fn final_cname(&self) -> Option<&Name> {
        self.cname_chain.last()
    }
}

/// Resolver tuning knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolverConfig {
    /// Maximum total CNAME indirections across queries.
    pub max_chain: usize,
    /// Enable the TTL cache.
    pub cache: bool,
    /// Cap on cached entries (FIFO-ish eviction by insertion day).
    pub cache_capacity: usize,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            max_chain: 16,
            cache: true,
            cache_capacity: 100_000,
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    expires: SimTime,
    outcome: ResolutionOutcome,
}

/// A caching stub resolver.
pub struct Resolver<T: Transport> {
    transport: T,
    config: ResolverConfig,
    cache: Mutex<HashMap<(Name, RecordType), CacheEntry>>,
    next_id: Mutex<u16>,
    /// Counters for the benchmark harness.
    stats: Mutex<ResolverStats>,
}

/// Query statistics.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct ResolverStats {
    pub queries_sent: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl<T: Transport> Resolver<T> {
    pub fn new(transport: T) -> Self {
        Self::with_config(transport, ResolverConfig::default())
    }

    pub fn with_config(transport: T, config: ResolverConfig) -> Self {
        Resolver {
            transport,
            config,
            cache: Mutex::new(HashMap::new()),
            next_id: Mutex::new(1),
            stats: Mutex::new(ResolverStats::default()),
        }
    }

    pub fn stats(&self) -> ResolverStats {
        *self.stats.lock()
    }

    /// Drop all cached entries (tests / epoch changes).
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    fn fresh_id(&self) -> u16 {
        let mut id = self.next_id.lock();
        *id = id.wrapping_add(1);
        *id
    }

    /// Resolve the A records for `name` at simulated time `now`, chasing
    /// CNAME chains with loop detection.
    pub fn resolve_a(&self, name: &Name, now: SimTime) -> ResolutionOutcome {
        if self.config.cache {
            let cache = self.cache.lock();
            if let Some(e) = cache.get(&(name.clone(), RecordType::A)) {
                if e.expires > now {
                    self.stats.lock().cache_hits += 1;
                    return e.outcome.clone();
                }
            }
        }
        self.stats.lock().cache_misses += 1;

        let mut chain: Vec<Name> = Vec::new();
        let mut seen: Vec<Name> = vec![name.clone()];
        let mut current = name.clone();
        let mut addresses: Vec<Ipv4Addr> = Vec::new();
        let mut rcode = Rcode::NoError;
        let mut min_ttl: u32 = 86_400 * 7; // cap cache residency at a week

        'outer: for _ in 0..=self.config.max_chain {
            let q = Message::query(self.fresh_id(), current.clone(), RecordType::A);
            self.stats.lock().queries_sent += 1;
            let resp = self.transport.exchange(&q);
            rcode = resp.header.rcode;
            if rcode == Rcode::Refused || rcode == Rcode::ServFail {
                break;
            }
            let mut progressed = false;
            for rr in &resp.answers {
                min_ttl = min_ttl.min(rr.ttl);
                match &rr.data {
                    RecordData::A(ip) => {
                        addresses.push(*ip);
                    }
                    RecordData::Cname(target) => {
                        if seen.contains(target) {
                            // CNAME loop crossing authorities.
                            rcode = Rcode::ServFail;
                            break 'outer;
                        }
                        chain.push(target.clone());
                        seen.push(target.clone());
                        current = target.clone();
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !addresses.is_empty() || rcode == Rcode::NxDomain || !progressed {
                break;
            }
        }

        let outcome = ResolutionOutcome {
            rcode,
            cname_chain: chain,
            addresses,
        };

        if self.config.cache && rcode != Rcode::ServFail && rcode != Rcode::Refused {
            let ttl_days = (min_ttl / 86_400) as i32;
            if ttl_days >= 1 {
                let mut cache = self.cache.lock();
                if cache.len() >= self.config.cache_capacity {
                    cache.clear(); // crude but deterministic
                }
                cache.insert(
                    (name.clone(), RecordType::A),
                    CacheEntry {
                        expires: now + ttl_days,
                        outcome: outcome.clone(),
                    },
                );
            }
        }
        outcome
    }

    /// Fetch records of an arbitrary type at a single name (no chain
    /// chasing); used for CAA/TXT lookups by the certificate machinery.
    pub fn query_raw(&self, name: &Name, rtype: RecordType) -> (Rcode, Vec<ResourceRecord>) {
        let q = Message::query(self.fresh_id(), name.clone(), rtype);
        self.stats.lock().queries_sent += 1;
        let resp = self.transport.exchange(&q);
        (resp.header.rcode, resp.answers)
    }

    /// RFC 8659 §3 relevant-CAA lookup: climb from `name` toward the root and
    /// return the first non-empty CAA record set found.
    pub fn find_caa(&self, name: &Name) -> Vec<crate::record::CaaRecord> {
        let mut probe = Some(name.clone());
        while let Some(p) = probe {
            let (rcode, answers) = self.query_raw(&p, RecordType::Caa);
            if rcode == Rcode::NoError {
                let caa: Vec<_> = answers
                    .into_iter()
                    .filter_map(|rr| match rr.data {
                        RecordData::Caa(c) => Some(c),
                        _ => None,
                    })
                    .collect();
                if !caa.is_empty() {
                    return caa;
                }
            }
            probe = p.parent();
            // Stop below the TLD: the synthetic world never sets CAA at TLDs.
            if probe.as_ref().map(|n| n.label_count() < 2).unwrap_or(true) {
                break;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CaaRecord;
    use crate::zone::{Zone, ZoneSet};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn authority() -> Authority {
        let mut zs = ZoneSet::new();
        let mut ex = Zone::new(n("example.com"));
        ex.add(ResourceRecord::new(
            n("www.example.com"),
            86_400 * 2,
            RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        ex.add(ResourceRecord::new(
            n("shop.example.com"),
            300,
            RecordData::Cname(n("shop-prod.azurewebsites.net")),
        ));
        ex.add(ResourceRecord::new(
            n("example.com"),
            3600,
            RecordData::Caa(CaaRecord::issue("digicert.com")),
        ));
        zs.insert(ex);
        let mut az = Zone::new(n("azurewebsites.net"));
        az.add(ResourceRecord::new(
            n("shop-prod.azurewebsites.net"),
            60,
            RecordData::A(Ipv4Addr::new(20, 40, 60, 80)),
        ));
        zs.insert(az);
        Authority::new(zs)
    }

    #[test]
    fn resolves_direct_a() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("www.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(out.addresses, vec![Ipv4Addr::new(1, 2, 3, 4)]);
        assert!(out.cname_chain.is_empty());
    }

    #[test]
    fn resolves_through_cname() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(out.is_resolvable());
        assert_eq!(out.cname_chain, vec![n("shop-prod.azurewebsites.net")]);
        assert_eq!(out.addresses, vec![Ipv4Addr::new(20, 40, 60, 80)]);
        assert_eq!(out.final_cname(), Some(&n("shop-prod.azurewebsites.net")));
    }

    #[test]
    fn dangling_cname_detected() {
        let mut auth = authority();
        auth.zones_mut()
            .get_mut(&n("azurewebsites.net"))
            .unwrap()
            .remove_name(&n("shop-prod.azurewebsites.net"));
        let r = Resolver::new(auth);
        let out = r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(!out.is_resolvable());
        assert!(out.is_dangling_cname());
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert_eq!(out.cname_chain, vec![n("shop-prod.azurewebsites.net")]);
    }

    #[test]
    fn nxdomain_plain() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("nope.example.com"), SimTime(0));
        assert_eq!(out.rcode, Rcode::NxDomain);
        assert!(!out.is_dangling_cname()); // no CNAME involved
    }

    #[test]
    fn cache_hits_within_ttl() {
        let r = Resolver::new(authority());
        let day0 = SimTime(0);
        r.resolve_a(&n("www.example.com"), day0); // ttl 2 days -> cached
        let sent_before = r.stats().queries_sent;
        let out = r.resolve_a(&n("www.example.com"), SimTime(1));
        assert!(out.is_resolvable());
        assert_eq!(r.stats().queries_sent, sent_before, "should hit cache");
        // After expiry it re-queries.
        r.resolve_a(&n("www.example.com"), SimTime(3));
        assert!(r.stats().queries_sent > sent_before);
    }

    #[test]
    fn short_ttl_not_cached() {
        let r = Resolver::new(authority());
        r.resolve_a(&n("shop.example.com"), SimTime(0)); // min ttl 60s
        let sent = r.stats().queries_sent;
        r.resolve_a(&n("shop.example.com"), SimTime(0));
        assert!(r.stats().queries_sent > sent);
    }

    #[test]
    fn cross_authority_loop_detected() {
        let mut zs = ZoneSet::new();
        let mut a = Zone::new(n("a.test"));
        a.add(ResourceRecord::new(
            n("x.a.test"),
            60,
            RecordData::Cname(n("y.b.test")),
        ));
        zs.insert(a);
        let mut b = Zone::new(n("b.test"));
        b.add(ResourceRecord::new(
            n("y.b.test"),
            60,
            RecordData::Cname(n("x.a.test")),
        ));
        zs.insert(b);
        let r = Resolver::new(Authority::new(zs));
        let out = r.resolve_a(&n("x.a.test"), SimTime(0));
        assert_eq!(out.rcode, Rcode::ServFail);
    }

    #[test]
    fn caa_climbing() {
        let r = Resolver::new(authority());
        // No CAA at the subdomain; must climb to example.com.
        let caa = r.find_caa(&n("shop.example.com"));
        assert_eq!(caa.len(), 1);
        assert_eq!(caa[0].value, "digicert.com");
        // Unrelated domain: none.
        assert!(r.find_caa(&n("x.other.net")).is_empty());
    }

    #[test]
    fn refused_propagates() {
        let r = Resolver::new(authority());
        let out = r.resolve_a(&n("www.unknown-zone.net"), SimTime(0));
        assert_eq!(out.rcode, Rcode::Refused);
        assert!(!out.is_resolvable());
    }
}
