//! RFC 1035 wire-format encoding and decoding.
//!
//! Full binary fidelity for the message model: 12-octet header, question and
//! RR sections, and **name compression** (RFC 1035 §4.1.4) on both encode and
//! decode, with the standard hardening against malicious messages — pointer
//! loops, forward pointers, overlong names, truncated RDATA.
//!
//! The simulation does not strictly need a byte-level codec (queries travel
//! in-process), but the paper's pipeline is a network measurement system and
//! the codec lets the test suite exercise realistic failure modes (and gives
//! the benchmark harness a DNS-throughput baseline).

use crate::message::{Header, Message, Opcode, Question, Rcode};
use crate::name::Name;
use crate::record::{CaaRecord, RecordClass, RecordData, RecordType, ResourceRecord, Soa};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Decode errors. Every variant corresponds to a malformed or hostile input
/// a real resolver must survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while a length field promised more.
    Truncated,
    /// A compression pointer pointed at or after its own location.
    ForwardPointer,
    /// Followed more pointers than a legal message can contain.
    PointerLoop,
    /// A label length octet used the reserved 0b10/0b01 prefixes.
    BadLabelLength(u8),
    /// Decoded name exceeded 255 octets.
    NameTooLong,
    /// Label contained invalid characters.
    BadLabel,
    /// Unknown RR TYPE that we cannot represent.
    UnknownType(u16),
    /// Unknown CLASS.
    UnknownClass(u16),
    /// Unknown OPCODE / RCODE.
    BadHeaderField,
    /// RDATA length disagreed with the parsed content.
    RdataLengthMismatch,
    /// Trailing garbage after the final section.
    TrailingBytes,
    /// TXT/CAA string exceeded 255 octets or was malformed.
    BadCharacterString,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::ForwardPointer => write!(f, "compression pointer not backwards"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::BadLabelLength(b) => write!(f, "reserved label length {b:#04x}"),
            WireError::NameTooLong => write!(f, "decoded name exceeds 255 octets"),
            WireError::BadLabel => write!(f, "label contains invalid bytes"),
            WireError::UnknownType(t) => write!(f, "unknown RR type {t}"),
            WireError::UnknownClass(c) => write!(f, "unknown RR class {c}"),
            WireError::BadHeaderField => write!(f, "unknown opcode or rcode"),
            WireError::RdataLengthMismatch => write!(f, "RDLENGTH mismatch"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::BadCharacterString => write!(f, "malformed character-string"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encoder with name-compression dictionary.
struct Encoder {
    buf: BytesMut,
    /// Maps a name (by its interned label-suffix ids) to the offset of its
    /// first occurrence. Only offsets < 0x3FFF are usable as pointers.
    dict: HashMap<Vec<crate::LabelId>, u16>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            buf: BytesMut::with_capacity(512),
            dict: HashMap::new(),
        }
    }

    fn put_name(&mut self, name: &Name) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix_key = labels[i..].to_vec();
            if let Some(&off) = self.dict.get(&suffix_key) {
                // Emit pointer and stop.
                self.buf.put_u16(0xC000 | off);
                return;
            }
            let here = self.buf.len();
            if here <= 0x3FFF_usize {
                self.dict.insert(suffix_key, here as u16);
            }
            let l = labels[i].as_bytes();
            debug_assert!(l.len() <= 63);
            self.buf.put_u8(l.len() as u8);
            self.buf.put_slice(l);
        }
        self.buf.put_u8(0); // root
    }

    fn put_character_string(&mut self, s: &str) {
        debug_assert!(s.len() <= 255);
        self.buf.put_u8(s.len() as u8);
        self.buf.put_slice(s.as_bytes());
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.name);
        self.buf.put_u16(q.qtype.code());
        self.buf.put_u16(q.qclass.code());
    }

    fn put_record(&mut self, rr: &ResourceRecord) {
        self.put_name(&rr.name);
        self.buf.put_u16(rr.rtype().code());
        self.buf.put_u16(rr.class.code());
        self.buf.put_u32(rr.ttl);
        // Reserve RDLENGTH, fill after writing RDATA.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        match &rr.data {
            RecordData::A(ip) => self.buf.put_slice(&ip.octets()),
            RecordData::Aaaa(ip) => self.buf.put_slice(&ip.octets()),
            RecordData::Cname(n) | RecordData::Ns(n) => self.put_name(n),
            RecordData::Soa(soa) => {
                self.put_name(&soa.mname);
                self.put_name(&soa.rname);
                self.buf.put_u32(soa.serial);
                self.buf.put_u32(soa.refresh);
                self.buf.put_u32(soa.retry);
                self.buf.put_u32(soa.expire);
                self.buf.put_u32(soa.minimum);
            }
            RecordData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.put_name(exchange);
            }
            RecordData::Txt(strings) => {
                for s in strings {
                    self.put_character_string(s);
                }
            }
            RecordData::Caa(caa) => {
                self.buf.put_u8(caa.flags);
                self.put_character_string(&caa.tag);
                self.buf.put_slice(caa.value.as_bytes());
            }
        }
        let rdlen = (self.buf.len() - start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }
}

/// Encode a message to wire format.
pub fn encode(msg: &Message) -> Bytes {
    let mut e = Encoder::new();
    e.buf.put_u16(msg.header.id);
    let mut flags: u16 = 0;
    if msg.header.qr {
        flags |= 0x8000;
    }
    flags |= (msg.header.opcode.code() as u16) << 11;
    if msg.header.aa {
        flags |= 0x0400;
    }
    if msg.header.tc {
        flags |= 0x0200;
    }
    if msg.header.rd {
        flags |= 0x0100;
    }
    if msg.header.ra {
        flags |= 0x0080;
    }
    flags |= msg.header.rcode.code() as u16;
    e.buf.put_u16(flags);
    e.buf.put_u16(msg.questions.len() as u16);
    e.buf.put_u16(msg.answers.len() as u16);
    e.buf.put_u16(msg.authority.len() as u16);
    e.buf.put_u16(msg.additional.len() as u16);
    for q in &msg.questions {
        e.put_question(q);
    }
    for rr in &msg.answers {
        e.put_record(rr);
    }
    for rr in &msg.authority {
        e.put_record(rr);
    }
    for rr in &msg.additional {
        e.put_record(rr);
    }
    e.buf.freeze()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    fn get_u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        let b = self.data[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn get_u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        let mut s = &self.data[self.pos..];
        self.pos += 2;
        Ok(s.get_u16())
    }

    fn get_u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        let mut s = &self.data[self.pos..];
        self.pos += 4;
        Ok(s.get_u32())
    }

    fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.need(n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode a (possibly compressed) name starting at the cursor.
    fn get_name(&mut self) -> Result<Name, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut wire_len = 1usize; // terminal root byte
        let mut jumps = 0usize;
        // After the first pointer jump the cursor no longer advances; track
        // the resume position.
        let mut resume: Option<usize> = None;
        let mut pos = self.pos;
        loop {
            if pos >= self.data.len() {
                return Err(WireError::Truncated);
            }
            let len = self.data[pos];
            match len & 0xC0 {
                0x00 => {
                    if len == 0 {
                        pos += 1;
                        break;
                    }
                    let l = len as usize;
                    if pos + 1 + l > self.data.len() {
                        return Err(WireError::Truncated);
                    }
                    wire_len += 1 + l;
                    if wire_len > 255 {
                        return Err(WireError::NameTooLong);
                    }
                    let raw = &self.data[pos + 1..pos + 1 + l];
                    let label = std::str::from_utf8(raw).map_err(|_| WireError::BadLabel)?;
                    labels.push(label.to_ascii_lowercase());
                    pos += 1 + l;
                }
                0xC0 => {
                    if pos + 1 >= self.data.len() {
                        return Err(WireError::Truncated);
                    }
                    let target = (((len & 0x3F) as usize) << 8) | self.data[pos + 1] as usize;
                    // RFC 1035 pointers must point strictly backwards.
                    if target >= pos {
                        return Err(WireError::ForwardPointer);
                    }
                    if resume.is_none() {
                        resume = Some(pos + 2);
                    }
                    jumps += 1;
                    // A 64KiB message cannot legitimately contain more than
                    // 128 jumps for one name (each jump must go backwards by
                    // at least 2 octets); be stricter.
                    if jumps > 63 {
                        return Err(WireError::PointerLoop);
                    }
                    pos = target;
                }
                other => return Err(WireError::BadLabelLength(other)),
            }
        }
        self.pos = resume.unwrap_or(pos);
        Name::from_labels(labels).map_err(|e| match e {
            crate::name::NameError::NameTooLong => WireError::NameTooLong,
            _ => WireError::BadLabel,
        })
    }

    fn get_character_string(&mut self) -> Result<String, WireError> {
        let len = self.get_u8()? as usize;
        let raw = self.get_slice(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadCharacterString)
    }

    fn get_question(&mut self) -> Result<Question, WireError> {
        let name = self.get_name()?;
        let qtype = RecordType::from_code(self.get_u16()?).ok_or(WireError::UnknownType(0))?;
        let qclass = RecordClass::from_code(self.get_u16()?).ok_or(WireError::UnknownClass(0))?;
        Ok(Question {
            name,
            qtype,
            qclass,
        })
    }

    fn get_record(&mut self) -> Result<ResourceRecord, WireError> {
        let name = self.get_name()?;
        let tcode = self.get_u16()?;
        let rtype = RecordType::from_code(tcode).ok_or(WireError::UnknownType(tcode))?;
        let ccode = self.get_u16()?;
        let class = RecordClass::from_code(ccode).ok_or(WireError::UnknownClass(ccode))?;
        let ttl = self.get_u32()?;
        let rdlen = self.get_u16()? as usize;
        self.need(rdlen)?;
        let rdata_end = self.pos + rdlen;
        let data = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(WireError::RdataLengthMismatch);
                }
                let o = self.get_slice(4)?;
                RecordData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::RdataLengthMismatch);
                }
                let o = self.get_slice(16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                RecordData::Aaaa(Ipv6Addr::from(b))
            }
            RecordType::Cname => RecordData::Cname(self.get_name()?),
            RecordType::Ns => RecordData::Ns(self.get_name()?),
            RecordType::Soa => RecordData::Soa(Soa {
                mname: self.get_name()?,
                rname: self.get_name()?,
                serial: self.get_u32()?,
                refresh: self.get_u32()?,
                retry: self.get_u32()?,
                expire: self.get_u32()?,
                minimum: self.get_u32()?,
            }),
            RecordType::Mx => RecordData::Mx {
                preference: self.get_u16()?,
                exchange: self.get_name()?,
            },
            RecordType::Txt => {
                let mut strings = Vec::new();
                while self.pos < rdata_end {
                    strings.push(self.get_character_string()?);
                }
                RecordData::Txt(strings)
            }
            RecordType::Caa => {
                let flags = self.get_u8()?;
                let tag = self.get_character_string()?;
                if self.pos > rdata_end {
                    return Err(WireError::RdataLengthMismatch);
                }
                let vlen = rdata_end - self.pos;
                let raw = self.get_slice(vlen)?;
                let value =
                    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadCharacterString)?;
                RecordData::Caa(CaaRecord { flags, tag, value })
            }
        };
        if self.pos != rdata_end {
            return Err(WireError::RdataLengthMismatch);
        }
        Ok(ResourceRecord {
            name,
            class,
            ttl,
            data,
        })
    }
}

/// Decode a wire-format message. Rejects trailing bytes.
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder { data, pos: 0 };
    let id = d.get_u16()?;
    let flags = d.get_u16()?;
    let header = Header {
        id,
        qr: flags & 0x8000 != 0,
        opcode: Opcode::from_code(((flags >> 11) & 0x0F) as u8).ok_or(WireError::BadHeaderField)?,
        aa: flags & 0x0400 != 0,
        tc: flags & 0x0200 != 0,
        rd: flags & 0x0100 != 0,
        ra: flags & 0x0080 != 0,
        rcode: Rcode::from_code((flags & 0x0F) as u8).ok_or(WireError::BadHeaderField)?,
    };
    let qd = d.get_u16()? as usize;
    let an = d.get_u16()? as usize;
    let ns = d.get_u16()? as usize;
    let ar = d.get_u16()? as usize;
    let mut questions = Vec::with_capacity(qd.min(32));
    for _ in 0..qd {
        questions.push(d.get_question()?);
    }
    let mut answers = Vec::with_capacity(an.min(64));
    for _ in 0..an {
        answers.push(d.get_record()?);
    }
    let mut authority = Vec::with_capacity(ns.min(64));
    for _ in 0..ns {
        authority.push(d.get_record()?);
    }
    let mut additional = Vec::with_capacity(ar.min(64));
    for _ in 0..ar {
        additional.push(d.get_record()?);
    }
    if d.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(Message {
        header,
        questions,
        answers,
        authority,
        additional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::record::{CaaRecord, RecordData, ResourceRecord};

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query(0x1234, n("shop.example.com"), RecordType::A);
        let mut r = Message::response(&q, Rcode::NoError);
        r.answers.push(ResourceRecord::new(
            n("shop.example.com"),
            300,
            RecordData::Cname(n("shop-prod.azurewebsites.net")),
        ));
        r.answers.push(ResourceRecord::new(
            n("shop-prod.azurewebsites.net"),
            60,
            RecordData::A(Ipv4Addr::new(20, 40, 60, 80)),
        ));
        r.authority.push(ResourceRecord::new(
            n("example.com"),
            3600,
            RecordData::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 2023010101,
                refresh: 7200,
                retry: 600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        r.additional.push(ResourceRecord::new(
            n("example.com"),
            3600,
            RecordData::Caa(CaaRecord::issue("letsencrypt.org")),
        ));
        r
    }

    #[test]
    fn roundtrip_full_message() {
        let msg = sample_response();
        let wire = encode(&msg);
        let back = decode(&wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn compression_shrinks_output() {
        let msg = sample_response();
        let wire = encode(&msg);
        // "example.com" appears 5 times; without compression the message
        // would be much larger. Sanity bound: well under the naive size.
        let naive: usize = 12
            + msg
                .questions
                .iter()
                .map(|q| q.name.wire_len() + 4)
                .sum::<usize>()
            + 200; // loose bound for RRs
        assert!(wire.len() < naive);
        // And the suffix "example.com" must be emitted in full exactly once.
        let needle = b"\x07example\x03com\x00";
        let count = wire.windows(needle.len()).filter(|w| w == needle).count();
        assert_eq!(count, 1, "example.com should be compressed after first use");
    }

    #[test]
    fn txt_multiple_strings() {
        let q = Message::query(9, n("_acme-challenge.example.com"), RecordType::Txt);
        let mut r = Message::response(&q, Rcode::NoError);
        r.answers.push(ResourceRecord::new(
            n("_acme-challenge.example.com"),
            120,
            RecordData::Txt(vec!["token-one".into(), "token-two".into()]),
        ));
        let back = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_truncated() {
        let wire = encode(&sample_response());
        for cut in [0, 5, 11, wire.len() / 2, wire.len() - 1] {
            assert!(decode(&wire[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut wire = encode(&sample_response()).to_vec();
        wire.push(0xAB);
        assert_eq!(decode(&wire), Err(WireError::TrailingBytes));
    }

    #[test]
    fn rejects_pointer_loop() {
        // Header (12 bytes) for 1 question, then a name that is a pointer to
        // itself at offset 12.
        let mut wire = vec![
            0x00, 0x01, 0x01, 0x00, // id, flags (rd)
            0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        wire.extend_from_slice(&[0xC0, 0x0C]); // pointer to offset 12 = itself
        wire.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // qtype/qclass
        let err = decode(&wire).unwrap_err();
        assert_eq!(err, WireError::ForwardPointer);
    }

    #[test]
    fn rejects_forward_pointer() {
        let mut wire = vec![
            0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        wire.extend_from_slice(&[0xC0, 0x20]); // points forward
        wire.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
        assert_eq!(decode(&wire), Err(WireError::ForwardPointer));
    }

    #[test]
    fn rejects_reserved_label_bits() {
        let mut wire = vec![
            0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        wire.push(0x80); // reserved 0b10 prefix
        wire.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
        assert!(matches!(decode(&wire), Err(WireError::BadLabelLength(_))));
    }

    #[test]
    fn nxdomain_roundtrip() {
        let q = Message::query(3, n("gone.example.com"), RecordType::A);
        let r = Message::response(&q, Rcode::NxDomain);
        let back = decode(&encode(&r)).unwrap();
        assert_eq!(back.header.rcode, Rcode::NxDomain);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn decode_normalizes_case() {
        // Hand-encode a query with mixed-case label.
        let mut wire = vec![
            0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        ];
        wire.push(3);
        wire.extend_from_slice(b"FoO");
        wire.push(3);
        wire.extend_from_slice(b"cOm");
        wire.push(0);
        wire.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]);
        let m = decode(&wire).unwrap();
        assert_eq!(m.questions[0].name.to_string(), "foo.com");
    }
}
