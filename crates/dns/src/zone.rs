//! Authoritative zone storage.
//!
//! A [`Zone`] owns an origin (e.g. `example.com`) and a mutable record set.
//! The study's world mutates zones constantly: organizations add CNAMEs when
//! provisioning cloud resources, *fail to purge them* when the resource is
//! released (creating the dangling records the paper studies), and finally
//! delete or re-point them when a hijack is remediated — the timestamp of
//! that correction is one endpoint of the abuse-duration analysis (§4.4).

use crate::name::Name;
use crate::record::{RecordData, RecordType, ResourceRecord, Soa};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of looking a name up inside one zone.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneLookup {
    /// Records of the requested type exist at the name.
    Found(Vec<ResourceRecord>),
    /// The name exists (has records of *some* type) but not the requested
    /// type — a NODATA answer (NOERROR with empty answer section).
    NoData,
    /// A CNAME exists at the name (and the query was not for CNAME).
    Cname(ResourceRecord),
    /// The name does not exist in the zone at all — NXDOMAIN.
    NxDomain,
}

/// One authoritative zone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    origin: Name,
    soa: Soa,
    /// Records keyed by owner name; values hold all types at that name.
    /// BTreeMap for deterministic iteration order in reports.
    records: BTreeMap<Name, Vec<ResourceRecord>>,
    /// Reference counts of proper ancestors of record owners — the "empty
    /// non-terminal" index that makes the NXDOMAIN/NODATA distinction O(1)
    /// instead of a zone scan.
    #[serde(default)]
    non_terminals: BTreeMap<Name, u32>,
    /// Monotonic serial bumped on every mutation.
    serial: u32,
}

impl Zone {
    /// Create a zone with a default SOA.
    pub fn new(origin: Name) -> Self {
        let soa = Soa {
            mname: origin.child("ns1").unwrap_or_else(|_| origin.clone()),
            rname: origin
                .child("hostmaster")
                .unwrap_or_else(|_| origin.clone()),
            serial: 1,
            refresh: 7200,
            retry: 600,
            expire: 1_209_600,
            minimum: 300,
        };
        Zone {
            origin,
            soa,
            records: BTreeMap::new(),
            non_terminals: BTreeMap::new(),
            serial: 1,
        }
    }

    pub fn origin(&self) -> &Name {
        &self.origin
    }

    pub fn soa(&self) -> &Soa {
        &self.soa
    }

    /// Zone serial (bumped on each mutation). The monitoring pipeline uses
    /// serial changes as a cheap "did DNS change" signal.
    pub fn serial(&self) -> u32 {
        self.serial
    }

    fn bump(&mut self) {
        self.serial = self.serial.wrapping_add(1);
        self.soa.serial = self.serial;
    }

    /// Adjust the empty-non-terminal refcounts for one owner name.
    fn track_ancestors(&mut self, name: &Name, delta: i32) {
        let mut anc = name.parent();
        while let Some(a) = anc {
            if !a.ends_with(&self.origin) || a.label_count() < self.origin.label_count() {
                break;
            }
            match delta {
                1 => *self.non_terminals.entry(a.clone()).or_insert(0) += 1,
                _ => {
                    if let Some(c) = self.non_terminals.get_mut(&a) {
                        *c -= 1;
                        if *c == 0 {
                            self.non_terminals.remove(&a);
                        }
                    }
                }
            }
            anc = a.parent();
        }
    }

    /// Add a record. The owner name must be at or under the origin.
    /// Adding a CNAME removes conflicting records at the same name (a CNAME
    /// must be the only record at its node, RFC 1034 §3.6.2); adding any
    /// other type at a name holding a CNAME replaces the CNAME.
    pub fn add(&mut self, rr: ResourceRecord) {
        assert!(
            rr.name.ends_with(&self.origin),
            "record {} outside zone {}",
            rr.name,
            self.origin
        );
        let name = rr.name.clone();
        let entry = self.records.entry(rr.name.clone()).or_default();
        let was_empty = entry.is_empty();
        match rr.rtype() {
            RecordType::Cname => entry.clear(),
            _ => entry.retain(|r| r.rtype() != RecordType::Cname),
        }
        entry.push(rr);
        if was_empty {
            self.track_ancestors(&name, 1);
        }
        self.bump();
    }

    /// Remove all records of `rtype` at `name`. Returns how many were removed.
    pub fn remove_type(&mut self, name: &Name, rtype: RecordType) -> usize {
        let mut removed = 0;
        let mut emptied = false;
        if let Some(rrs) = self.records.get_mut(name) {
            let before = rrs.len();
            rrs.retain(|r| r.rtype() != rtype);
            removed = before - rrs.len();
            if rrs.is_empty() {
                self.records.remove(name);
                emptied = true;
            }
        }
        if emptied {
            self.track_ancestors(name, -1);
        }
        if removed > 0 {
            self.bump();
        }
        removed
    }

    /// Remove every record at `name` (the "purge the stale record"
    /// remediation). Returns how many were removed.
    pub fn remove_name(&mut self, name: &Name) -> usize {
        let removed = self.records.remove(name).map(|v| v.len()).unwrap_or(0);
        if removed > 0 {
            self.track_ancestors(name, -1);
            self.bump();
        }
        removed
    }

    /// Look up `name`/`rtype` with CNAME and wildcard handling.
    pub fn lookup(&self, name: &Name, rtype: RecordType) -> ZoneLookup {
        if let Some(rrs) = self.records.get(name) {
            let matching: Vec<ResourceRecord> =
                rrs.iter().filter(|r| r.rtype() == rtype).cloned().collect();
            if !matching.is_empty() {
                return ZoneLookup::Found(matching);
            }
            if rtype != RecordType::Cname {
                if let Some(cname) = rrs.iter().find(|r| r.rtype() == RecordType::Cname) {
                    return ZoneLookup::Cname(cname.clone());
                }
            }
            return ZoneLookup::NoData;
        }
        // Wildcard synthesis (RFC 4592): look for `*.<suffix>` owners.
        let mut ancestor = name.parent();
        while let Some(anc) = ancestor {
            if !anc.ends_with(&self.origin) {
                break;
            }
            if let Ok(wild) = anc.child("*") {
                if let Some(rrs) = self.records.get(&wild) {
                    let synthesized: Vec<ResourceRecord> = rrs
                        .iter()
                        .filter(|r| r.rtype() == rtype)
                        .map(|r| ResourceRecord {
                            name: name.clone(),
                            ..r.clone()
                        })
                        .collect();
                    if !synthesized.is_empty() {
                        return ZoneLookup::Found(synthesized);
                    }
                    if rtype != RecordType::Cname {
                        if let Some(c) = rrs.iter().find(|r| r.rtype() == RecordType::Cname) {
                            return ZoneLookup::Cname(ResourceRecord {
                                name: name.clone(),
                                ..c.clone()
                            });
                        }
                    }
                    return ZoneLookup::NoData;
                }
            }
            // An "empty non-terminal": if any record exists *under* this
            // name, the name itself exists (NODATA, not NXDOMAIN).
            ancestor = anc.parent();
        }
        // Empty non-terminal check via the ancestor refcount index (O(log n)).
        let has_descendants = self.non_terminals.contains_key(name);
        if has_descendants {
            ZoneLookup::NoData
        } else {
            ZoneLookup::NxDomain
        }
    }

    /// All records at a name (any type).
    pub fn records_at(&self, name: &Name) -> &[ResourceRecord] {
        self.records.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterate over every record in the zone (deterministic order).
    pub fn iter(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.records.values().flatten()
    }

    /// Number of owner names in the zone.
    pub fn name_count(&self) -> usize {
        self.records.len()
    }

    /// Convenience: the CNAME target at `name`, if one exists.
    pub fn cname_target(&self, name: &Name) -> Option<Name> {
        self.records.get(name).and_then(|rrs| {
            rrs.iter().find_map(|r| match &r.data {
                RecordData::Cname(t) => Some(t.clone()),
                _ => None,
            })
        })
    }
}

/// A set of zones with longest-suffix-match dispatch, standing in for "the
/// world's authoritative DNS".
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ZoneSet {
    zones: BTreeMap<Name, Zone>,
}

impl ZoneSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a zone, replacing any existing zone with the same origin.
    pub fn insert(&mut self, zone: Zone) {
        self.zones.insert(zone.origin().clone(), zone);
    }

    /// Create-or-get a zone for `origin`.
    pub fn zone_mut_or_create(&mut self, origin: &Name) -> &mut Zone {
        self.zones
            .entry(origin.clone())
            .or_insert_with(|| Zone::new(origin.clone()))
    }

    /// The zone whose origin is the longest suffix of `name`.
    pub fn find_zone(&self, name: &Name) -> Option<&Zone> {
        let mut probe = Some(name.clone());
        while let Some(p) = probe {
            if let Some(z) = self.zones.get(&p) {
                return Some(z);
            }
            probe = p.parent();
        }
        None
    }

    /// Mutable variant of [`ZoneSet::find_zone`].
    pub fn find_zone_mut(&mut self, name: &Name) -> Option<&mut Zone> {
        let mut probe = Some(name.clone());
        while let Some(p) = probe {
            if self.zones.contains_key(&p) {
                return self.zones.get_mut(&p);
            }
            probe = p.parent();
        }
        None
    }

    pub fn get(&self, origin: &Name) -> Option<&Zone> {
        self.zones.get(origin)
    }

    pub fn get_mut(&mut self, origin: &Name) -> Option<&mut Zone> {
        self.zones.get_mut(origin)
    }

    pub fn len(&self) -> usize {
        self.zones.len()
    }

    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Zone> {
        self.zones.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn a(name: &str, ip: [u8; 4]) -> ResourceRecord {
        ResourceRecord::new(n(name), 300, RecordData::A(Ipv4Addr::from(ip)))
    }

    fn cname(name: &str, target: &str) -> ResourceRecord {
        ResourceRecord::new(n(name), 300, RecordData::Cname(n(target)))
    }

    #[test]
    fn found_nodata_nxdomain() {
        let mut z = Zone::new(n("example.com"));
        z.add(a("www.example.com", [1, 2, 3, 4]));
        assert!(matches!(
            z.lookup(&n("www.example.com"), RecordType::A),
            ZoneLookup::Found(v) if v.len() == 1
        ));
        assert_eq!(
            z.lookup(&n("www.example.com"), RecordType::Mx),
            ZoneLookup::NoData
        );
        assert_eq!(
            z.lookup(&n("gone.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
    }

    #[test]
    fn cname_returned_for_other_types() {
        let mut z = Zone::new(n("example.com"));
        z.add(cname("shop.example.com", "shop-prod.azurewebsites.net"));
        match z.lookup(&n("shop.example.com"), RecordType::A) {
            ZoneLookup::Cname(rr) => {
                assert_eq!(rr.name, n("shop.example.com"));
            }
            other => panic!("expected CNAME, got {other:?}"),
        }
        // Asking for the CNAME itself returns Found.
        assert!(matches!(
            z.lookup(&n("shop.example.com"), RecordType::Cname),
            ZoneLookup::Found(_)
        ));
    }

    #[test]
    fn cname_excludes_other_records() {
        let mut z = Zone::new(n("example.com"));
        z.add(a("x.example.com", [1, 1, 1, 1]));
        z.add(cname("x.example.com", "y.example.com"));
        // CNAME displaced the A record.
        assert!(matches!(
            z.lookup(&n("x.example.com"), RecordType::A),
            ZoneLookup::Cname(_)
        ));
        // And adding an A displaces the CNAME again.
        z.add(a("x.example.com", [2, 2, 2, 2]));
        assert!(matches!(
            z.lookup(&n("x.example.com"), RecordType::A),
            ZoneLookup::Found(_)
        ));
    }

    #[test]
    fn wildcard_synthesis() {
        let mut z = Zone::new(n("example.com"));
        z.add(a("*.apps.example.com", [9, 9, 9, 9]));
        match z.lookup(&n("foo.apps.example.com"), RecordType::A) {
            ZoneLookup::Found(v) => {
                assert_eq!(v[0].name, n("foo.apps.example.com"));
            }
            other => panic!("expected wildcard match, got {other:?}"),
        }
        // Wildcard does not match the owner of the wildcard's parent.
        assert_eq!(
            z.lookup(&n("apps.example.com"), RecordType::A),
            ZoneLookup::NoData // empty non-terminal: *.apps exists below it
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let mut z = Zone::new(n("example.com"));
        z.add(a("a.b.example.com", [1, 2, 3, 4]));
        assert_eq!(
            z.lookup(&n("b.example.com"), RecordType::A),
            ZoneLookup::NoData
        );
    }

    #[test]
    fn removal_and_serial() {
        let mut z = Zone::new(n("example.com"));
        let s0 = z.serial();
        z.add(a("www.example.com", [1, 2, 3, 4]));
        assert!(z.serial() > s0);
        let s1 = z.serial();
        assert_eq!(z.remove_type(&n("www.example.com"), RecordType::A), 1);
        assert!(z.serial() > s1);
        assert_eq!(
            z.lookup(&n("www.example.com"), RecordType::A),
            ZoneLookup::NxDomain
        );
        // Removing a non-existent record does not bump the serial.
        let s2 = z.serial();
        assert_eq!(z.remove_name(&n("nope.example.com")), 0);
        assert_eq!(z.serial(), s2);
    }

    #[test]
    fn zoneset_longest_match() {
        let mut zs = ZoneSet::new();
        zs.insert(Zone::new(n("example.com")));
        zs.insert(Zone::new(n("sub.example.com")));
        assert_eq!(
            zs.find_zone(&n("a.sub.example.com")).unwrap().origin(),
            &n("sub.example.com")
        );
        assert_eq!(
            zs.find_zone(&n("b.example.com")).unwrap().origin(),
            &n("example.com")
        );
        assert!(zs.find_zone(&n("other.net")).is_none());
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_zone_record() {
        let mut z = Zone::new(n("example.com"));
        z.add(a("www.other.net", [1, 2, 3, 4]));
    }

    #[test]
    fn cname_target_helper() {
        let mut z = Zone::new(n("example.com"));
        z.add(cname("s.example.com", "t.azurewebsites.net"));
        assert_eq!(
            z.cname_target(&n("s.example.com")),
            Some(n("t.azurewebsites.net"))
        );
        assert_eq!(z.cname_target(&n("x.example.com")), None);
    }
}
