//! DNS message model (RFC 1035 §4).

use crate::name::Name;
use crate::record::{RecordClass, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};

/// Response codes the study distinguishes. `NxDomain` matters: the paper's
/// feed filtered "more than 87,000,000 non-NXDOMAIN" FQDNs, and hijack
/// remediation usually manifests as a record deletion → NXDOMAIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => return None,
        })
    }
}

/// Operation codes; only QUERY is used by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    Query,
    Status,
}

impl Opcode {
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Status => 2,
        }
    }

    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => Opcode::Query,
            2 => Opcode::Status,
            _ => return None,
        })
    }
}

/// Message header flags and counts. Section counts are derived from the
/// section vectors at encode time; the decoded header keeps them for
/// validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    pub id: u16,
    /// Query (false) or response (true).
    pub qr: bool,
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    pub rcode: Rcode,
}

impl Header {
    pub fn query(id: u16) -> Self {
        Header {
            id,
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: Rcode::NoError,
        }
    }

    pub fn response_to(query: &Header, rcode: Rcode) -> Self {
        Header {
            id: query.id,
            qr: true,
            opcode: query.opcode,
            aa: true,
            tc: false,
            rd: query.rd,
            ra: true,
            rcode,
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    pub name: Name,
    pub qtype: RecordType,
    pub qclass: RecordClass,
}

impl Question {
    pub fn new(name: Name, qtype: RecordType) -> Self {
        Question {
            name,
            qtype,
            qclass: RecordClass::In,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<ResourceRecord>,
    pub authority: Vec<ResourceRecord>,
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// Build a standard recursive query for `name`/`qtype`.
    pub fn query(id: u16, name: Name, qtype: RecordType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(name, qtype)],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Build an (authoritative) response skeleton echoing the question.
    pub fn response(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header::response_to(&query.header, rcode),
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// All answer records of a given type.
    pub fn answers_of(&self, rtype: RecordType) -> impl Iterator<Item = &ResourceRecord> {
        self.answers.iter().filter(move |rr| rr.rtype() == rtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcode_roundtrip() {
        for r in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            assert_eq!(Rcode::from_code(r.code()), Some(r));
        }
        assert_eq!(Rcode::from_code(15), None);
    }

    #[test]
    fn response_echoes_query() {
        let q = Message::query(7, "x.example.com".parse().unwrap(), RecordType::A);
        let r = Message::response(&q, Rcode::NxDomain);
        assert_eq!(r.header.id, 7);
        assert!(r.header.qr);
        assert!(r.header.aa);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
    }

    #[test]
    fn answers_of_filters() {
        use crate::record::RecordData;
        use std::net::Ipv4Addr;
        let mut m = Message::query(1, "a.b".parse().unwrap(), RecordType::A);
        m.answers.push(ResourceRecord::new(
            "a.b".parse().unwrap(),
            60,
            RecordData::Cname("c.d".parse().unwrap()),
        ));
        m.answers.push(ResourceRecord::new(
            "c.d".parse().unwrap(),
            60,
            RecordData::A(Ipv4Addr::LOCALHOST),
        ));
        assert_eq!(m.answers_of(RecordType::A).count(), 1);
        assert_eq!(m.answers_of(RecordType::Cname).count(), 1);
        assert_eq!(m.answers_of(RecordType::Ns).count(), 0);
    }
}
