//! # dangling-dns — DNS substrate for the dangling-resource study
//!
//! A self-contained DNS implementation covering everything the paper's
//! methodology touches:
//!
//! - [`name::Name`] — domain names with RFC 1035 length limits,
//!   case-insensitive comparison, and the suffix matching Algorithm 1 uses to
//!   recognize cloud-generated CNAME targets,
//! - [`record`] — A/AAAA/CNAME/NS/SOA/TXT/MX and the CAA record type that
//!   §5.6.2 evaluates,
//! - [`wire`] — RFC 1035 wire-format encoding and decoding, including name
//!   compression, so messages are exercised the way a real stack would,
//! - [`zone`] — authoritative zone storage with dynamic updates (domain
//!   owners purging or re-pointing records mid-study),
//! - [`server`] — authoritative query answering (CNAME inclusion, NXDOMAIN
//!   vs NODATA distinction, which the collection pipeline depends on),
//! - [`resolver`] — a stub resolver that chases CNAME chains with loop
//!   detection and a TTL cache driven by simulated time.
//!
//! The paper's collection methodology (Algorithm 1) issues A queries and
//! inspects both the CNAME chain and the final A records; this crate provides
//! exactly that interface via [`resolver::Resolver::resolve_a`].

pub mod intern;
pub mod message;
pub mod name;
pub mod record;
pub mod resolver;
pub mod server;
pub mod wire;
pub mod zone;

pub use intern::{Interner, LabelId};
pub use message::{Header, Message, Opcode, Question, Rcode};
pub use name::{Name, NameError};
pub use record::{CaaRecord, RecordClass, RecordData, RecordType, ResourceRecord, Soa};
pub use resolver::{ResolutionInFlight, ResolutionOutcome, Resolver, ResolverConfig};
pub use server::Authority;
pub use zone::{Zone, ZoneSet};
