//! Authoritative query answering.
//!
//! [`Authority`] wraps a [`ZoneSet`] and answers queries the way a real
//! authoritative server would: in-zone CNAME chains are followed and included
//! in the answer section, negative answers carry the zone SOA in the
//! authority section, and out-of-zone names get REFUSED.

use crate::message::{Message, Rcode};
use crate::name::Name;
use crate::record::{RecordData, RecordType, ResourceRecord};
use crate::zone::{ZoneLookup, ZoneSet};

/// An authoritative DNS server over a set of zones.
#[derive(Debug, Default, Clone)]
pub struct Authority {
    zones: ZoneSet,
}

impl Authority {
    pub fn new(zones: ZoneSet) -> Self {
        Authority { zones }
    }

    pub fn zones(&self) -> &ZoneSet {
        &self.zones
    }

    pub fn zones_mut(&mut self) -> &mut ZoneSet {
        &mut self.zones
    }

    /// Answer a single-question query message.
    pub fn answer(&self, query: &Message) -> Message {
        answer_with(&self.zones, query)
    }

    /// Core lookup: returns `(rcode, answers, authority)`.
    pub fn lookup(
        &self,
        name: &Name,
        qtype: RecordType,
    ) -> (Rcode, Vec<ResourceRecord>, Vec<ResourceRecord>) {
        lookup_in(&self.zones, name, qtype)
    }
}

/// Answer a single-question query against a borrowed [`ZoneSet`]. This is
/// the composition point for multi-authority worlds (organization zones +
/// cloud-platform zones served live from their owners).
pub fn answer_with(zones: &ZoneSet, query: &Message) -> Message {
    let Some(q) = query.questions.first() else {
        return Message::response(query, Rcode::FormErr);
    };
    let (rcode, answers, authority) = lookup_in(zones, &q.name, q.qtype);
    let mut resp = Message::response(query, rcode);
    resp.answers = answers;
    resp.authority = authority;
    resp
}

/// Core lookup against a borrowed [`ZoneSet`]: returns
/// `(rcode, answers, authority)`.
///
/// In-zone CNAME chains are chased up to a depth limit; chains that leave
/// the known zones stop with the CNAME as the final answer record (the
/// resolver continues from there), matching real-world behaviour.
pub fn lookup_in(
    zones: &ZoneSet,
    name: &Name,
    qtype: RecordType,
) -> (Rcode, Vec<ResourceRecord>, Vec<ResourceRecord>) {
    {
        if zones.find_zone(name).is_none() {
            return (Rcode::Refused, Vec::new(), Vec::new());
        }
        let mut answers: Vec<ResourceRecord> = Vec::new();
        let mut current = name.clone();
        // A CNAME chain longer than this inside one authority is a
        // misconfiguration; bail out with what we have.
        const MAX_CHAIN: usize = 16;
        for _ in 0..MAX_CHAIN {
            // The chain may cross into a different zone we are also
            // authoritative for.
            let Some(z) = zones.find_zone(&current) else {
                // Chain left our authority; return what we have so far.
                return (Rcode::NoError, answers, Vec::new());
            };
            match z.lookup(&current, qtype) {
                ZoneLookup::Found(mut rrs) => {
                    answers.append(&mut rrs);
                    return (Rcode::NoError, answers, Vec::new());
                }
                ZoneLookup::Cname(rr) => {
                    let target = match &rr.data {
                        RecordData::Cname(t) => t.clone(),
                        _ => unreachable!("ZoneLookup::Cname holds a CNAME"),
                    };
                    answers.push(rr);
                    current = target;
                }
                ZoneLookup::NoData => {
                    let soa = ResourceRecord::new(
                        z.origin().clone(),
                        z.soa().minimum,
                        RecordData::Soa(z.soa().clone()),
                    );
                    // If we already collected CNAMEs the overall rcode stays
                    // NOERROR (the terminal name exists but lacks the type).
                    return (Rcode::NoError, answers, vec![soa]);
                }
                ZoneLookup::NxDomain => {
                    let soa = ResourceRecord::new(
                        z.origin().clone(),
                        z.soa().minimum,
                        RecordData::Soa(z.soa().clone()),
                    );
                    // NXDOMAIN applies to the *final* name of the chain; with
                    // a preceding CNAME the rcode is still NXDOMAIN per
                    // RFC 2308 §2.1.
                    return (Rcode::NxDomain, answers, vec![soa]);
                }
            }
        }
        (Rcode::ServFail, answers, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::zone::Zone;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn build() -> Authority {
        let mut zs = ZoneSet::new();
        let mut ex = Zone::new(n("example.com"));
        ex.add(ResourceRecord::new(
            n("www.example.com"),
            300,
            RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        ex.add(ResourceRecord::new(
            n("shop.example.com"),
            300,
            RecordData::Cname(n("shop-prod.azurewebsites.net")),
        ));
        ex.add(ResourceRecord::new(
            n("alias.example.com"),
            300,
            RecordData::Cname(n("www.example.com")),
        ));
        zs.insert(ex);
        let mut az = Zone::new(n("azurewebsites.net"));
        az.add(ResourceRecord::new(
            n("shop-prod.azurewebsites.net"),
            60,
            RecordData::A(Ipv4Addr::new(20, 40, 60, 80)),
        ));
        zs.insert(az);
        Authority::new(zs)
    }

    #[test]
    fn direct_a() {
        let auth = build();
        let q = Message::query(1, n("www.example.com"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn in_authority_cname_chain_followed() {
        let auth = build();
        let q = Message::query(2, n("shop.example.com"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NoError);
        // CNAME + target A
        assert_eq!(r.answers.len(), 2);
        assert_eq!(r.answers[0].rtype(), RecordType::Cname);
        assert_eq!(r.answers[1].rtype(), RecordType::A);
    }

    #[test]
    fn same_zone_alias() {
        let auth = build();
        let q = Message::query(3, n("alias.example.com"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.answers.len(), 2);
        assert_eq!(r.answers[1].data, RecordData::A(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn nxdomain_with_soa() {
        let auth = build();
        let q = Message::query(4, n("missing.example.com"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert!(r.answers.is_empty());
        assert_eq!(r.authority.len(), 1);
        assert_eq!(r.authority[0].rtype(), RecordType::Soa);
    }

    #[test]
    fn dangling_cname_is_nxdomain_at_target() {
        // The signature situation of the paper: CNAME exists, target zone is
        // ours (azurewebsites.net) but the resource name was released.
        let mut auth = build();
        auth.zones_mut()
            .get_mut(&n("azurewebsites.net"))
            .unwrap()
            .remove_name(&n("shop-prod.azurewebsites.net"));
        let q = Message::query(5, n("shop.example.com"), RecordType::A);
        let r = auth.answer(&q);
        // CNAME is present in answers, final rcode NXDOMAIN.
        assert_eq!(r.header.rcode, Rcode::NxDomain);
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].rtype(), RecordType::Cname);
    }

    #[test]
    fn nodata_for_wrong_type() {
        let auth = build();
        let q = Message::query(6, n("www.example.com"), RecordType::Mx);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::NoError);
        assert!(r.answers.is_empty());
        assert_eq!(r.authority.len(), 1);
    }

    #[test]
    fn refused_outside_authority() {
        let auth = build();
        let q = Message::query(7, n("www.google.com"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::Refused);
    }

    #[test]
    fn cname_loop_servfails() {
        let mut zs = ZoneSet::new();
        let mut z = Zone::new(n("loop.test"));
        z.add(ResourceRecord::new(
            n("a.loop.test"),
            60,
            RecordData::Cname(n("b.loop.test")),
        ));
        z.add(ResourceRecord::new(
            n("b.loop.test"),
            60,
            RecordData::Cname(n("a.loop.test")),
        ));
        zs.insert(z);
        let auth = Authority::new(zs);
        let q = Message::query(8, n("a.loop.test"), RecordType::A);
        let r = auth.answer(&q);
        assert_eq!(r.header.rcode, Rcode::ServFail);
    }
}
