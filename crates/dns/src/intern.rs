//! Global DNS-label interning.
//!
//! At paper scale the pipeline holds millions of [`crate::Name`]s whose
//! label vocabulary is tiny by comparison: a few hundred thousand distinct
//! labels cover 3.1M FQDNs (every name shares its TLD, platform suffix and
//! apex labels with thousands of others). Interning maps each distinct
//! label to a dense [`LabelId`] (`u32`) exactly once, so
//!
//! - a `Name` is a short sequence of `u32`s (inline, no heap for ≤5
//!   labels) instead of an `Arc<[String]>`,
//! - equality, hashing and suffix matching in the hot loops (Algorithm-1
//!   collection, diffing, signature matching, HAC) compare integers, and
//! - each distinct label's bytes exist once per process, a measured input
//!   to the `pipeline.bytes_per_fqdn` budget.
//!
//! The design reuses the dense-id streaming-intern idea of
//! `storelog::intern::InternTable` (first sight assigns the next id), made
//! process-global and concurrent:
//!
//! - `intern` takes a short mutex on the label→id map (construction-time
//!   only: parsing, `child`, deserialization),
//! - `get` (id→str) is lock-free — ids index an append-only chunked table
//!   whose slots are written exactly once before the id escapes the mutex,
//!   so readers on any thread can resolve labels (ordering, display,
//!   serialization) without contending with writers.
//!
//! Ids are assigned in first-intern order, which can differ between runs
//! that construct names in different orders (e.g. different thread
//! schedules discovering CNAME targets). That is sound because ids never
//! reach any output: ordering ([`crate::Name`]'s `Ord`), display and serde
//! all go through the label *strings*, so study results stay byte-identical
//! no matter how ids were assigned — the `intern_equivalence` suite pins
//! this against the pre-interning pipeline. Within one process a label's id
//! is stable forever (append-only, never rehashed), which is what resumed
//! and serve-mode runs rely on.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Dense id of an interned label. `Copy`, 4 bytes; resolves to its string
/// via the owning [`Interner`] (or [`LabelId::as_str`] for the global one).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// The raw dense index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve against the process-global interner — the one every
    /// [`crate::Name`] label belongs to.
    pub fn as_str(self) -> &'static str {
        global().get(self)
    }
}

impl std::ops::Deref for LabelId {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for LabelId {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.as_str(), self.0)
    }
}

/// Chunked id→str table: chunk `k` holds `BASE << k` slots, so the table
/// grows without ever moving a published slot (ids stay valid pointers into
/// it forever — the property the lock-free read side needs).
const BASE: u32 = 1024;
const CHUNKS: usize = 23; // BASE * (2^23 - 1) slots ≈ 8.6e9 > u32::MAX

/// A label interner: dense ids out, strings back, append-only.
///
/// Instantiable so property tests can exercise fresh tables; the pipeline
/// itself uses the [`global`] instance via [`crate::Name`].
pub struct Interner {
    /// Label → id, plus the interned-bytes tally. Writers only.
    map: Mutex<MapState>,
    /// Id → label, readable without the mutex. Slots are `OnceLock`s set
    /// exactly once, inside the mutex, *before* the id is handed out — so
    /// any thread holding a `LabelId` observes an initialized slot.
    chunks: [OnceLock<Box<[OnceLock<&'static str>]>>; CHUNKS],
    len: AtomicUsize,
    bytes: AtomicUsize,
}

struct MapState {
    ids: HashMap<&'static str, u32>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    pub fn new() -> Self {
        Interner {
            map: Mutex::new(MapState {
                ids: HashMap::new(),
            }),
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Intern `label`, returning its dense id — the same id for the same
    /// string, forever, on any thread. The string is copied (and leaked,
    /// deliberately: labels live as long as the process, exactly like the
    /// names built from them) only on first sight.
    pub fn intern(&self, label: &str) -> LabelId {
        let mut map = self.map.lock();
        if let Some(&id) = map.ids.get(label) {
            return LabelId(id);
        }
        let id = map.ids.len() as u32;
        let stored: &'static str = Box::leak(label.to_string().into_boxed_str());
        let (k, slot) = Self::locate(id);
        let chunk = self.chunks[k].get_or_init(|| {
            (0..(BASE as usize) << k)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        chunk[slot]
            .set(stored)
            .expect("intern slot written twice — id allocation raced");
        map.ids.insert(stored, id);
        self.len.store(map.ids.len(), Ordering::Release);
        self.bytes.fetch_add(label.len(), Ordering::Relaxed);
        LabelId(id)
    }

    /// The id of `label` if it is already interned.
    pub fn lookup(&self, label: &str) -> Option<LabelId> {
        self.map.lock().ids.get(label).map(|&id| LabelId(id))
    }

    /// Resolve an id. Lock-free. Panics on an id this interner never
    /// produced (a cross-interner mixup is a program error, never data).
    pub fn get(&self, id: LabelId) -> &'static str {
        let (chunk, slot) = Self::locate(id.0);
        self.chunks[chunk]
            .get()
            .and_then(|c| c[slot].get())
            .copied()
            .expect("LabelId from a different interner")
    }

    /// Distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of distinct label text held (the shared-vocabulary term
    /// of the per-FQDN memory budget; map/table overhead not included).
    pub fn label_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Chunk / in-chunk slot of a dense id: chunk `k` covers ids
    /// `[BASE*(2^k -1), BASE*(2^{k+1}-1))`.
    fn locate(id: u32) -> (usize, usize) {
        let n = id / BASE + 1;
        let k = (u32::BITS - 1 - n.leading_zeros()) as usize;
        let start = BASE as usize * ((1usize << k) - 1);
        (k, id as usize - start)
    }
}

/// The process-global interner every [`crate::Name`] label lives in.
pub fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_id() {
        let t = Interner::new();
        let a = t.intern("com");
        let b = t.intern("net");
        assert_eq!(t.intern("com"), a);
        assert_ne!(a, b);
        assert_eq!(t.get(a), "com");
        assert_eq!(t.get(b), "net");
        assert_eq!(t.len(), 2);
        assert_eq!(t.label_bytes(), 6);
    }

    #[test]
    fn ids_are_dense_in_first_sight_order() {
        let t = Interner::new();
        for (i, l) in ["a", "b", "c", "a", "d", "b"].iter().enumerate() {
            let id = t.intern(l);
            let expect = match *l {
                "a" => 0,
                "b" => 1,
                "c" => 2,
                "d" => 3,
                _ => unreachable!(),
            };
            assert_eq!(id.index(), expect, "step {i}");
        }
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn lookup_without_insert() {
        let t = Interner::new();
        assert_eq!(t.lookup("x"), None);
        let id = t.intern("x");
        assert_eq!(t.lookup("x"), Some(id));
    }

    #[test]
    fn chunk_locate_covers_boundaries() {
        // First chunk holds BASE slots, then doubling.
        assert_eq!(Interner::locate(0), (0, 0));
        assert_eq!(Interner::locate(BASE - 1), (0, BASE as usize - 1));
        assert_eq!(Interner::locate(BASE), (1, 0));
        // Chunk 1 holds 2*BASE slots covering ids [BASE, 3*BASE).
        assert_eq!(Interner::locate(3 * BASE - 1), (1, 2 * BASE as usize - 1));
        assert_eq!(Interner::locate(3 * BASE), (2, 0));
        assert!(Interner::locate(u32::MAX).0 < CHUNKS);
    }

    #[test]
    fn growth_across_chunks() {
        let t = Interner::new();
        let n = (BASE * 3 + 17) as usize;
        let ids: Vec<LabelId> = (0..n).map(|i| t.intern(&format!("l{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.get(*id), format!("l{i}"));
            assert_eq!(id.index() as usize, i);
        }
        assert_eq!(t.len(), n);
    }

    #[test]
    fn concurrent_interning_agrees() {
        // Eight threads hammer an overlapping label set; every thread must
        // get the same id for the same string, and ids must resolve from
        // any thread (the lock-free read side).
        let t = std::sync::Arc::new(Interner::new());
        let runs: Vec<Vec<(String, LabelId)>> = {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let t = t.clone();
                    std::thread::spawn(move || {
                        (0..500usize)
                            .map(|i| {
                                let label = format!("lbl{}", (i * 7 + w) % 311);
                                let id = t.intern(&label);
                                assert_eq!(t.get(id), label, "read-own-write");
                                (label, id)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        let mut by_label: HashMap<String, LabelId> = HashMap::new();
        for run in runs {
            for (label, id) in run {
                assert_eq!(t.get(id), label);
                by_label
                    .entry(label)
                    .and_modify(|prev| assert_eq!(*prev, id))
                    .or_insert(id);
            }
        }
        assert_eq!(t.len(), by_label.len());
        assert!(t.len() <= 311);
    }
}
