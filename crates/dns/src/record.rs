//! Resource records.
//!
//! Covers the record types the study touches: `A` and `CNAME` (Algorithm 1's
//! inputs), `NS`/`SOA` (zone plumbing and the stale-NS attack surface of
//! related work), `TXT` (ACME DNS-01 style validation), `MX`, `AAAA`, and
//! `CAA` (§5.6.2's proposed-and-rejected countermeasure).

use crate::name::Name;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS record type codes (RFC 1035 / RFC 3596 / RFC 8659).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Mx,
    Txt,
    Aaaa,
    Caa,
}

impl RecordType {
    /// Numeric RR TYPE for wire encoding.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Caa => 257,
        }
    }

    /// Inverse of [`RecordType::code`].
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            257 => RecordType::Caa,
            _ => return None,
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
            RecordType::Caa => "CAA",
        };
        write!(f, "{s}")
    }
}

/// Record class. Only `IN` is used; kept for wire fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordClass {
    In,
}

impl RecordClass {
    pub fn code(self) -> u16 {
        1
    }

    pub fn from_code(code: u16) -> Option<Self> {
        (code == 1).then_some(RecordClass::In)
    }
}

/// SOA RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Soa {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// CAA RDATA (RFC 8659).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CaaRecord {
    /// Only the critical bit (0x80) of the flags octet is defined.
    pub flags: u8,
    /// Property tag: `issue`, `issuewild`, or `iodef`.
    pub tag: String,
    /// Property value, e.g. a CA domain (`letsencrypt.org`) or `";"` to deny
    /// all issuance.
    pub value: String,
}

impl CaaRecord {
    pub fn issue(ca: &str) -> Self {
        CaaRecord {
            flags: 0,
            tag: "issue".into(),
            value: ca.into(),
        }
    }

    pub fn issue_wild(ca: &str) -> Self {
        CaaRecord {
            flags: 0,
            tag: "issuewild".into(),
            value: ca.into(),
        }
    }

    /// `issue ";"` — forbid all issuance.
    pub fn deny_all() -> Self {
        CaaRecord {
            flags: 0,
            tag: "issue".into(),
            value: ";".into(),
        }
    }

    pub fn is_critical(&self) -> bool {
        self.flags & 0x80 != 0
    }
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Cname(Name),
    Ns(Name),
    Soa(Soa),
    Mx { preference: u16, exchange: Name },
    Txt(Vec<String>),
    Caa(CaaRecord),
}

impl RecordData {
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Soa(_) => RecordType::Soa,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Caa(_) => RecordType::Caa,
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(ip) => write!(f, "{ip}"),
            RecordData::Aaaa(ip) => write!(f, "{ip}"),
            RecordData::Cname(n) => write!(f, "{n}"),
            RecordData::Ns(n) => write!(f, "{n}"),
            RecordData::Soa(s) => write!(f, "{} {} {}", s.mname, s.rname, s.serial),
            RecordData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RecordData::Txt(parts) => write!(f, "{:?}", parts),
            RecordData::Caa(c) => write!(f, "{} {} {:?}", c.flags, c.tag, c.value),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRecord {
    pub name: Name,
    pub class: RecordClass,
    pub ttl: u32,
    pub data: RecordData,
}

impl ResourceRecord {
    pub fn new(name: Name, ttl: u32, data: RecordData) -> Self {
        ResourceRecord {
            name,
            class: RecordClass::In,
            ttl,
            data,
        }
    }

    pub fn rtype(&self) -> RecordType {
        self.data.rtype()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} IN {} {}",
            self.name,
            self.ttl,
            self.rtype(),
            self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Caa,
        ] {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn data_knows_its_type() {
        let n: Name = "x.example.com".parse().unwrap();
        assert_eq!(RecordData::Cname(n.clone()).rtype(), RecordType::Cname);
        assert_eq!(
            RecordData::A(Ipv4Addr::new(1, 2, 3, 4)).rtype(),
            RecordType::A
        );
        assert_eq!(
            RecordData::Mx {
                preference: 10,
                exchange: n
            }
            .rtype(),
            RecordType::Mx
        );
    }

    #[test]
    fn caa_helpers() {
        let c = CaaRecord::issue("letsencrypt.org");
        assert_eq!(c.tag, "issue");
        assert!(!c.is_critical());
        let d = CaaRecord::deny_all();
        assert_eq!(d.value, ";");
        let crit = CaaRecord {
            flags: 0x80,
            tag: "issue".into(),
            value: "x".into(),
        };
        assert!(crit.is_critical());
    }

    #[test]
    fn display_presentation() {
        let rr = ResourceRecord::new(
            "www.example.com".parse().unwrap(),
            300,
            RecordData::A(Ipv4Addr::new(93, 184, 216, 34)),
        );
        assert_eq!(rr.to_string(), "www.example.com 300 IN A 93.184.216.34");
    }
}
