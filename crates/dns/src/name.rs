//! Domain names.
//!
//! [`Name`] stores a fully-qualified domain name as a vector of lowercase
//! labels. Comparison, hashing and suffix matching are case-insensitive, as
//! DNS requires. RFC 1035 length limits (63 octets per label, 255 octets per
//! name including the root length byte) are enforced at construction so wire
//! encoding can never fail on a valid `Name`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Errors produced when constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `foo..com`).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside `[A-Za-z0-9-_*]`.
    ///
    /// Underscore is permitted (service labels like `_acme-challenge`),
    /// asterisk only as a standalone leftmost label (wildcards).
    InvalidCharacter(char),
    /// `*` appeared somewhere other than as the entire leftmost label.
    BadWildcard,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::InvalidCharacter(c) => write!(f, "invalid character {c:?}"),
            NameError::BadWildcard => write!(f, "wildcard label must be leftmost and alone"),
        }
    }
}

impl std::error::Error for NameError {}

/// A fully-qualified, case-normalized domain name.
///
/// ```
/// use dns::Name;
/// let n: Name = "Foo.Example.COM".parse().unwrap();
/// assert_eq!(n.to_string(), "foo.example.com");
/// assert!(n.ends_with(&"example.com".parse().unwrap()));
/// assert_eq!(n.label_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    /// Labels in most-significant-last order: `www.example.com` is
    /// `["www", "example", "com"]`. Always lowercase.
    ///
    /// Shared storage: a `Name` is immutable after construction (every
    /// operation builds a new one), so cloning — which the monitoring
    /// pipeline does per FQDN per round — is a reference-count bump, and
    /// names move freely across crawl-shard threads.
    labels: Arc<[String]>,
}

impl Name {
    /// The DNS root (empty name).
    pub fn root() -> Self {
        Name {
            labels: Vec::new().into(),
        }
    }

    /// Build from an iterator of labels (leftmost first).
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Vec::new();
        for l in labels {
            out.push(validate_label(l.as_ref())?);
        }
        let name = Name { labels: out.into() };
        name.check_total_length()?;
        name.check_wildcard()?;
        Ok(name)
    }

    /// Parse from dotted presentation form. A single trailing dot is allowed
    /// and ignored (`"example.com."`).
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Self::from_labels(s.split('.'))
    }

    /// The labels, leftmost first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.labels.first().map(|l| l == "*").unwrap_or(false)
    }

    /// Length of the name in uncompressed wire form, including the root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// True if `self` equals `suffix` or is a subdomain of it.
    /// `ends_with(root)` is true for every name.
    pub fn ends_with(&self, suffix: &Name) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - suffix.labels.len();
        self.labels[offset..] == suffix.labels[..]
    }

    /// True if `self` is a *strict* subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        self.label_count() > ancestor.label_count() && self.ends_with(ancestor)
    }

    /// The immediate parent (drops the leftmost label). Root's parent is None.
    pub fn parent(&self) -> Option<Name> {
        if self.labels.is_empty() {
            None
        } else {
            Some(Name {
                labels: self.labels[1..].to_vec().into(),
            })
        }
    }

    /// Prepend a label, producing a child name.
    pub fn child(&self, label: &str) -> Result<Name, NameError> {
        let l = validate_label(label)?;
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(l);
        labels.extend(self.labels.iter().cloned());
        let name = Name {
            labels: labels.into(),
        };
        name.check_total_length()?;
        name.check_wildcard()?;
        Ok(name)
    }

    /// The top-level domain label, if any (`"com"` for `www.example.com`).
    pub fn tld(&self) -> Option<&str> {
        self.labels.last().map(|s| s.as_str())
    }

    /// The registrable second-level domain (`example.com` for
    /// `a.b.example.com`), treating the last two labels as the SLD. The
    /// paper's dataset reasons in terms of SLDs (Figures 4, 5, 10, 18); a
    /// public-suffix list is out of scope for the synthetic world, which only
    /// generates two-label registrable domains.
    pub fn sld(&self) -> Option<Name> {
        if self.labels.len() < 2 {
            return None;
        }
        Some(Name {
            labels: self.labels[self.labels.len() - 2..].to_vec().into(),
        })
    }

    /// True if the name has more labels than its SLD, i.e. it is a subdomain
    /// like `www.example.com` rather than `example.com` itself.
    pub fn is_subdomain(&self) -> bool {
        self.labels.len() > 2
    }

    /// Match against a wildcard owner name per RFC 4592: `*.example.com`
    /// matches any name with at least one label followed by `example.com`.
    pub fn matches_wildcard(&self, pattern: &Name) -> bool {
        if !pattern.is_wildcard() {
            return self == pattern;
        }
        let suffix = Name {
            labels: pattern.labels[1..].to_vec().into(),
        };
        self.is_subdomain_of(&suffix)
    }

    fn check_total_length(&self) -> Result<(), NameError> {
        if self.wire_len() > 255 {
            Err(NameError::NameTooLong)
        } else {
            Ok(())
        }
    }

    fn check_wildcard(&self) -> Result<(), NameError> {
        for (i, l) in self.labels.iter().enumerate() {
            if l.contains('*') && (l != "*" || i != 0) {
                return Err(NameError::BadWildcard);
            }
        }
        Ok(())
    }
}

fn validate_label(label: &str) -> Result<String, NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel);
    }
    if label.len() > 63 {
        return Err(NameError::LabelTooLong(label.to_string()));
    }
    for c in label.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '*';
        if !ok {
            return Err(NameError::InvalidCharacter(c));
        }
    }
    Ok(label.to_ascii_lowercase())
}

impl fmt::Display for Name {
    /// The root displays as `"."`; other names display dotted without a
    /// trailing dot (presentation form used throughout the study output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Names serialize as their dotted presentation form (`"www.example.com"`,
/// root as `"."`), the shape every DNS dataset and the study's own output
/// use, rather than as a label array.
impl Serialize for Name {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for Name {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::unexpected("domain name string", v))?;
        Name::parse(s).map_err(|e| serde::Error::custom(format!("invalid name {s:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("Example.COM").to_string(), "example.com");
        assert_eq!(n("example.com.").to_string(), "example.com");
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(n("").label_count(), 0);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("WWW.Example.Com"), n("www.example.com"));
    }

    #[test]
    fn label_limits() {
        let long = "a".repeat(63);
        assert!(Name::parse(&format!("{long}.com")).is_ok());
        let too_long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&format!("{too_long}.com")),
            Err(NameError::LabelTooLong(_))
        ));
    }

    #[test]
    fn total_length_limit() {
        // 4 labels of 63 = 4*64+1 = 257 > 255
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert_eq!(Name::parse(&s), Err(NameError::NameTooLong));
        // 3 labels of 63 + one of 59: 3*64 + 60 + 1 = 253 <= 255
        let s = format!("{l}.{l}.{l}.{}", "a".repeat(59));
        assert!(Name::parse(&s).is_ok());
    }

    #[test]
    fn invalid_characters() {
        assert!(matches!(
            Name::parse("exa mple.com"),
            Err(NameError::InvalidCharacter(' '))
        ));
        assert!(matches!(
            Name::parse("foo..com"),
            Err(NameError::EmptyLabel)
        ));
        assert!(Name::parse("_acme-challenge.example.com").is_ok());
    }

    #[test]
    fn suffix_matching() {
        let fqdn = n("shop.assets.example.azurewebsites.net");
        assert!(fqdn.ends_with(&n("azurewebsites.net")));
        assert!(fqdn.ends_with(&n("example.azurewebsites.net")));
        assert!(!fqdn.ends_with(&n("amazonaws.com")));
        assert!(fqdn.ends_with(&Name::root()));
        assert!(fqdn.ends_with(&fqdn));
        assert!(!n("net").ends_with(&fqdn));
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("a.example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn parent_child() {
        let p = n("example.com");
        let c = p.child("www").unwrap();
        assert_eq!(c, n("www.example.com"));
        assert_eq!(c.parent().unwrap(), p);
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn sld_and_tld() {
        assert_eq!(n("a.b.example.com").sld().unwrap(), n("example.com"));
        assert_eq!(n("example.com").sld().unwrap(), n("example.com"));
        assert_eq!(n("com").sld(), None);
        assert_eq!(n("a.b.example.com").tld(), Some("com"));
        assert!(n("a.example.com").is_subdomain());
        assert!(!n("example.com").is_subdomain());
    }

    #[test]
    fn wildcards() {
        let w = n("*.example.com");
        assert!(w.is_wildcard());
        assert!(n("foo.example.com").matches_wildcard(&w));
        assert!(n("a.b.example.com").matches_wildcard(&w));
        assert!(!n("example.com").matches_wildcard(&w));
        assert!(!n("other.com").matches_wildcard(&w));
        // wildcard must be leftmost and alone
        assert_eq!(Name::parse("foo.*.com"), Err(NameError::BadWildcard));
        assert_eq!(Name::parse("f*o.com"), Err(NameError::BadWildcard));
    }

    #[test]
    fn wire_len() {
        // example.com: 1+7 + 1+3 + 1 = 13
        assert_eq!(n("example.com").wire_len(), 13);
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn serde_dotted_string_roundtrip() {
        use serde::{Deserialize, Serialize, Value};
        let name = n("www.Example.com");
        assert_eq!(
            name.to_json_value(),
            Value::String("www.example.com".into())
        );
        assert_eq!(Name::from_json_value(&name.to_json_value()), Ok(name));
        // Root survives the trip through its "." presentation form.
        assert_eq!(
            Name::from_json_value(&Name::root().to_json_value()),
            Ok(Name::root())
        );
        assert!(Name::from_json_value(&Value::String("bad domain".into())).is_err());
    }

    #[test]
    fn clone_shares_storage() {
        let a = n("deep.sub.example.com");
        let b = a.clone();
        // The Arc-backed label storage is shared, not copied.
        assert!(std::ptr::eq(a.labels().as_ptr(), b.labels().as_ptr()));
    }
}
