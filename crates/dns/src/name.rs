//! Domain names.
//!
//! [`Name`] stores a fully-qualified domain name as a sequence of interned
//! lowercase labels (dense [`LabelId`]s into the process-global
//! [`crate::intern`] table). Comparison, hashing and suffix matching are
//! case-insensitive, as DNS requires, and — because equal labels have equal
//! ids — equality, hashing and suffix matching compare integers, never
//! strings. Ordering and display resolve ids back to label text, so the
//! canonical (lexicographic) order every pipeline pass sorts by is exactly
//! what it was when labels were stored as strings. RFC 1035 length limits
//! (63 octets per label, 255 octets per name including the root length
//! byte) are enforced at construction so wire encoding can never fail on a
//! valid `Name`.
//!
//! Names of up to [`INLINE_LABELS`] labels (which covers every name the
//! synthetic world generates, and all but pathological real-world FQDNs)
//! are stored inline: cloning is a 24-byte copy and costs no allocation or
//! reference-count traffic at all. Longer names spill to a shared
//! `Arc<[LabelId]>`.

use crate::intern::{self, LabelId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Errors produced when constructing a [`Name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (e.g. `foo..com`).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The whole name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside `[A-Za-z0-9-_*]`.
    ///
    /// Underscore is permitted (service labels like `_acme-challenge`),
    /// asterisk only as a standalone leftmost label (wildcards).
    InvalidCharacter(char),
    /// `*` appeared somewhere other than as the entire leftmost label.
    BadWildcard,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::InvalidCharacter(c) => write!(f, "invalid character {c:?}"),
            NameError::BadWildcard => write!(f, "wildcard label must be leftmost and alone"),
        }
    }
}

impl std::error::Error for NameError {}

/// Labels stored inline before spilling to shared heap storage.
pub const INLINE_LABELS: usize = 5;

/// Label storage: id sequence, inline for short names.
#[derive(Clone)]
enum Labels {
    Inline {
        len: u8,
        ids: [LabelId; INLINE_LABELS],
    },
    Heap(Arc<[LabelId]>),
}

/// A fully-qualified, case-normalized domain name.
///
/// ```
/// use dns::Name;
/// let n: Name = "Foo.Example.COM".parse().unwrap();
/// assert_eq!(n.to_string(), "foo.example.com");
/// assert!(n.ends_with(&"example.com".parse().unwrap()));
/// assert_eq!(n.label_count(), 3);
/// ```
#[derive(Clone)]
pub struct Name {
    /// Interned labels in most-significant-last order: `www.example.com` is
    /// `["www", "example", "com"]`. Always lowercase (enforced at intern
    /// time by construction-path validation).
    labels: Labels,
}

impl Name {
    /// The DNS root (empty name).
    pub fn root() -> Self {
        Name::from_ids(&[])
    }

    /// Build from an already-interned id slice (internal fast path: parent,
    /// suffix and wildcard operations never revalidate or re-intern).
    fn from_ids(ids: &[LabelId]) -> Self {
        if ids.len() <= INLINE_LABELS {
            let mut inline = [LabelId(0); INLINE_LABELS];
            inline[..ids.len()].copy_from_slice(ids);
            Name {
                labels: Labels::Inline {
                    len: ids.len() as u8,
                    ids: inline,
                },
            }
        } else {
            Name {
                labels: Labels::Heap(ids.into()),
            }
        }
    }

    /// Build from an iterator of labels (leftmost first).
    pub fn from_labels<I, S>(labels: I) -> Result<Self, NameError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids = Vec::new();
        for l in labels {
            ids.push(validate_label(l.as_ref())?);
        }
        let name = Name::from_ids(&ids);
        name.check_total_length()?;
        name.check_wildcard()?;
        Ok(name)
    }

    /// Parse from dotted presentation form. A single trailing dot is allowed
    /// and ignored (`"example.com."`).
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Self::from_labels(s.split('.'))
    }

    /// The interned label ids, leftmost first. Resolve one with
    /// [`LabelId::as_str`] (or rely on its `Deref<Target = str>`).
    pub fn labels(&self) -> &[LabelId] {
        match &self.labels {
            Labels::Inline { len, ids } => &ids[..*len as usize],
            Labels::Heap(ids) => ids,
        }
    }

    /// The labels as strings, leftmost first.
    pub fn label_strs(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.labels().iter().map(|l| l.as_str())
    }

    pub fn label_count(&self) -> usize {
        self.labels().len()
    }

    pub fn is_root(&self) -> bool {
        self.labels().is_empty()
    }

    /// Whether the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.labels().first() == Some(&star_id())
    }

    /// Length of the name in uncompressed wire form, including the root byte.
    pub fn wire_len(&self) -> usize {
        1 + self.label_strs().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// True if `self` equals `suffix` or is a subdomain of it — a pure
    /// integer-slice comparison on the interned ids.
    /// `ends_with(root)` is true for every name.
    pub fn ends_with(&self, suffix: &Name) -> bool {
        let mine = self.labels();
        let theirs = suffix.labels();
        if theirs.len() > mine.len() {
            return false;
        }
        mine[mine.len() - theirs.len()..] == *theirs
    }

    /// True if `self` is a *strict* subdomain of `ancestor`.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        self.label_count() > ancestor.label_count() && self.ends_with(ancestor)
    }

    /// The immediate parent (drops the leftmost label). Root's parent is None.
    pub fn parent(&self) -> Option<Name> {
        let ids = self.labels();
        if ids.is_empty() {
            None
        } else {
            Some(Name::from_ids(&ids[1..]))
        }
    }

    /// Prepend a label, producing a child name.
    pub fn child(&self, label: &str) -> Result<Name, NameError> {
        let l = validate_label(label)?;
        let mut ids = Vec::with_capacity(self.label_count() + 1);
        ids.push(l);
        ids.extend_from_slice(self.labels());
        let name = Name::from_ids(&ids);
        name.check_total_length()?;
        name.check_wildcard()?;
        Ok(name)
    }

    /// The top-level domain label, if any (`"com"` for `www.example.com`).
    pub fn tld(&self) -> Option<&'static str> {
        self.labels().last().map(|l| l.as_str())
    }

    /// The registrable second-level domain (`example.com` for
    /// `a.b.example.com`), treating the last two labels as the SLD. The
    /// paper's dataset reasons in terms of SLDs (Figures 4, 5, 10, 18); a
    /// public-suffix list is out of scope for the synthetic world, which only
    /// generates two-label registrable domains.
    pub fn sld(&self) -> Option<Name> {
        let ids = self.labels();
        if ids.len() < 2 {
            return None;
        }
        Some(Name::from_ids(&ids[ids.len() - 2..]))
    }

    /// True if the name has more labels than its SLD, i.e. it is a subdomain
    /// like `www.example.com` rather than `example.com` itself.
    pub fn is_subdomain(&self) -> bool {
        self.label_count() > 2
    }

    /// Match against a wildcard owner name per RFC 4592: `*.example.com`
    /// matches any name with at least one label followed by `example.com`.
    pub fn matches_wildcard(&self, pattern: &Name) -> bool {
        if !pattern.is_wildcard() {
            return self == pattern;
        }
        let suffix = Name::from_ids(&pattern.labels()[1..]);
        self.is_subdomain_of(&suffix)
    }

    /// Heap bytes this name holds beyond `size_of::<Name>()` — the term a
    /// per-FQDN memory budget charges per stored name. Inline names cost
    /// zero; spilled names pay their shared `Arc` allocation (counted in
    /// full: sharing is an optimization the budget should not rely on).
    /// The interned label text itself is charged once per process via
    /// [`crate::intern::Interner::label_bytes`], not per name.
    pub fn heap_bytes(&self) -> usize {
        match &self.labels {
            Labels::Inline { .. } => 0,
            // Arc<[T]> allocation: strong + weak counts + the slice.
            Labels::Heap(ids) => 2 * std::mem::size_of::<usize>() + std::mem::size_of_val(&ids[..]),
        }
    }

    fn check_total_length(&self) -> Result<(), NameError> {
        if self.wire_len() > 255 {
            Err(NameError::NameTooLong)
        } else {
            Ok(())
        }
    }

    fn check_wildcard(&self) -> Result<(), NameError> {
        let star = star_id();
        for (i, l) in self.labels().iter().enumerate() {
            if (*l == star && i != 0) || (*l != star && l.as_str().contains('*')) {
                return Err(NameError::BadWildcard);
            }
        }
        Ok(())
    }
}

/// The interned id of the wildcard label, cached so `is_wildcard` is one
/// integer compare.
fn star_id() -> LabelId {
    use std::sync::OnceLock;
    static STAR: OnceLock<LabelId> = OnceLock::new();
    *STAR.get_or_init(|| intern::global().intern("*"))
}

fn validate_label(label: &str) -> Result<LabelId, NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel);
    }
    if label.len() > 63 {
        return Err(NameError::LabelTooLong(label.to_string()));
    }
    let mut lower = false;
    for c in label.chars() {
        let ok = c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '*';
        if !ok {
            return Err(NameError::InvalidCharacter(c));
        }
        lower |= c.is_ascii_uppercase();
    }
    if lower {
        Ok(intern::global().intern(&label.to_ascii_lowercase()))
    } else {
        // Fast path: already lowercase (the overwhelmingly common case at
        // paper scale), no temporary allocation.
        Ok(intern::global().intern(label))
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels() == other.labels()
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.labels().hash(state);
    }
}

/// Canonical order: lexicographic over label *strings*, leftmost label
/// first — byte-for-byte the order `Arc<[String]>` storage derived, which
/// every canonical-order reassembly and `BTreeMap` in the pipeline relies
/// on. Equal ids short-circuit without touching label text; the interner is
/// injective, so unequal ids always resolve to unequal strings.
impl Ord for Name {
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.labels();
        let b = other.labels();
        for (x, y) in a.iter().zip(b.iter()) {
            if x != y {
                return x.as_str().cmp(y.as_str());
            }
        }
        a.len().cmp(&b.len())
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", self.to_string())
    }
}

impl fmt::Display for Name {
    /// The root displays as `"."`; other names display dotted without a
    /// trailing dot (presentation form used throughout the study output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for (i, l) in self.label_strs().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            f.write_str(l)?;
        }
        Ok(())
    }
}

impl FromStr for Name {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

/// Names serialize as their dotted presentation form (`"www.example.com"`,
/// root as `"."`), the shape every DNS dataset and the study's own output
/// use, rather than as a label array.
impl Serialize for Name {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl Deserialize for Name {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::unexpected("domain name string", v))?;
        Name::parse(s).map_err(|e| serde::Error::custom(format!("invalid name {s:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("Example.COM").to_string(), "example.com");
        assert_eq!(n("example.com.").to_string(), "example.com");
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(n("").label_count(), 0);
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(n("WWW.Example.Com"), n("www.example.com"));
    }

    #[test]
    fn label_limits() {
        let long = "a".repeat(63);
        assert!(Name::parse(&format!("{long}.com")).is_ok());
        let too_long = "a".repeat(64);
        assert!(matches!(
            Name::parse(&format!("{too_long}.com")),
            Err(NameError::LabelTooLong(_))
        ));
    }

    #[test]
    fn total_length_limit() {
        // 4 labels of 63 = 4*64+1 = 257 > 255
        let l = "a".repeat(63);
        let s = format!("{l}.{l}.{l}.{l}");
        assert_eq!(Name::parse(&s), Err(NameError::NameTooLong));
        // 3 labels of 63 + one of 59: 3*64 + 60 + 1 = 253 <= 255
        let s = format!("{l}.{l}.{l}.{}", "a".repeat(59));
        assert!(Name::parse(&s).is_ok());
    }

    #[test]
    fn invalid_characters() {
        assert!(matches!(
            Name::parse("exa mple.com"),
            Err(NameError::InvalidCharacter(' '))
        ));
        assert!(matches!(
            Name::parse("foo..com"),
            Err(NameError::EmptyLabel)
        ));
        assert!(Name::parse("_acme-challenge.example.com").is_ok());
    }

    #[test]
    fn suffix_matching() {
        let fqdn = n("shop.assets.example.azurewebsites.net");
        assert!(fqdn.ends_with(&n("azurewebsites.net")));
        assert!(fqdn.ends_with(&n("example.azurewebsites.net")));
        assert!(!fqdn.ends_with(&n("amazonaws.com")));
        assert!(fqdn.ends_with(&Name::root()));
        assert!(fqdn.ends_with(&fqdn));
        assert!(!n("net").ends_with(&fqdn));
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("a.example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
    }

    #[test]
    fn parent_child() {
        let p = n("example.com");
        let c = p.child("www").unwrap();
        assert_eq!(c, n("www.example.com"));
        assert_eq!(c.parent().unwrap(), p);
        assert_eq!(Name::root().parent(), None);
    }

    #[test]
    fn sld_and_tld() {
        assert_eq!(n("a.b.example.com").sld().unwrap(), n("example.com"));
        assert_eq!(n("example.com").sld().unwrap(), n("example.com"));
        assert_eq!(n("com").sld(), None);
        assert_eq!(n("a.b.example.com").tld(), Some("com"));
        assert!(n("a.example.com").is_subdomain());
        assert!(!n("example.com").is_subdomain());
    }

    #[test]
    fn wildcards() {
        let w = n("*.example.com");
        assert!(w.is_wildcard());
        assert!(n("foo.example.com").matches_wildcard(&w));
        assert!(n("a.b.example.com").matches_wildcard(&w));
        assert!(!n("example.com").matches_wildcard(&w));
        assert!(!n("other.com").matches_wildcard(&w));
        // wildcard must be leftmost and alone
        assert_eq!(Name::parse("foo.*.com"), Err(NameError::BadWildcard));
        assert_eq!(Name::parse("f*o.com"), Err(NameError::BadWildcard));
    }

    #[test]
    fn wire_len() {
        // example.com: 1+7 + 1+3 + 1 = 13
        assert_eq!(n("example.com").wire_len(), 13);
        assert_eq!(Name::root().wire_len(), 1);
    }

    #[test]
    fn serde_dotted_string_roundtrip() {
        use serde::{Deserialize, Serialize, Value};
        let name = n("www.Example.com");
        assert_eq!(
            name.to_json_value(),
            Value::String("www.example.com".into())
        );
        assert_eq!(Name::from_json_value(&name.to_json_value()), Ok(name));
        // Root survives the trip through its "." presentation form.
        assert_eq!(
            Name::from_json_value(&Name::root().to_json_value()),
            Ok(Name::root())
        );
        assert!(Name::from_json_value(&Value::String("bad domain".into())).is_err());
    }

    #[test]
    fn interned_ids_are_shared_across_names() {
        let a = n("deep.sub.example.com");
        let b = n("other.example.com");
        // Same label, same id — the property every hot-loop comparison
        // relies on.
        assert_eq!(a.labels()[2], b.labels()[1]);
        assert_eq!(a.labels().last(), b.labels().last());
        assert_eq!(a.labels()[2].as_str(), "example");
    }

    #[test]
    fn short_names_are_inline_long_names_share_storage() {
        // ≤ INLINE_LABELS labels: no heap at all.
        let short = n("a.b.c.example.com");
        assert_eq!(short.label_count(), INLINE_LABELS);
        assert_eq!(short.heap_bytes(), 0);
        // Longer names spill to a shared Arc: clones alias the storage.
        let long = n("a.b.c.d.example.com");
        assert!(long.heap_bytes() > 0);
        let clone = long.clone();
        assert!(std::ptr::eq(
            long.labels().as_ptr(),
            clone.labels().as_ptr()
        ));
        assert_eq!(long, clone);
    }

    #[test]
    fn ordering_matches_string_label_order() {
        // The pre-interning derived order compared label Strings
        // lexicographically, leftmost first, shorter-prefix-first. Pin a
        // few adversarial pairs (shared prefixes, prefix labels, differing
        // lengths) against that oracle.
        let cases = [
            "a.com",
            "aa.com",
            "a.b.com",
            "b.com",
            "a.ab.com",
            "z.a.com",
            "example.com",
            "example.net",
            "www.example.com",
            ".",
        ];
        for x in &cases {
            for y in &cases {
                let nx = n(x);
                let ny = n(y);
                let want = nx
                    .label_strs()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
                    .cmp(&ny.label_strs().map(str::to_string).collect::<Vec<_>>());
                assert_eq!(nx.cmp(&ny), want, "{x} vs {y}");
            }
        }
    }
}
