//! Streaming string intern tables for format-v2 payloads.
//!
//! Both sides of the codec maintain the same table, updated record by
//! record in append order: the first time a string appears in a shard's
//! stream, the encoder writes it inline and both sides assign it the next
//! dense id; every later reference is just a varint id. There is no
//! separate table section on disk — the table *is* the replayed prefix of
//! the stream, which keeps append-only semantics, torn-tail recovery, and
//! compaction (which re-encodes with a fresh table) untouched.
//!
//! Wire shape of a reference (`put_ref`/`read_ref`):
//!
//! ```text
//! uvarint 0        → new string: uvarint len + UTF-8 bytes follow;
//!                    assigned id = table length before insertion
//! uvarint k (k>0)  → existing string with id k-1
//! ```
//!
//! The optional variant (`put_opt_ref`/`read_opt_ref`) shifts by one:
//! `0 → None`, `1 → new + inline`, `k>1 → id k-2`.
//!
//! Decoding validates structure, not just bounds: an inline "new" string
//! that is *already* in the table is rejected ([`CodecError::Malformed`]),
//! because the encoder never re-inlines — a duplicate definition is the
//! signature of a duplicated or spliced frame. Out-of-range ids are
//! rejected the same way (a removed frame shifts every later id).

use crate::codec::{put_len_prefixed, put_uvarint, CodecError, CodecResult, Reader};
use std::collections::HashMap;

/// One direction-agnostic intern table (encoder and decoder use the same
/// type so a decoder's end state can seed a resuming encoder).
#[derive(Clone, Default)]
pub struct InternTable {
    strings: Vec<String>,
    ids: HashMap<String, u32>,
}

impl InternTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string behind `id` (panics on out-of-range: decoders validate
    /// ids before handing them out).
    pub fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// The id of `s` if it is interned already.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    fn insert(&mut self, s: &str) -> u32 {
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.ids.insert(s.to_string(), id);
        id
    }

    /// Encode a reference to `s`, inlining it on first sight.
    pub fn put_ref(&mut self, s: &str, out: &mut Vec<u8>) {
        match self.lookup(s) {
            Some(id) => put_uvarint(id as u64 + 1, out),
            None => {
                put_uvarint(0, out);
                put_len_prefixed(s.as_bytes(), out);
                self.insert(s);
            }
        }
    }

    /// Decode a reference, returning the id (resolve with [`InternTable::get`]).
    pub fn read_ref(&mut self, r: &mut Reader<'_>) -> CodecResult<u32> {
        match r.uvarint()? {
            0 => self.read_new(r),
            k => self.check_id(k - 1),
        }
    }

    /// Encode an optional reference (`None` is one byte).
    pub fn put_opt_ref(&mut self, s: Option<&str>, out: &mut Vec<u8>) {
        match s {
            None => put_uvarint(0, out),
            Some(s) => match self.lookup(s) {
                Some(id) => put_uvarint(id as u64 + 2, out),
                None => {
                    put_uvarint(1, out);
                    put_len_prefixed(s.as_bytes(), out);
                    self.insert(s);
                }
            },
        }
    }

    /// Decode an optional reference.
    pub fn read_opt_ref(&mut self, r: &mut Reader<'_>) -> CodecResult<Option<u32>> {
        match r.uvarint()? {
            0 => Ok(None),
            1 => self.read_new(r).map(Some),
            k => self.check_id(k - 2).map(Some),
        }
    }

    fn read_new(&mut self, r: &mut Reader<'_>) -> CodecResult<u32> {
        let bytes = r.len_prefixed()?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| CodecError::Malformed("interned string is not UTF-8".into()))?;
        if self.ids.contains_key(s) {
            return Err(CodecError::Malformed(format!(
                "duplicate intern definition of {s:?} (duplicated or spliced frame)"
            )));
        }
        Ok(self.insert(s))
    }

    fn check_id(&self, id: u64) -> CodecResult<u32> {
        if id < self.strings.len() as u64 {
            Ok(id as u32)
        } else {
            Err(CodecError::Malformed(format!(
                "intern id {id} out of range (table has {})",
                self.strings.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sight_inlines_then_references() {
        let mut enc = InternTable::new();
        let mut buf = Vec::new();
        enc.put_ref("alpha", &mut buf);
        enc.put_ref("beta", &mut buf);
        enc.put_ref("alpha", &mut buf);
        // Third ref is a bare id: 1 byte.
        assert!(buf.len() < 2 * (1 + 1 + 5) + 1 + 1);

        let mut dec = InternTable::new();
        let mut r = Reader::new(&buf);
        let a = dec.read_ref(&mut r).unwrap();
        let b = dec.read_ref(&mut r).unwrap();
        let a2 = dec.read_ref(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(dec.get(a), "alpha");
        assert_eq!(dec.get(b), "beta");
        assert_eq!(a, a2);
    }

    #[test]
    fn optional_refs_roundtrip() {
        let mut enc = InternTable::new();
        let mut buf = Vec::new();
        enc.put_opt_ref(None, &mut buf);
        enc.put_opt_ref(Some("x"), &mut buf);
        enc.put_opt_ref(Some("x"), &mut buf);
        enc.put_opt_ref(None, &mut buf);

        let mut dec = InternTable::new();
        let mut r = Reader::new(&buf);
        assert_eq!(dec.read_opt_ref(&mut r).unwrap(), None);
        let x = dec.read_opt_ref(&mut r).unwrap().unwrap();
        assert_eq!(dec.read_opt_ref(&mut r).unwrap(), Some(x));
        assert_eq!(dec.read_opt_ref(&mut r).unwrap(), None);
        assert_eq!(dec.get(x), "x");
    }

    #[test]
    fn duplicate_inline_definition_is_rejected() {
        // Simulates a duplicated frame: the same "new" encoding seen twice.
        let mut enc = InternTable::new();
        let mut once = Vec::new();
        enc.put_ref("dup", &mut once);
        let mut twice = once.clone();
        twice.extend_from_slice(&once);

        let mut dec = InternTable::new();
        let mut r = Reader::new(&twice);
        dec.read_ref(&mut r).unwrap();
        assert!(matches!(
            dec.read_ref(&mut r),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_range_id_is_rejected() {
        let mut buf = Vec::new();
        put_uvarint(5, &mut buf); // id 4 in an empty table
        let mut dec = InternTable::new();
        assert!(matches!(
            dec.read_ref(&mut Reader::new(&buf)),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn non_utf8_inline_is_rejected() {
        let mut buf = Vec::new();
        put_uvarint(0, &mut buf);
        put_uvarint(2, &mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut dec = InternTable::new();
        assert!(matches!(
            dec.read_ref(&mut Reader::new(&buf)),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn unicode_strings_intern_fine() {
        let mut enc = InternTable::new();
        let mut buf = Vec::new();
        for s in ["héllo", "мир", "🦀", ""] {
            enc.put_ref(s, &mut buf);
        }
        let mut dec = InternTable::new();
        let mut r = Reader::new(&buf);
        for s in ["héllo", "мир", "🦀", ""] {
            let id = dec.read_ref(&mut r).unwrap();
            assert_eq!(dec.get(id), s);
        }
    }
}
