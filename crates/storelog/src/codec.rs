//! Varint primitives and a bounded cursor for binary record payloads.
//!
//! Format v2 payloads (see `MIGRATIONS.md`) are built from three wire
//! shapes, all little-endian where fixed-width:
//!
//! - `uvarint` — LEB128: 7 value bits per byte, high bit = continuation,
//!   at most 10 bytes (u64). Canonical encoding is shortest-form; the
//!   decoder additionally rejects >10-byte runs and bit-65 overflow.
//! - `ivarint` — zigzag-mapped signed integer over `uvarint`
//!   (`0 → 0, -1 → 1, 1 → 2, …`), so small deltas of either sign stay
//!   one byte.
//! - fixed bytes — `u16`/`u64` LE and raw length-prefixed slices.
//!
//! [`Reader`] is the decode cursor: every accessor is bounds-checked
//! against the payload slice and returns [`CodecError`] instead of
//! panicking, because decoders downstream feed it *attacker-shaped* bytes
//! in the corruption-injection suite. Allocation is always bounded by the
//! remaining slice length — a corrupt length prefix can never request more
//! memory than the frame actually holds.

/// Decode-side failure: the payload is structurally invalid. Encoders never
/// produce these; seeing one means the bytes were corrupted or spliced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the field did.
    Truncated,
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// Structurally impossible value (context in the message).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated mid-field"),
            CodecError::VarintOverflow => write!(f, "varint overflows u64"),
            CodecError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Shorthand used by every decoder in this crate and downstream.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Append `v` as a LEB128 uvarint.
pub fn put_uvarint(mut v: u64, out: &mut Vec<u8>) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Append `v` zigzag-mapped as a uvarint.
pub fn put_ivarint(v: i64, out: &mut Vec<u8>) {
    put_uvarint(((v << 1) ^ (v >> 63)) as u64, out);
}

/// Bounds-checked decode cursor over one payload slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the whole payload was consumed — trailing garbage after
    /// a well-formed record is corruption, not padding.
    pub fn expect_end(&self) -> CodecResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Malformed(format!(
                "{} trailing byte(s) after record",
                self.remaining()
            )))
        }
    }

    pub fn u8(&mut self) -> CodecResult<u8> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// A raw slice of exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        let s = self
            .bytes
            .get(self.pos..self.pos.checked_add(n).ok_or(CodecError::Truncated)?)
            .ok_or(CodecError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    pub fn u16_le(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    pub fn u64_le(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn uvarint(&mut self) -> CodecResult<u64> {
        let mut v = 0u64;
        for shift in 0..10 {
            let b = self.u8()?;
            let bits = (b & 0x7f) as u64;
            // Byte 10 may only carry the final value bit of a u64.
            if shift == 9 && b > 0x01 {
                return Err(CodecError::VarintOverflow);
            }
            v |= bits << (shift * 7);
            if b < 0x80 {
                return Ok(v);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    pub fn ivarint(&mut self) -> CodecResult<i64> {
        let z = self.uvarint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    /// A uvarint length prefix followed by that many raw bytes. The length
    /// is implicitly capped by the remaining slice via [`Reader::bytes`].
    pub fn len_prefixed(&mut self) -> CodecResult<&'a [u8]> {
        let n = self.uvarint()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        self.bytes(n as usize)
    }
}

/// Append a uvarint length prefix + the raw bytes.
pub fn put_len_prefixed(bytes: &[u8], out: &mut Vec<u8>) {
    put_uvarint(bytes.len() as u64, out);
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) {
        let mut buf = Vec::new();
        put_uvarint(v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.uvarint().unwrap(), v);
        r.expect_end().unwrap();
    }

    fn roundtrip_i(v: i64) {
        let mut buf = Vec::new();
        put_ivarint(v, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.ivarint().unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn uvarint_roundtrips_across_widths() {
        for v in [0, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn ivarint_roundtrips_both_signs() {
        for v in [0, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            roundtrip_i(v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_short() {
        for v in [-63i64, -1, 0, 1, 63] {
            let mut buf = Vec::new();
            put_ivarint(v, &mut buf);
            assert_eq!(buf.len(), 1, "ivarint({v}) should be one byte");
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        put_uvarint(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert_eq!(r.uvarint(), Err(CodecError::Truncated));
        }
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // 10 continuation bytes then a terminator: > 64 bits of payload.
        let buf = [
            0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
        ];
        let mut r = Reader::new(&buf);
        assert_eq!(r.uvarint(), Err(CodecError::VarintOverflow));
        // Byte 10 carrying more than the final u64 bit overflows too.
        let buf = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut r = Reader::new(&buf);
        assert_eq!(r.uvarint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn len_prefix_cannot_outrun_the_slice() {
        let mut buf = Vec::new();
        put_uvarint(1 << 40, &mut buf); // claims a terabyte
        buf.extend_from_slice(b"tiny");
        let mut r = Reader::new(&buf);
        assert_eq!(r.len_prefixed(), Err(CodecError::Truncated));
    }

    #[test]
    fn fixed_width_reads_are_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u16_le().is_ok());
        assert_eq!(r.u64_le(), Err(CodecError::Truncated));
        assert_eq!(r.remaining(), 1, "failed read consumes nothing");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_uvarint(7, &mut buf);
        buf.push(0);
        let mut r = Reader::new(&buf);
        r.uvarint().unwrap();
        assert!(matches!(r.expect_end(), Err(CodecError::Malformed(_))));
    }
}
