//! The sharded log: a batching writer with round-boundary commits, and a
//! recovering reader that trusts only committed, checksum-valid data.
//!
//! ## Durability protocol
//!
//! A "round" (one monitoring week upstream) is the atomicity unit:
//!
//! 1. [`LogWriter::append`] buffers framed records per shard, in memory;
//! 2. [`LogWriter::commit`] writes every dirty shard buffer to its segment
//!    file and fsyncs it, *then* appends one commit frame — the new segment
//!    offsets plus an opaque application checkpoint — to `commits.log` and
//!    fsyncs that.
//!
//! The commit frame is the linearization point. A crash before it leaves
//! segment tails past the last commit's offsets; the reader never looks at
//! those bytes and `open_append` physically truncates them. A crash during
//! it leaves a torn commit frame that fails its checksum and is dropped.
//!
//! ## Commit selection on recovery
//!
//! [`LogReader::open`] picks the newest commit record that is (a) itself
//! checksum-valid and (b) consistent: every segment's checksum-valid prefix
//! must reach that commit's offsets. (b) matters when a segment file — not
//! just the commit log — lost its tail: the reader walks back to the newest
//! commit the surviving bytes can support, losing whole rounds from the end
//! and never a record from the middle.

use crate::frame;
use crate::{Error, Layout, Result, FORMAT_VERSION, MIN_FORMAT_VERSION};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// One commit record: the durable segment offsets at a round boundary plus
/// the application's opaque checkpoint payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// Segment byte lengths (per shard) at the moment of this commit.
    pub offsets: Vec<u64>,
    /// Opaque application checkpoint (the upstream `RunState` summary).
    pub app: Vec<u8>,
}

impl CommitRecord {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * self.offsets.len() + self.app.len());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        for off in &self.offsets {
            out.extend_from_slice(&off.to_le_bytes());
        }
        out.extend_from_slice(&self.app);
        out
    }

    fn decode(bytes: &[u8]) -> Option<CommitRecord> {
        let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let app_start = 4 + 8 * n;
        let mut offsets = Vec::with_capacity(n);
        for i in 0..n {
            let at = 4 + 8 * i;
            offsets.push(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?));
        }
        Some(CommitRecord {
            offsets,
            app: bytes.get(app_start..)?.to_vec(),
        })
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Append side of the log (see module docs for the durability protocol).
pub struct LogWriter {
    format_version: u32,
    segments: Vec<File>,
    seg_lens: Vec<u64>,
    commits: File,
    /// Per-shard frames buffered for the current round.
    buffers: Vec<Vec<u8>>,
    pending_records: usize,
    // Telemetry handles, resolved once so the per-record path never takes
    // the registry lock. Out-of-band only: no effect on the on-disk format.
    m_append_bytes: &'static obs::Counter,
    m_appends: &'static obs::Counter,
    m_commits: &'static obs::Counter,
}

fn writer_metrics() -> (
    &'static obs::Counter,
    &'static obs::Counter,
    &'static obs::Counter,
) {
    (
        obs::counter("storelog.append_bytes"),
        obs::counter("storelog.appends"),
        obs::counter("storelog.commits"),
    )
}

impl LogWriter {
    /// Initialize a fresh state directory at the current [`FORMAT_VERSION`]
    /// (refuses to clobber an existing one — recovery and resumption go
    /// through [`LogWriter::open_append`]).
    pub fn create(dir: &Path, shards: usize, config: &[u8]) -> Result<LogWriter> {
        Self::create_versioned(dir, shards, config, FORMAT_VERSION)
    }

    /// [`LogWriter::create`] with an explicit format version. Writing the
    /// older v1 payload format is how the differential tests and the bench
    /// produce v1 state dirs from a v2-native build.
    pub fn create_versioned(
        dir: &Path,
        shards: usize,
        config: &[u8],
        version: u32,
    ) -> Result<LogWriter> {
        assert!(shards >= 1, "at least one shard");
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(Error::Format(format!(
                "cannot create a v{version} state dir \
                 (this build writes v{MIN_FORMAT_VERSION}..v{FORMAT_VERSION})"
            )));
        }
        std::fs::create_dir_all(dir)?;
        let layout = Layout::new(dir);
        if layout.format_file().exists() {
            return Err(Error::Format(format!(
                "{} already holds a storelog state (resume it, or remove it first)",
                dir.display()
            )));
        }
        layout.write_format(version, shards)?;
        std::fs::write(layout.config_file(), config)?;
        let segments = (0..shards)
            .map(|i| {
                OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(layout.segment_file(i))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let commits = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(layout.commits_file())?;
        let (m_append_bytes, m_appends, m_commits) = writer_metrics();
        Ok(LogWriter {
            format_version: version,
            seg_lens: vec![0; shards],
            buffers: vec![Vec::new(); shards],
            segments,
            commits,
            pending_records: 0,
            m_append_bytes,
            m_appends,
            m_commits,
        })
    }

    /// Open an existing state directory for appending, recovering from any
    /// torn tail first: files are truncated back to the newest consistent
    /// commit (see [`LogReader`] for the selection rule).
    pub fn open_append(dir: &Path) -> Result<LogWriter> {
        let reader = LogReader::open(dir)?;
        let layout = Layout::new(dir);
        let shards = reader.shard_count();
        let offsets = match reader.last_commit() {
            Some(c) => c.offsets.clone(),
            None => vec![0; shards],
        };
        let commits_end = reader.durable_commits_len;

        let mut segments = Vec::with_capacity(shards);
        for (i, &off) in offsets.iter().enumerate() {
            let f = OpenOptions::new()
                .create(true)
                .truncate(false) // set_len below truncates to the commit point
                .write(true)
                .open(layout.segment_file(i))?;
            f.set_len(off)?;
            segments.push(f);
        }
        let commits = OpenOptions::new()
            .create(true)
            .truncate(false) // set_len below truncates to the commit point
            .write(true)
            .open(layout.commits_file())?;
        commits.set_len(commits_end)?;

        let (m_append_bytes, m_appends, m_commits) = writer_metrics();
        Ok(LogWriter {
            format_version: reader.format_version(),
            seg_lens: offsets,
            buffers: vec![Vec::new(); shards],
            segments,
            commits,
            pending_records: 0,
            m_append_bytes,
            m_appends,
            m_commits,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.segments.len()
    }

    /// The format version of the state dir this writer appends to (set at
    /// creation; `open_append` preserves whatever the dir already is).
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// Records buffered since the last commit.
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Buffer one record for `shard`. Nothing touches disk until
    /// [`LogWriter::commit`].
    pub fn append(&mut self, shard: usize, payload: &[u8]) {
        let before = self.buffers[shard].len();
        frame::encode_into(payload, &mut self.buffers[shard]);
        self.m_append_bytes
            .add((self.buffers[shard].len() - before) as u64);
        self.m_appends.inc();
        self.pending_records += 1;
    }

    /// Make the buffered round durable: flush + fsync dirty segments, then
    /// append + fsync one commit frame carrying `app` (the application
    /// checkpoint). This is the only fsync point — one round, one commit.
    pub fn commit(&mut self, app: &[u8]) -> Result<()> {
        use std::io::Seek;
        let _s = obs::span("storelog.commit", "storelog").record_into("storelog.commit_ns");
        self.m_commits.inc();
        let fsync_ns = obs::histogram("storelog.fsync_ns");
        for (i, buf) in self.buffers.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            // Position explicitly: `open_append` may have truncated below a
            // previous write position, and O_APPEND is deliberately avoided
            // so truncation + reuse stays well-defined.
            self.segments[i].seek(std::io::SeekFrom::Start(self.seg_lens[i]))?;
            self.segments[i].write_all(buf)?;
            let t = std::time::Instant::now();
            self.segments[i].sync_data()?;
            fsync_ns.record(t.elapsed().as_nanos() as u64);
            self.seg_lens[i] += buf.len() as u64;
            buf.clear();
        }
        let rec = CommitRecord {
            offsets: self.seg_lens.clone(),
            app: app.to_vec(),
        };
        let mut framed = Vec::new();
        frame::encode_into(&rec.encode(), &mut framed);
        self.commits.seek(std::io::SeekFrom::End(0))?;
        self.commits.write_all(&framed)?;
        let t = std::time::Instant::now();
        self.commits.sync_data()?;
        fsync_ns.record(t.elapsed().as_nanos() as u64);
        self.pending_records = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Read side of the log. Opening performs full recovery analysis; all reads
/// are then served from the committed region only.
pub struct LogReader {
    layout: Layout,
    format_version: u32,
    shards: usize,
    config: Vec<u8>,
    /// Commits up to and including the selected durable one.
    commits: Vec<CommitRecord>,
    /// Byte length of `commits.log` at the end of the selected commit.
    durable_commits_len: u64,
    /// Bytes discarded across all files by recovery (torn tails + commits
    /// that outran their segments).
    torn_bytes: u64,
}

fn read_or_empty(p: &Path) -> Result<Vec<u8>> {
    match std::fs::read(p) {
        Ok(b) => Ok(b),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Checksum-scan every segment's valid prefix, fanning shards across up to
/// `threads` OS threads. The crate is deliberately std-only, so this uses
/// `std::thread::scope` rather than an executor; results come back in shard
/// order regardless of scheduling, keeping recovery deterministic.
fn scan_segments(layout: &Layout, shards: usize, threads: usize) -> Result<Vec<u64>> {
    let scan_one = |i: usize| -> Result<u64> {
        Ok(frame::valid_len(&read_or_empty(&layout.segment_file(i))?, 0).0)
    };
    let workers = threads.min(shards).max(1);
    if workers <= 1 {
        return (0..shards).map(scan_one).collect();
    }
    let parts: Vec<Vec<(usize, Result<u64>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let scan_one = &scan_one;
                s.spawn(move || {
                    (w..shards)
                        .step_by(workers)
                        .map(|i| (i, scan_one(i)))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = vec![0u64; shards];
    for part in parts {
        for (i, r) in part {
            out[i] = r?;
        }
    }
    Ok(out)
}

impl LogReader {
    pub fn open(dir: &Path) -> Result<LogReader> {
        Self::open_with_threads(dir, 1)
    }

    /// [`LogReader::open`] with the recovery checksum scan parallelized
    /// across up to `threads` threads (one unit of work per shard). The
    /// result is identical for any thread count; only open latency changes.
    pub fn open_with_threads(dir: &Path, threads: usize) -> Result<LogReader> {
        let layout = Layout::new(dir);
        let (format_version, shards) = layout.read_format()?;
        let config = std::fs::read(layout.config_file())?;

        let seg_valid = scan_segments(&layout, shards, threads)?;
        let commit_bytes = read_or_empty(&layout.commits_file())?;
        let commit_scan = frame::scan(&commit_bytes, 0);
        let mut torn_bytes = commit_scan.torn_bytes;

        // Newest commit whose offsets the surviving segment bytes support.
        let mut commits: Vec<(u64, CommitRecord)> = Vec::new();
        for f in &commit_scan.frames {
            let Some(rec) = CommitRecord::decode(&f.payload) else {
                break; // structurally bad commit: nothing after it is trusted
            };
            if rec.offsets.len() != shards {
                break;
            }
            commits.push((f.end, rec));
        }
        let chosen = commits
            .iter()
            .rposition(|(_, rec)| rec.offsets.iter().zip(&seg_valid).all(|(o, v)| o <= v));

        let (durable_commits_len, keep) = match chosen {
            Some(i) => (commits[i].0, i + 1),
            None => (0, 0),
        };
        torn_bytes += commit_bytes.len() as u64 - durable_commits_len;
        // Segment bytes past the durable offsets are torn too.
        if let Some((_, last)) = chosen.map(|i| &commits[i]) {
            for (i, &off) in last.offsets.iter().enumerate() {
                let disk = std::fs::metadata(layout.segment_file(i))
                    .map(|m| m.len())
                    .unwrap_or(0);
                torn_bytes += disk.saturating_sub(off);
            }
        }
        commits.truncate(keep);

        obs::counter("storelog.recoveries").inc();
        if torn_bytes > 0 {
            obs::counter("storelog.torn_recoveries").inc();
            obs::counter("storelog.torn_bytes").add(torn_bytes);
            obs::warn!(
                "storelog: recovery discarded {torn_bytes} torn byte(s) in {}; \
                 resuming from the newest consistent commit",
                dir.display()
            );
        }

        Ok(LogReader {
            layout,
            format_version,
            shards,
            config,
            commits: commits.into_iter().map(|(_, r)| r).collect(),
            durable_commits_len,
            torn_bytes,
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The format version declared by the state dir's FORMAT file — tells
    /// the application which payload codec the record bytes use.
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// The opaque application config written at creation.
    pub fn config(&self) -> &[u8] {
        &self.config
    }

    /// All usable commits, oldest first.
    pub fn commits(&self) -> &[CommitRecord] {
        &self.commits
    }

    /// The newest consistent commit — the resume point. `None` means the log
    /// never completed a round.
    pub fn last_commit(&self) -> Option<&CommitRecord> {
        self.commits.last()
    }

    /// Bytes recovery had to discard (0 on a cleanly shut-down log).
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// All committed record payloads of one shard, in append order.
    pub fn read_shard(&self, shard: usize) -> Result<Vec<Vec<u8>>> {
        let limit = match self.last_commit() {
            Some(c) => c.offsets[shard],
            None => return Ok(Vec::new()),
        };
        let bytes = std::fs::read(self.layout.segment_file(shard))?;
        let scan = frame::scan(&bytes[..limit.min(bytes.len() as u64) as usize], 0);
        debug_assert_eq!(scan.valid_len, limit, "committed region must be valid");
        Ok(scan.into_payloads())
    }

    /// One shard's committed region as a stream: the segment's committed
    /// bytes are read once, and [`ShardStream::iter`] walks borrowed payload
    /// slices out of them — no per-record allocation, for consumers (replay
    /// decoding) that visit each payload exactly once.
    pub fn stream_shard(&self, shard: usize) -> Result<ShardStream> {
        let limit = match self.last_commit() {
            Some(c) => c.offsets[shard],
            None => 0,
        };
        let mut bytes = if limit == 0 {
            Vec::new()
        } else {
            std::fs::read(self.layout.segment_file(shard))?
        };
        bytes.truncate(limit as usize);
        Ok(ShardStream { bytes })
    }
}

/// Owned committed bytes of one shard segment; iterate payloads with
/// [`ShardStream::iter`]. See [`LogReader::stream_shard`].
pub struct ShardStream {
    bytes: Vec<u8>,
}

impl ShardStream {
    pub fn iter(&self) -> frame::PayloadIter<'_> {
        frame::payloads(&self.bytes, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn record(shard: usize, round: usize, i: usize) -> Vec<u8> {
        format!("s{shard}/r{round}/i{i}").into_bytes()
    }

    /// Write `rounds` rounds of `per_shard` records over `shards` shards.
    fn write_rounds(dir: &Path, shards: usize, rounds: usize, per_shard: usize) {
        let mut w = LogWriter::create(dir, shards, b"{\"cfg\":1}").unwrap();
        for r in 0..rounds {
            for s in 0..shards {
                for i in 0..per_shard {
                    w.append(s, &record(s, r, i));
                }
            }
            w.commit(format!("round-{r}").as_bytes()).unwrap();
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let t = TempDir::new("roundtrip");
        write_rounds(&t.0, 3, 4, 2);
        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.config(), b"{\"cfg\":1}");
        assert_eq!(r.commits().len(), 4);
        assert_eq!(r.last_commit().unwrap().app, b"round-3");
        assert_eq!(r.torn_bytes(), 0);
        for s in 0..3 {
            let recs = r.read_shard(s).unwrap();
            assert_eq!(recs.len(), 8);
            assert_eq!(recs[0], record(s, 0, 0));
            assert_eq!(recs[7], record(s, 3, 1));
        }
    }

    #[test]
    fn create_refuses_to_clobber() {
        let t = TempDir::new("clobber");
        write_rounds(&t.0, 2, 1, 1);
        assert!(matches!(
            LogWriter::create(&t.0, 2, b"x"),
            Err(Error::Format(_))
        ));
    }

    #[test]
    fn uncommitted_round_is_invisible() {
        let t = TempDir::new("uncommitted");
        let mut w = LogWriter::create(&t.0, 2, b"c").unwrap();
        w.append(0, b"committed");
        w.commit(b"r0").unwrap();
        w.append(0, b"buffered-only"); // never committed
        assert_eq!(w.pending_records(), 1);
        drop(w);
        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.read_shard(0).unwrap(), vec![b"committed".to_vec()]);
    }

    #[test]
    fn torn_segment_tail_falls_back_one_round() {
        let t = TempDir::new("torn_seg");
        write_rounds(&t.0, 2, 3, 2);
        // Tear the last round: chop shard 1 mid-record.
        let seg = Layout::new(&t.0).segment_file(1);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let r = LogReader::open(&t.0).unwrap();
        // The newest commit outruns shard 1's surviving bytes → round 2 lost.
        assert_eq!(r.commits().len(), 2);
        assert_eq!(r.last_commit().unwrap().app, b"round-1");
        assert!(r.torn_bytes() > 0);
        assert_eq!(r.read_shard(0).unwrap().len(), 4);
        assert_eq!(r.read_shard(1).unwrap().len(), 4);
    }

    #[test]
    fn torn_commit_log_falls_back_one_round() {
        let t = TempDir::new("torn_commit");
        write_rounds(&t.0, 2, 3, 1);
        let commits = Layout::new(&t.0).commits_file();
        let len = std::fs::metadata(&commits).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&commits)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.last_commit().unwrap().app, b"round-1");
        // Data of round 2 is on disk but uncommitted, hence invisible.
        assert_eq!(r.read_shard(0).unwrap().len(), 2);
    }

    #[test]
    fn open_append_truncates_and_continues() {
        let t = TempDir::new("append_recover");
        write_rounds(&t.0, 2, 3, 2);
        // Tear both the last commit and a segment tail.
        let seg = Layout::new(&t.0).segment_file(0);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 1)
            .unwrap();

        let mut w = LogWriter::open_append(&t.0).unwrap();
        w.append(0, b"resumed");
        w.commit(b"round-2b").unwrap();
        drop(w);

        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.torn_bytes(), 0, "recovery healed the files");
        assert_eq!(r.last_commit().unwrap().app, b"round-2b");
        let recs = r.read_shard(0).unwrap();
        // Rounds 0,1 survive (4 records), round 2 was torn, then the resumed
        // round appended one more.
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4], b"resumed".to_vec());
    }

    #[test]
    fn versioned_create_roundtrips_and_open_append_preserves() {
        let t = TempDir::new("versioned");
        let w = LogWriter::create_versioned(&t.0, 2, b"cfg", 1).unwrap();
        assert_eq!(w.format_version(), 1);
        drop(w);
        assert_eq!(LogReader::open(&t.0).unwrap().format_version(), 1);
        assert_eq!(LogWriter::open_append(&t.0).unwrap().format_version(), 1);

        let t2 = TempDir::new("versioned2");
        let w = LogWriter::create(&t2.0, 2, b"cfg").unwrap();
        assert_eq!(w.format_version(), FORMAT_VERSION);
        drop(w);
        assert_eq!(
            LogReader::open(&t2.0).unwrap().format_version(),
            FORMAT_VERSION
        );

        let t3 = TempDir::new("versioned3");
        assert!(matches!(
            LogWriter::create_versioned(&t3.0, 2, b"cfg", 99),
            Err(Error::Format(_))
        ));
    }

    #[test]
    fn parallel_open_matches_serial_open() {
        let t = TempDir::new("par_open");
        write_rounds(&t.0, 5, 4, 3);
        // Tear one segment so recovery analysis has real work to agree on.
        let seg = Layout::new(&t.0).segment_file(3);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let serial = LogReader::open(&t.0).unwrap();
        for threads in [2, 4, 8] {
            let par = LogReader::open_with_threads(&t.0, threads).unwrap();
            assert_eq!(par.commits(), serial.commits());
            assert_eq!(par.torn_bytes(), serial.torn_bytes());
            for s in 0..5 {
                assert_eq!(par.read_shard(s).unwrap(), serial.read_shard(s).unwrap());
            }
        }
    }

    #[test]
    fn empty_log_resumes_from_nothing() {
        let t = TempDir::new("empty");
        LogWriter::create(&t.0, 4, b"cfg").unwrap();
        let r = LogReader::open(&t.0).unwrap();
        assert!(r.last_commit().is_none());
        assert_eq!(r.read_shard(2).unwrap().len(), 0);
        let mut w = LogWriter::open_append(&t.0).unwrap();
        w.append(2, b"first");
        w.commit(b"r0").unwrap();
        assert_eq!(
            LogReader::open(&t.0).unwrap().read_shard(2).unwrap(),
            vec![b"first".to_vec()]
        );
    }
}
