//! Record framing: `[u32 LE payload_len][u64 LE fnv64(payload)][payload]`.
//!
//! The frame is the unit of both data records and commit records. A frame is
//! valid iff its length prefix fits inside the remaining bytes and the FNV-64
//! checksum matches; scanning stops at the first invalid frame, which is how
//! a torn tail (partial write at crash) is detected and measured.

/// Frame header size: 4-byte length + 8-byte checksum.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a single payload; anything larger is treated as corruption
/// (a torn length prefix can otherwise claim gigabytes).
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// FNV-1a over a byte slice — the same hash family the snapshot store and
/// RNG tree use, chosen for stability, not cryptography.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Append one frame to `out`.
pub fn encode_into(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Total on-disk size of a frame for a payload of `len` bytes.
pub fn frame_len(len: usize) -> u64 {
    (HEADER_LEN + len) as u64
}

/// One valid frame found by [`scan`].
pub struct Frame {
    /// Byte offset just past this frame (where the next frame starts).
    pub end: u64,
    pub payload: Vec<u8>,
}

/// Result of scanning a byte buffer for consecutive valid frames.
pub struct Scan {
    /// Every valid frame, in order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix (end offset of the last valid frame).
    pub valid_len: u64,
    /// Bytes past the valid prefix — a torn or corrupt tail if nonzero.
    pub torn_bytes: u64,
}

impl Scan {
    /// The payloads alone, consuming the scan.
    pub fn into_payloads(self) -> Vec<Vec<u8>> {
        self.frames.into_iter().map(|f| f.payload).collect()
    }
}

/// Iterator over the valid-prefix payloads of a frame buffer, borrowing
/// from it — the zero-copy counterpart of [`scan`] for readers that only
/// need each payload once (e.g. replay decoding straight out of the segment
/// bytes). Stops at the first invalid frame, exactly like [`scan`].
pub struct PayloadIter<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadIter<'a> {
    /// Byte offset of the next unread frame — after exhaustion, the valid
    /// prefix length ([`Scan::valid_len`] of the same buffer).
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }
}

impl<'a> Iterator for PayloadIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let header = self.bytes.get(self.pos..self.pos + HEADER_LEN)?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return None;
        }
        let sum = u64::from_le_bytes(header[4..].try_into().unwrap());
        let body_start = self.pos + HEADER_LEN;
        let payload = self.bytes.get(body_start..body_start + len as usize)?;
        if fnv64(payload) != sum {
            return None;
        }
        self.pos = body_start + len as usize;
        Some(payload)
    }
}

/// Borrowing frame walk over `bytes` starting at `start`.
pub fn payloads(bytes: &[u8], start: u64) -> PayloadIter<'_> {
    PayloadIter {
        bytes,
        pos: start as usize,
    }
}

/// Length of the checksum-valid frame prefix of `bytes` starting at
/// `start`, without materializing any payload: `(valid_len, torn_bytes)`.
/// Recovery analysis only needs these two numbers per segment, and the
/// allocation-free walk keeps the open-time scan bounded by I/O even on
/// million-record segments.
pub fn valid_len(bytes: &[u8], start: u64) -> (u64, u64) {
    let mut it = payloads(bytes, start);
    for _ in it.by_ref() {}
    let valid = it.offset();
    (valid, bytes.len() as u64 - valid)
}

/// Scan `bytes` (starting at `start`) for consecutive valid frames.
///
/// `start` lets callers skip a file header. Scanning is strict-prefix: the
/// first length overrun or checksum mismatch ends the valid region, even if
/// later bytes happen to look like frames again — after a torn write nothing
/// beyond the tear is trustworthy.
pub fn scan(bytes: &[u8], start: u64) -> Scan {
    let mut pos = start as usize;
    let mut frames = Vec::new();
    while let Some(header) = bytes.get(pos..pos + HEADER_LEN) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break;
        }
        let sum = u64::from_le_bytes(header[4..].try_into().unwrap());
        let body_start = pos + HEADER_LEN;
        let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
            break;
        };
        if fnv64(payload) != sum {
            break;
        }
        pos = body_start + len as usize;
        frames.push(Frame {
            end: pos as u64,
            payload: payload.to_vec(),
        });
    }
    Scan {
        frames,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            encode_into(p, &mut out);
        }
        out
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let buf = buf_with(&[b"alpha", b"", b"gamma ray"]);
        let s = scan(&buf, 0);
        assert_eq!(s.valid_len, buf.len() as u64);
        assert_eq!(s.torn_bytes, 0);
        assert_eq!(
            s.into_payloads(),
            vec![b"alpha".to_vec(), vec![], b"gamma ray".to_vec()]
        );
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut buf = buf_with(&[b"first", b"second"]);
        let full = buf.len();
        // A torn third frame: header promises more bytes than exist.
        encode_into(b"third-record-payload", &mut buf);
        buf.truncate(full + HEADER_LEN + 4);
        let s = scan(&buf, 0);
        assert_eq!(s.frames.len(), 2);
        assert_eq!(s.frames[0].end, frame_len(5));
        assert_eq!(s.valid_len, full as u64);
        assert_eq!(s.torn_bytes, (HEADER_LEN + 4) as u64);
    }

    #[test]
    fn checksum_flip_ends_the_valid_prefix() {
        let mut buf = buf_with(&[b"aaaa", b"bbbb", b"cccc"]);
        // Flip one payload byte of the middle frame.
        let mid = frame_len(4) as usize + HEADER_LEN;
        buf[mid] ^= 0x40;
        let s = scan(&buf, 0);
        // Strict prefix: the third frame is unreachable even though intact.
        assert_eq!(s.valid_len, frame_len(4));
        assert_eq!(s.into_payloads(), vec![b"aaaa".to_vec()]);
    }

    #[test]
    fn absurd_length_prefix_is_corruption() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        let s = scan(&buf, 0);
        assert!(s.frames.is_empty());
        assert_eq!(s.valid_len, 0);
    }

    #[test]
    fn scan_respects_start_offset() {
        let mut buf = b"HEADER--".to_vec();
        encode_into(b"x", &mut buf);
        let s = scan(&buf, 8);
        assert_eq!(s.into_payloads(), vec![b"x".to_vec()]);
    }

    #[test]
    fn valid_len_agrees_with_scan() {
        let mut buf = buf_with(&[b"first", b"second", b"third"]);
        buf.extend_from_slice(b"torn tail bytes");
        let s = scan(&buf, 0);
        assert_eq!(valid_len(&buf, 0), (s.valid_len, s.torn_bytes));
        assert_eq!(valid_len(b"", 0), (0, 0));
    }

    #[test]
    fn fnv_is_frozen() {
        // The workspace FNV variant (same offset basis and multiplier as
        // `core::snapshot::body_hash`). Pin one value: these checksums are
        // on disk, so the function must never change.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ b'a' as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
            h
        });
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
