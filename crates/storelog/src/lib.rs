//! # storelog — append-only sharded snapshot persistence
//!
//! The durability substrate for resumable multi-year monitoring runs. The
//! paper's measurement ran for three years of wall clock; a reproduction that
//! must finish in one process lifetime cannot grow past toy scale. This crate
//! turns the monitoring pipeline's observations into an on-disk, append-only,
//! checksummed record log that survives crashes and lets a half-finished
//! study continue exactly where it stopped.
//!
//! ## Layout of a state directory
//!
//! ```text
//! state-dir/
//!   FORMAT          "storelog <version>\nshards <n>\n"  (refused on mismatch)
//!   config.json     opaque application config, written once at creation
//!   commits.log     framed commit records: per-shard durable offsets + an
//!                   opaque application checkpoint payload
//!   shard-000.seg   framed data records for shard 0
//!   shard-001.seg   ...
//! ```
//!
//! Data records are partitioned into one segment file per
//! [`SnapshotStore`](https://docs/snapshot) shard — the same stable FNV-1a
//! partition the parallel crawl uses — so a future parallel replayer can
//! stream shards independently, and compaction touches each shard in
//! isolation.
//!
//! ## Frames, commits, and the torn tail
//!
//! Every record (data and commit alike) is a length-prefixed, FNV-64
//! checksummed frame (see [`frame`]). Writers buffer a whole round in memory
//! and make it durable at the round boundary: segment bytes are written and
//! fsynced first, then a commit frame recording the resulting segment
//! offsets is appended to `commits.log` and fsynced. A crash at *any* point
//! therefore loses at most the round in flight:
//!
//! - torn bytes past the last commit's offsets are invisible (the reader
//!   never looks past the committed offsets),
//! - a torn commit frame fails its checksum and is dropped, falling back to
//!   the previous commit,
//! - a commit whose offsets point past the valid prefix of a segment (the
//!   segment itself was truncated) is rejected the same way.
//!
//! [`LogWriter::open_append`] physically truncates all files back to the
//! recovered commit before appending, so recovery is also self-healing.
//!
//! ## Compaction
//!
//! Most weekly observations are "no change" records that only matter until a
//! newer observation of the same key exists. [`compact`] rewrites each
//! segment keeping every record the application classifies as
//! [`Retention::Keep`] plus the *last* record per supersede-key, then writes
//! a fresh single-entry commit log. See [`compact`] for the contract.
//!
//! The application-facing record payloads are opaque bytes; the crate that
//! owns the schema (`dangling-core`) decides what goes inside them. This
//! keeps `storelog` std-only and its format frozen: [`FORMAT_VERSION`] must
//! only change together with a migration note in `MIGRATIONS.md` (CI
//! enforces this).

pub mod codec;
mod compact;
pub mod frame;
pub mod intern;
mod log;

pub use compact::{compact, compact_with, CompactStats, Retention};
pub use log::{CommitRecord, LogReader, LogWriter, ShardStream};

use std::path::{Path, PathBuf};

/// On-disk format version written by default. Bump ONLY with a migration
/// note in `crates/storelog/MIGRATIONS.md` — CI fails the build otherwise.
///
/// v2 changed the *record payload* encoding (binary interned/delta records,
/// see MIGRATIONS.md); the frame, commit and recovery machinery is identical
/// in v1 and v2, so this crate reads and writes both. The version in a
/// dir's FORMAT file tells the application which payload codec its records
/// use.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version this build still reads.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong opening, reading or writing a state dir.
#[derive(Debug)]
pub enum Error {
    Io(std::io::Error),
    /// Structural problem: bad magic, unsupported version, malformed FORMAT.
    Format(String),
    /// The directory does not contain a storelog state.
    NoState(PathBuf),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "storelog I/O error: {e}"),
            Error::Format(m) => write!(f, "storelog format error: {m}"),
            Error::NoState(p) => write!(f, "no storelog state in {}", p.display()),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Read a state dir's FORMAT marker — `(format_version, shard_count)` —
/// without recovery analysis. The cheap way for an application to decide
/// which payload codec (or migration) a dir needs before opening it.
pub fn read_format(dir: &Path) -> Result<(u32, usize)> {
    Layout::new(dir).read_format()
}

/// Path helpers for one state directory.
pub(crate) struct Layout {
    pub root: PathBuf,
}

impl Layout {
    pub fn new(root: &Path) -> Self {
        Layout {
            root: root.to_path_buf(),
        }
    }

    pub fn format_file(&self) -> PathBuf {
        self.root.join("FORMAT")
    }

    pub fn config_file(&self) -> PathBuf {
        self.root.join("config.json")
    }

    pub fn commits_file(&self) -> PathBuf {
        self.root.join("commits.log")
    }

    pub fn segment_file(&self, shard: usize) -> PathBuf {
        self.root.join(format!("shard-{shard:03}.seg"))
    }

    /// Write the FORMAT marker (version + shard count).
    pub fn write_format(&self, version: u32, shards: usize) -> Result<()> {
        debug_assert!((MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
        std::fs::write(
            self.format_file(),
            format!("storelog {version}\nshards {shards}\n"),
        )?;
        Ok(())
    }

    /// Parse the FORMAT marker, returning `(version, shard count)`.
    pub fn read_format(&self) -> Result<(u32, usize)> {
        let path = self.format_file();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(Error::NoState(self.root.clone()))
            }
            Err(e) => return Err(e.into()),
        };
        let mut version = None;
        let mut shards = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("storelog ") {
                version = v.trim().parse::<u32>().ok();
            } else if let Some(s) = line.strip_prefix("shards ") {
                shards = s.trim().parse::<usize>().ok();
            }
        }
        match (version, shards) {
            (Some(v), _) if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&v) => {
                Err(Error::Format(format!(
                    "state dir is format v{v}, this build reads \
                     v{MIN_FORMAT_VERSION}..v{FORMAT_VERSION} \
                     (see crates/storelog/MIGRATIONS.md)"
                )))
            }
            (Some(v), Some(s)) if s >= 1 => Ok((v, s)),
            _ => Err(Error::Format(format!(
                "malformed FORMAT file in {}",
                self.root.display()
            ))),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// A fresh scratch directory under the system temp dir; removed on drop.
    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("storelog_test_{tag}_{}_{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::TempDir;

    #[test]
    fn format_roundtrip_and_version_gate() {
        let t = TempDir::new("format");
        let layout = Layout::new(&t.0);
        layout.write_format(FORMAT_VERSION, 16).unwrap();
        assert_eq!(layout.read_format().unwrap(), (FORMAT_VERSION, 16));

        // v1 dirs stay readable; unknown future versions are refused with a
        // pointer at MIGRATIONS.md.
        layout.write_format(1, 8).unwrap();
        assert_eq!(layout.read_format().unwrap(), (1, 8));
        std::fs::write(layout.format_file(), "storelog 999\nshards 4\n").unwrap();
        let err = layout.read_format().unwrap_err();
        assert!(err.to_string().contains("MIGRATIONS.md"), "{err}");
    }

    #[test]
    fn missing_state_is_distinguishable() {
        let t = TempDir::new("nostate");
        let layout = Layout::new(&t.0);
        assert!(matches!(layout.read_format(), Err(Error::NoState(_))));
    }
}
