//! Compaction: drop records that a newer record of the same key supersedes.
//!
//! The monitoring pipeline writes one observation per (FQDN, round); the
//! overwhelming majority are "nothing changed" records whose only long-term
//! job is to be the latest-known state of their FQDN. Once a newer
//! observation of the same FQDN is durable, the older unchanged record is
//! dead weight. Compaction rewrites each segment keeping
//!
//! - every record the application classifies [`Retention::Keep`] (change
//!   records — the study's actual signal — are never dropped), and
//! - the **last** record per [`Retention::Supersede`] key, so replay still
//!   reconstructs the exact latest snapshot of every key.
//!
//! Surviving records keep their original shard, order and payload bytes, so
//! a replay of a compacted log is byte-equivalent to a replay of the full
//! log for every consumer that only needs (all changes + latest state) —
//! which is precisely the resume contract upstream.
//!
//! The pass is crash-safe: new segments and a fresh single-entry commit log
//! (carrying the previous head checkpoint) are written to `*.tmp` files,
//! fsynced, then renamed over the originals — a crash mid-compaction leaves
//! either the old state or the new one, never a mix of live files.

use crate::log::{CommitRecord, LogReader};
use crate::{frame, Error, Layout, Result};
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// Application verdict on one record (see [`compact`]).
pub enum Retention {
    /// Never dropped.
    Keep,
    /// Dropped iff a later record in the same shard carries the same key.
    Supersede(String),
}

/// What a compaction pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    pub records_before: usize,
    pub records_after: usize,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

/// Rewrite the committed region of `dir`, classifying every record payload
/// with `classify`. Uncommitted tails are discarded (they were already
/// invisible). No-op on a log that never committed.
///
/// Surviving payload bytes are copied verbatim, so this is only correct for
/// payload encodings where records decode independently (format v1). For
/// context-dependent encodings (v2 interned/delta streams) use
/// [`compact_with`] and re-encode the survivors.
pub fn compact(dir: &Path, mut classify: impl FnMut(&[u8]) -> Retention) -> Result<CompactStats> {
    compact_with(dir, |_shard, records| {
        // Pass 1: last occurrence of each supersede key in this shard.
        // (Shards partition the keyspace, so per-shard lastness is global
        // lastness for any consistent classifier.)
        let mut last_of: HashMap<String, usize> = HashMap::new();
        let mut verdicts = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            let v = classify(rec);
            if let Retention::Supersede(key) = &v {
                last_of.insert(key.clone(), i);
            }
            verdicts.push(v);
        }
        // Pass 2: survivors in order.
        Ok(records
            .into_iter()
            .enumerate()
            .filter(|(i, _)| match &verdicts[*i] {
                Retention::Keep => true,
                Retention::Supersede(key) => last_of[key] == *i,
            })
            .map(|(_, rec)| rec)
            .collect())
    })
}

/// Shard-batch rewrite: `plan` receives every committed payload of one
/// shard in append order and returns the replacement payload list (also in
/// append order), or a format-error message. This is the compaction
/// primitive for payload encodings that cannot drop records byte-verbatim —
/// a v2 interned/delta stream is decoded, filtered, and re-encoded against
/// a fresh table by the application-side `plan`.
///
/// The crash-safety protocol is identical to [`compact`]: tmp files,
/// fsync, segments-then-commit renames, directory sync.
pub fn compact_with(
    dir: &Path,
    mut plan: impl FnMut(usize, Vec<Vec<u8>>) -> std::result::Result<Vec<Vec<u8>>, String>,
) -> Result<CompactStats> {
    let reader = LogReader::open(dir)?;
    let layout = Layout::new(dir);
    let shards = reader.shard_count();
    let Some(head) = reader.last_commit().cloned() else {
        return Ok(CompactStats {
            records_before: 0,
            records_after: 0,
            bytes_before: 0,
            bytes_after: 0,
        });
    };

    let mut stats = CompactStats {
        records_before: 0,
        records_after: 0,
        bytes_before: 0,
        bytes_after: 0,
    };
    let mut new_offsets = Vec::with_capacity(shards);
    let mut tmp_paths = Vec::with_capacity(shards + 1);

    for shard in 0..shards {
        let records = reader.read_shard(shard)?;
        stats.records_before += records.len();
        stats.bytes_before += head.offsets[shard];

        let survivors = plan(shard, records).map_err(Error::Format)?;
        let mut out = Vec::new();
        for rec in &survivors {
            frame::encode_into(rec, &mut out);
        }
        stats.records_after += survivors.len();
        stats.bytes_after += out.len() as u64;
        new_offsets.push(out.len() as u64);

        let tmp = layout.segment_file(shard).with_extension("seg.tmp");
        write_fsync(&tmp, &out)?;
        tmp_paths.push((tmp, layout.segment_file(shard)));
    }

    // Fresh single-entry commit log carrying the head checkpoint forward.
    let rebased = CommitRecord {
        offsets: new_offsets,
        app: head.app.clone(),
    };
    let mut commit_bytes = Vec::new();
    frame::encode_into(&rebased.encode(), &mut commit_bytes);
    let commits_tmp = layout.commits_file().with_extension("log.tmp");
    write_fsync(&commits_tmp, &commit_bytes)?;
    tmp_paths.push((commits_tmp, layout.commits_file()));

    // Publish. Renames are atomic per file; if a crash interleaves them the
    // next open still finds a consistent pair (old segments are supersets of
    // new ones at identical prefixes is NOT guaranteed, so order matters:
    // segments first, commit log last — a new commit log only ever points
    // into fully-renamed new segments, while the old commit log pointing at
    // a new (shorter) segment merely falls back to an older commit).
    for (tmp, live) in tmp_paths {
        std::fs::rename(tmp, live)?;
    }
    sync_dir(dir)?;
    Ok(stats)
}

fn write_fsync(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<()> {
    // Durability of the renames themselves. Directory fsync is
    // platform-dependent; failure to open the dir is not fatal.
    match std::fs::File::open(dir) {
        Ok(d) => {
            d.sync_all().map_err(Error::Io)?;
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogWriter;
    use crate::testutil::TempDir;

    /// Payload convention for these tests: `key:kind` where kind `c` = a
    /// change record (Keep) and `u` = unchanged (Supersede by key).
    fn classify(p: &[u8]) -> Retention {
        let s = std::str::from_utf8(p).unwrap();
        let (key, kind) = s.split_once(':').unwrap();
        if kind == "c" {
            Retention::Keep
        } else {
            Retention::Supersede(key.to_string())
        }
    }

    #[test]
    fn drops_superseded_keeps_changes_and_latest() {
        let t = TempDir::new("compact");
        let mut w = LogWriter::create(&t.0, 2, b"cfg").unwrap();
        // Shard 0: a:u, a:c, a:u, a:u  → keep a:c and the final a:u.
        for (r, p) in ["a:u", "a:c", "a:u", "a:u"].iter().enumerate() {
            w.append(0, p.as_bytes());
            // Shard 1: b:u every round → only the last survives.
            w.append(1, b"b:u");
            w.commit(format!("round-{r}").as_bytes()).unwrap();
        }
        drop(w);

        let stats = compact(&t.0, classify).unwrap();
        assert_eq!(stats.records_before, 8);
        assert_eq!(stats.records_after, 3);
        assert!(stats.bytes_after < stats.bytes_before);

        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.torn_bytes(), 0);
        assert_eq!(r.commits().len(), 1, "single rebased commit");
        assert_eq!(
            r.last_commit().unwrap().app,
            b"round-3",
            "checkpoint carried"
        );
        assert_eq!(
            r.read_shard(0).unwrap(),
            vec![b"a:c".to_vec(), b"a:u".to_vec()]
        );
        assert_eq!(r.read_shard(1).unwrap(), vec![b"b:u".to_vec()]);
    }

    #[test]
    fn compacted_log_accepts_further_appends() {
        let t = TempDir::new("compact_append");
        let mut w = LogWriter::create(&t.0, 1, b"cfg").unwrap();
        for r in 0..3 {
            w.append(0, b"x:u");
            w.commit(format!("r{r}").as_bytes()).unwrap();
        }
        drop(w);
        compact(&t.0, classify).unwrap();

        let mut w = LogWriter::open_append(&t.0).unwrap();
        w.append(0, b"x:c");
        w.commit(b"r3").unwrap();
        drop(w);

        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(
            r.read_shard(0).unwrap(),
            vec![b"x:u".to_vec(), b"x:c".to_vec()]
        );
        assert_eq!(r.last_commit().unwrap().app, b"r3");
    }

    #[test]
    fn compact_with_can_transcode_payloads() {
        let t = TempDir::new("compact_with");
        let mut w = LogWriter::create(&t.0, 2, b"cfg").unwrap();
        for r in 0..3 {
            w.append(0, format!("rec{r}").as_bytes());
            w.append(1, format!("other{r}").as_bytes());
            w.commit(format!("r{r}").as_bytes()).unwrap();
        }
        drop(w);

        // Drop the first record of each shard and rewrite the rest —
        // payload bytes change, which plain `compact` can never do.
        let stats = compact_with(&t.0, |shard, records| {
            Ok(records
                .into_iter()
                .skip(1)
                .map(|r| {
                    let mut v = format!("s{shard}:").into_bytes();
                    v.extend_from_slice(&r);
                    v
                })
                .collect())
        })
        .unwrap();
        assert_eq!(stats.records_before, 6);
        assert_eq!(stats.records_after, 4);

        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.last_commit().unwrap().app, b"r2", "checkpoint carried");
        assert_eq!(
            r.read_shard(0).unwrap(),
            vec![b"s0:rec1".to_vec(), b"s0:rec2".to_vec()]
        );

        // A plan error aborts without touching the live files.
        assert!(compact_with(&t.0, |_, _| Err("boom".into())).is_err());
        let r = LogReader::open(&t.0).unwrap();
        assert_eq!(r.read_shard(0).unwrap().len(), 2);
    }

    #[test]
    fn empty_log_compacts_to_noop() {
        let t = TempDir::new("compact_empty");
        LogWriter::create(&t.0, 2, b"cfg").unwrap();
        let stats = compact(&t.0, classify).unwrap();
        assert_eq!(stats.records_before, 0);
        assert!(LogReader::open(&t.0).unwrap().last_commit().is_none());
    }
}
