//! Property tests: HAC invariants, Jaccard metric axioms, union-find,
//! histogram/ECDF consistency.

use analysis::{jaccard_distance, jaccard_similarity, Dendrogram, Ecdf, Histogram, UnionFind};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..20, 1..8)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        2..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Jaccard distance is a metric on sets: identity, symmetry, bounds.
    #[test]
    fn jaccard_metric_axioms(sets in arb_sets()) {
        for a in &sets {
            prop_assert_eq!(jaccard_distance(a, a), 0.0);
            for b in &sets {
                let dab = jaccard_distance(a, b);
                prop_assert!((0.0..=1.0).contains(&dab));
                prop_assert_eq!(dab, jaccard_distance(b, a));
            }
        }
    }

    /// Triangle inequality for Jaccard distance (it is a true metric).
    #[test]
    fn jaccard_triangle(sets in arb_sets()) {
        for a in &sets {
            for b in &sets {
                for c in &sets {
                    let ab = jaccard_distance(a, b);
                    let bc = jaccard_distance(b, c);
                    let ac = jaccard_distance(a, c);
                    prop_assert!(ac <= ab + bc + 1e-12);
                }
            }
        }
    }

    /// The dendrogram is structurally valid: n-1 merges, monotone distances,
    /// final size n, and every cut is a partition of the leaves.
    #[test]
    fn hac_structural_invariants(sets in arb_sets(), cut_at in 0.0f64..=1.0) {
        let n = sets.len();
        let dend = Dendrogram::build(n, |i, j| jaccard_distance(&sets[i], &sets[j]));
        prop_assert_eq!(dend.merges().len(), n - 1);
        prop_assert!(dend.is_monotone(), "merge distances must be non-decreasing");
        prop_assert_eq!(dend.merges().last().unwrap().size, n);
        let clusters = dend.cut(cut_at);
        let mut seen = HashSet::new();
        for c in &clusters {
            prop_assert!(!c.is_empty());
            for &leaf in c {
                prop_assert!(leaf < n);
                prop_assert!(seen.insert(leaf), "leaf {} in two clusters", leaf);
            }
        }
        prop_assert_eq!(seen.len(), n);
        // Cut granularity is monotone in the threshold.
        let finer = dend.cut((cut_at - 0.2).max(0.0));
        prop_assert!(finer.len() >= clusters.len());
    }

    /// Identical sets always land in the same cluster for any cut >= 0.
    #[test]
    fn hac_identical_items_cluster(dup_count in 2usize..6, cut_at in 0.0f64..=1.0) {
        let mut sets: Vec<Vec<u32>> = vec![vec![1, 2, 3]; dup_count];
        sets.push(vec![100, 101]);
        sets.push(vec![200]);
        let n = sets.len();
        let dend = Dendrogram::build(n, |i, j| jaccard_distance(&sets[i], &sets[j]));
        let clusters = dend.cut(cut_at);
        let cluster_of_first = clusters.iter().find(|c| c.contains(&0)).unwrap();
        for i in 0..dup_count {
            prop_assert!(cluster_of_first.contains(&i));
        }
    }

    /// Union-find: union is idempotent and set_count decreases exactly on
    /// novel unions.
    #[test]
    fn union_find_counts(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..60)) {
        let mut uf = UnionFind::new(20);
        let mut expected = 20;
        for (a, b) in ops {
            let novel = !uf.same(a, b);
            let did = uf.union(a, b);
            prop_assert_eq!(did, novel);
            if novel { expected -= 1; }
            prop_assert_eq!(uf.set_count(), expected);
        }
        let groups = uf.groups();
        prop_assert_eq!(groups.len(), expected);
        prop_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 20);
    }

    /// Histogram conserves mass; ECDF is monotone.
    #[test]
    fn histogram_and_ecdf(values in proptest::collection::vec(0u64..200_000, 1..100)) {
        let mut h = Histogram::new(5000);
        for &v in &values {
            h.add(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.bins().map(|(_, c)| c).sum::<u64>(), values.len() as u64);

        let e = Ecdf::new(values.iter().map(|&v| v as f64).collect());
        let mut last = 0.0;
        for x in (0..=200_000u64).step_by(20_000) {
            let f = e.fraction_le(x as f64);
            prop_assert!(f >= last);
            last = f;
        }
        prop_assert_eq!(e.fraction_le(200_000.0), 1.0);
    }

    /// similarity + distance == 1 everywhere.
    #[test]
    fn jaccard_complement(sets in arb_sets()) {
        for a in &sets {
            for b in &sets {
                let s = jaccard_similarity(a, b) + jaccard_distance(a, b);
                prop_assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }
}
