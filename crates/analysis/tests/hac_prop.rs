//! Property tests for the HAC determinism contract: the clustering a cut
//! produces is invariant under input permutation and thread count, and merge
//! distances are monotonically non-decreasing (UPGMA reducibility) through
//! both the serial and the parallel build.
//!
//! Permutation invariance needs care: UPGMA with *tied* distances is not
//! permutation-invariant in general (which reciprocal pair the NN-chain
//! finds first depends on leaf order), so the invariance property generates
//! content-keyed, pairwise-distinct pseudorandom distances — every leaf
//! carries a unique key and d(a, b) hashes the unordered key pair, making
//! the metric a function of leaf *identity*, never of position.

use analysis::{jaccard_distance, Dendrogram};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distance in (0, 1) keyed by the unordered key pair: identical for any
/// leaf ordering, distinct for distinct pairs (64-bit hash, so ties across
/// the ≤ ~200 pairs a case generates are vanishingly unlikely).
fn pair_dist(a: u64, b: u64) -> f64 {
    let (lo, hi) = (a.min(b), a.max(b));
    let h = splitmix(lo ^ splitmix(hi));
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// Deterministic Fisher–Yates from a seed.
fn shuffled<T>(mut v: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..v.len()).rev() {
        seed = splitmix(seed);
        v.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    v
}

/// Cut clusters as a canonical set-of-sets of leaf *keys* (not indices), so
/// partitions computed from different input orders are comparable.
fn clusters_by_key(dend: &Dendrogram, keys: &[u64], cut: f64) -> BTreeSet<BTreeSet<u64>> {
    dend.cut(cut)
        .into_iter()
        .map(|c| c.into_iter().map(|i| keys[i]).collect())
        .collect()
}

fn arb_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(any::<u64>(), 2..24)
        .prop_map(|s| s.into_iter().collect::<Vec<u64>>())
}

fn arb_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u32..20, 1..8)
            .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        2..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cluster assignment is invariant under input permutation *and* thread
    /// count: shuffling the leaves and fanning the distance fill over any
    /// number of workers yields the same partition of the same keys.
    #[test]
    fn cut_invariant_under_permutation_and_threads(
        keys in arb_keys(),
        perm_seed in any::<u64>(),
        cut in 0.0f64..=1.0,
    ) {
        let n = keys.len();
        let reference = Dendrogram::build(n, |i, j| pair_dist(keys[i], keys[j]));
        let expected = clusters_by_key(&reference, &keys, cut);
        let shuffled_keys = shuffled(keys, perm_seed);
        for threads in [1usize, 2, 3, 8] {
            let dend = Dendrogram::build_par(n, threads, |i, j| {
                pair_dist(shuffled_keys[i], shuffled_keys[j])
            });
            prop_assert_eq!(
                &clusters_by_key(&dend, &shuffled_keys, cut),
                &expected,
                "partition diverged (threads={})", threads
            );
        }
    }

    /// Merge distances are monotonically non-decreasing through both builds,
    /// and the parallel build reproduces the serial merge list *exactly* —
    /// even on Jaccard inputs, where tied distances are common (same matrix
    /// in, same NN-chain walk out).
    #[test]
    fn merges_monotone_and_thread_invariant(sets in arb_sets(), threads in 1usize..9) {
        let n = sets.len();
        let serial = Dendrogram::build(n, |i, j| jaccard_distance(&sets[i], &sets[j]));
        prop_assert!(serial.is_monotone(), "serial merge distances must be non-decreasing");
        for w in serial.merges().windows(2) {
            prop_assert!(w[1].distance >= w[0].distance - 1e-9);
        }
        let par = Dendrogram::build_par(n, threads, |i, j| {
            jaccard_distance(&sets[i], &sets[j])
        });
        prop_assert!(par.is_monotone());
        prop_assert_eq!(par.merges(), serial.merges());
    }
}
