//! # dangling-analysis — statistics and clustering toolkit
//!
//! The numerical machinery behind the paper's figures:
//!
//! - [`stats`] — histograms (Fig 6), ECDFs (Fig 15), monthly time series
//!   (Fig 1, 16, 19, 20), top-k counters (Tables 1/5/6),
//! - [`union_find`] — disjoint sets for connected components,
//! - [`graph`] — the identifier co-occurrence graph of §6 (Fig 27),
//! - [`jaccard`] — the set distance used for identifier clustering,
//! - [`hac`] — average-linkage agglomerative hierarchical clustering via the
//!   nearest-neighbour-chain algorithm (O(n²)), with the distance-threshold
//!   cut at 0.95 used for Fig 22/28,
//! - [`table`] — plain-text table rendering for the experiment harness.

pub mod graph;
pub mod hac;
pub mod jaccard;
pub mod stats;
pub mod table;
pub mod union_find;

pub use graph::CoOccurrenceGraph;
pub use hac::{Dendrogram, Merge};
pub use jaccard::{jaccard_distance, jaccard_similarity};
pub use stats::{Ecdf, Histogram, MonthlySeries, TopK};
pub use table::Table;
pub use union_find::UnionFind;
