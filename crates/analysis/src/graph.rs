//! Identifier co-occurrence graph (§6, Figure 27).
//!
//! Nodes are identifiers (phone numbers, social handles, shortlinks, backend
//! IPs); an edge connects two identifiers that appear together on at least
//! one hijacked domain's HTML, weighted by how many domains they share.
//! Connected components delineate candidate attacker infrastructures.

use crate::union_find::UnionFind;
use std::collections::HashMap;

/// A weighted undirected co-occurrence graph over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct CoOccurrenceGraph {
    n: usize,
    /// Edge weights keyed by (min, max) node pair.
    edges: HashMap<(usize, usize), u64>,
    /// Per-node association count (how many domains the identifier is on).
    node_weight: Vec<u64>,
}

impl CoOccurrenceGraph {
    pub fn new(n: usize) -> Self {
        CoOccurrenceGraph {
            n,
            edges: HashMap::new(),
            node_weight: vec![0; n],
        }
    }

    /// Build from per-item attribute lists: `items[d]` is the set of node ids
    /// appearing on domain `d`. Every pair within an item gets +1 edge
    /// weight; every node in an item gets +1 node weight.
    pub fn from_items(n: usize, items: &[Vec<usize>]) -> Self {
        let mut g = CoOccurrenceGraph::new(n);
        for ids in items {
            for &a in ids {
                g.node_weight[a] += 1;
            }
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    g.add_edge(ids[i], ids[j], 1);
                }
            }
        }
        g
    }

    pub fn add_edge(&mut self, a: usize, b: usize, weight: u64) {
        assert!(a < self.n && b < self.n);
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += weight;
    }

    pub fn node_count(&self) -> usize {
        self.n
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    pub fn edge_weight(&self, a: usize, b: usize) -> u64 {
        self.edges.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
    }

    pub fn node_weight(&self, a: usize) -> u64 {
        self.node_weight[a]
    }

    pub fn edges(&self) -> impl Iterator<Item = ((usize, usize), u64)> + '_ {
        self.edges.iter().map(|(&k, &w)| (k, w))
    }

    /// Connected components (each sorted, components ordered by first node).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.n);
        for &(a, b) in self.edges.keys() {
            uf.union(a, b);
        }
        uf.groups()
    }

    /// Degree of a node.
    pub fn degree(&self, a: usize) -> usize {
        self.edges
            .keys()
            .filter(|&&(x, y)| x == a || y == a)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_weights() {
        // domain 0 carries ids {0,1}; domain 1 carries {0,1,2}; domain 2: {3}
        let items = vec![vec![0, 1], vec![0, 1, 2], vec![3]];
        let g = CoOccurrenceGraph::from_items(4, &items);
        assert_eq!(g.edge_weight(0, 1), 2);
        assert_eq!(g.edge_weight(1, 2), 1);
        assert_eq!(g.edge_weight(0, 3), 0);
        assert_eq!(g.node_weight(0), 2);
        assert_eq!(g.node_weight(3), 1);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn components_split() {
        let items = vec![vec![0, 1], vec![1, 2], vec![3, 4]];
        let g = CoOccurrenceGraph::from_items(6, &items);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = CoOccurrenceGraph::new(2);
        g.add_edge(0, 0, 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn degree() {
        let g = CoOccurrenceGraph::from_items(4, &[vec![0, 1, 2]]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn edge_symmetry() {
        let mut g = CoOccurrenceGraph::new(3);
        g.add_edge(2, 1, 3);
        assert_eq!(g.edge_weight(1, 2), 3);
        assert_eq!(g.edge_weight(2, 1), 3);
    }
}
