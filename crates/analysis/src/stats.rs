//! Histograms, ECDFs, monthly time series, and top-k counters.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Fixed-width histogram over `u64` values (Figure 6 uses bins of 5,000
/// uploaded files).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width > 0);
        Histogram {
            bin_width,
            counts: Vec::new(),
            total: 0,
        }
    }

    pub fn add(&mut self, value: u64) {
        let bin = (value / self.bin_width) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// `(bin_lower_bound, count)` pairs, skipping trailing empties.
    pub fn bins(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }

    pub fn count_in_bin(&self, bin: usize) -> u64 {
        self.counts.get(bin).copied().unwrap_or(0)
    }
}

/// Empirical CDF over f64 values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: values }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ x.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }
}

/// A time series bucketed by month index (`year*12 + month-1`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MonthlySeries {
    buckets: HashMap<i32, f64>,
}

impl MonthlySeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, month_index: i32, amount: f64) {
        *self.buckets.entry(month_index).or_insert(0.0) += amount;
    }

    pub fn increment(&mut self, month_index: i32) {
        self.add(month_index, 1.0);
    }

    pub fn get(&self, month_index: i32) -> f64 {
        self.buckets.get(&month_index).copied().unwrap_or(0.0)
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sorted `(month_index, value)` pairs spanning the full observed range
    /// (missing months filled with 0).
    pub fn dense(&self) -> Vec<(i32, f64)> {
        let Some(&min) = self.buckets.keys().min() else {
            return Vec::new();
        };
        let max = *self.buckets.keys().max().unwrap();
        (min..=max).map(|m| (m, self.get(m))).collect()
    }

    /// Running cumulative sum of [`MonthlySeries::dense`].
    pub fn cumulative(&self) -> Vec<(i32, f64)> {
        let mut acc = 0.0;
        self.dense()
            .into_iter()
            .map(|(m, v)| {
                acc += v;
                (m, acc)
            })
            .collect()
    }

    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }
}

/// Frequency counter with deterministic top-k extraction.
#[derive(Debug, Clone)]
pub struct TopK<T: Eq + Hash + Ord + Clone> {
    counts: HashMap<T, u64>,
}

impl<T: Eq + Hash + Ord + Clone> Default for TopK<T> {
    fn default() -> Self {
        TopK {
            counts: HashMap::new(),
        }
    }
}

impl<T: Eq + Hash + Ord + Clone> TopK<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, item: T) {
        *self.counts.entry(item).or_insert(0) += 1;
    }

    pub fn add_n(&mut self, item: T, n: u64) {
        *self.counts.entry(item).or_insert(0) += n;
    }

    pub fn count(&self, item: &T) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Top `k` by count descending, ties broken by item ordering (stable
    /// across runs).
    pub fn top(&self, k: usize) -> Vec<(T, u64)> {
        let mut v: Vec<(T, u64)> = self.counts.iter().map(|(t, &c)| (t.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::new(5000);
        for v in [0, 4999, 5000, 14_999, 144_349] {
            h.add(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count_in_bin(0), 2);
        assert_eq!(h.count_in_bin(1), 1);
        assert_eq!(h.count_in_bin(2), 1);
        assert_eq!(h.count_in_bin(28), 1); // 144349/5000 = 28
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins[0], (0, 2));
        assert_eq!(bins[1], (5000, 1));
    }

    #[test]
    fn ecdf_quantiles() {
        let e = Ecdf::new((1..=100).map(|v| v as f64).collect());
        assert_eq!(e.fraction_le(15.0), 0.15);
        assert_eq!(e.fraction_le(0.0), 0.0);
        assert_eq!(e.fraction_le(1000.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(50.0));
        assert_eq!(e.quantile(1.0), Some(100.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(100.0));
        assert_eq!(e.mean(), Some(50.5));
    }

    #[test]
    fn ecdf_empty_and_nan() {
        let e = Ecdf::new(vec![f64::NAN, f64::INFINITY]);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.fraction_le(1.0), 0.0);
    }

    #[test]
    fn monthly_series_dense_and_cumulative() {
        let mut s = MonthlySeries::new();
        s.increment(24240); // 2020-01
        s.increment(24240);
        s.increment(24242); // 2020-03
        let d = s.dense();
        assert_eq!(d, vec![(24240, 2.0), (24241, 0.0), (24242, 1.0)]);
        let c = s.cumulative();
        assert_eq!(c, vec![(24240, 2.0), (24241, 2.0), (24242, 3.0)]);
        assert_eq!(s.total(), 3.0);
    }

    #[test]
    fn topk_ordering() {
        let mut t = TopK::new();
        for w in ["slot", "slot", "slot", "judi", "judi", "online"] {
            t.add(w);
        }
        t.add_n("gacor", 2);
        assert_eq!(
            t.top(3),
            vec![("slot", 3), ("gacor", 2), ("judi", 2)] // tie: gacor < judi
        );
        assert_eq!(t.count(&"online"), 1);
        assert_eq!(t.distinct(), 4);
        assert_eq!(t.total(), 8);
    }
}
