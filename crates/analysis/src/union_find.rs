//! Disjoint-set union with path compression and union by rank.

/// A union-find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Find with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union; returns true if the two were previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Materialize the partition as groups of member indices, deterministic
    /// order (sorted by smallest member).
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.set_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn groups_deterministic() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 5);
        uf.union(0, 2);
        let g = uf.groups();
        assert_eq!(g, vec![vec![0, 2], vec![1], vec![3], vec![4, 5]]);
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
