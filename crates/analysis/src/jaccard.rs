//! Jaccard similarity/distance on sorted ID sets.
//!
//! §6 defines identifier distance as 1 − |A∩B|/|A∪B| over the sets of
//! hijacked domains each identifier appears on: 0 means identical domain
//! sets, 1 means no shared domain.

/// Jaccard similarity of two **sorted, deduplicated** slices.
pub fn jaccard_similarity(a: &[u32], b: &[u32]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted unique");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted unique");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Jaccard distance = 1 − similarity.
pub fn jaccard_distance(a: &[u32], b: &[u32]) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

/// Size of the intersection of two sorted unique slices.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(jaccard_similarity(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_distance(&[1, 2, 3], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(jaccard_similarity(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
    }

    #[test]
    fn partial_overlap() {
        // |{2,3}| / |{1,2,3,4}| = 0.5
        assert_eq!(jaccard_similarity(&[1, 2, 3], &[2, 3, 4]), 0.5);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(jaccard_similarity(&[], &[]), 1.0);
        assert_eq!(jaccard_similarity(&[], &[1]), 0.0);
    }

    #[test]
    fn intersection() {
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 6, 7, 9]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }
}
