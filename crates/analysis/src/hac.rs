//! Average-linkage agglomerative hierarchical clustering.
//!
//! §6 clusters identifiers by the Jaccard distance of their hijacked-domain
//! sets, cutting the dendrogram at 0.95. We implement UPGMA (unweighted
//! average linkage) with the **nearest-neighbour-chain** algorithm: average
//! linkage is a *reducible* linkage, for which NN-chain provably produces
//! the same merges as the naive O(n³) algorithm while running in O(n²) time
//! and O(n²) memory (the condensed distance matrix).
//!
//! The dendrogram follows the scipy convention: leaves are `0..n`, the k-th
//! merge creates cluster `n + k`.

use serde::{Deserialize, Serialize};

/// One merge step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// Cluster ids merged (leaf `< n`, internal `>= n`).
    pub a: usize,
    pub b: usize,
    /// Linkage distance at which they merged.
    pub distance: f64,
    /// Size of the new cluster.
    pub size: usize,
}

/// The full clustering result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

/// Condensed upper-triangle index for an n×n symmetric matrix.
#[inline]
fn tri(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i != j);
    let (i, j) = (i.min(j), i.max(j));
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

impl Dendrogram {
    /// Cluster `n` leaves given a pairwise distance function. O(n²) calls to
    /// `dist` plus O(n²) merge work.
    pub fn build<F: FnMut(usize, usize) -> f64>(n: usize, mut dist: F) -> Dendrogram {
        if n == 0 {
            return Dendrogram {
                n,
                merges: Vec::new(),
            };
        }
        // Condensed distance matrix between *current* clusters, updated via
        // Lance–Williams for UPGMA: d(k, i∪j) = (|i| d(k,i) + |j| d(k,j)) / (|i|+|j|)
        let mut d = vec![0.0f64; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                d[tri(n, i, j)] = dist(i, j);
            }
        }
        Self::nn_chain(n, d)
    }

    /// [`Dendrogram::build`] with the O(n²) distance-matrix fill fanned out
    /// over `threads` workers. The fill dominates HAC wall time whenever the
    /// metric is non-trivial (the §6 Jaccard-over-domain-sets case), and it
    /// is embarrassingly parallel: the condensed upper triangle is split at
    /// row boundaries into contiguous blocks of roughly equal cell count,
    /// each worker fills its own disjoint slice, and the merge phase then
    /// runs on exactly the matrix the serial fill would have produced — the
    /// result is identical (same `f64` cells, same NN-chain walk) for any
    /// thread count.
    pub fn build_par<F>(n: usize, threads: usize, dist: F) -> Dendrogram
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let threads = threads.max(1);
        if n == 0 {
            return Dendrogram {
                n,
                merges: Vec::new(),
            };
        }
        let mut d = vec![0.0f64; n * (n - 1) / 2];
        if threads == 1 || n < 3 {
            for i in 0..n {
                for j in (i + 1)..n {
                    d[tri(n, i, j)] = dist(i, j);
                }
            }
            return Self::nn_chain(n, d);
        }
        // Row i owns the contiguous condensed range of length n-1-i, so a
        // split at row boundaries yields disjoint &mut slices. Rows shrink
        // linearly, so blocks are balanced by *cell* count, not row count.
        let target = d.len().div_ceil(threads).max(1);
        let mut blocks: Vec<(usize, usize, &mut [f64])> = Vec::with_capacity(threads);
        let mut rest = d.as_mut_slice();
        let mut row = 0;
        while row + 1 < n {
            let start = row;
            let mut cells = 0;
            while row + 1 < n && cells < target {
                cells += n - 1 - row;
                row += 1;
            }
            let (block, tail) = rest.split_at_mut(cells);
            rest = tail;
            blocks.push((start, row, block));
        }
        let dist = &dist;
        std::thread::scope(|s| {
            for (start, end, block) in blocks {
                s.spawn(move || {
                    let mut off = 0;
                    for i in start..end {
                        for j in (i + 1)..n {
                            block[off] = dist(i, j);
                            off += 1;
                        }
                    }
                });
            }
        });
        Self::nn_chain(n, d)
    }

    /// The merge phase: NN-chain over a pre-filled condensed distance matrix,
    /// then the scipy-style sort/relabel. Serial and deterministic — shared
    /// by [`Dendrogram::build`] and [`Dendrogram::build_par`].
    fn nn_chain(n: usize, mut d: Vec<f64>) -> Dendrogram {
        let mut size = vec![1usize; n]; // by slot
        let mut active = vec![true; n];
        // Raw merges recorded as (slot_i, slot_j, distance); NN-chain emits
        // them in chain order, not distance order — sorted and relabelled
        // below (the standard scipy post-processing step).
        let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n - 1);

        // NN-chain.
        let mut chain: Vec<usize> = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 1 {
            if chain.is_empty() {
                let start = (0..n).find(|&i| active[i]).unwrap();
                chain.push(start);
            }
            loop {
                let top = *chain.last().unwrap();
                // Find the nearest active neighbour of `top` (deterministic
                // tie-break by index).
                let mut best = usize::MAX;
                let mut best_d = f64::INFINITY;
                for j in 0..n {
                    if j == top || !active[j] {
                        continue;
                    }
                    let dj = d[tri(n, top, j)];
                    if dj < best_d {
                        best_d = dj;
                        best = j;
                    }
                }
                debug_assert!(best != usize::MAX);
                if chain.len() >= 2 && best == chain[chain.len() - 2] {
                    // Reciprocal nearest neighbours: merge top & best.
                    chain.pop();
                    chain.pop();
                    let (i, j) = (top.min(best), top.max(best));
                    let new_size = size[i] + size[j];
                    raw.push((i, j, best_d));
                    // Reuse slot i for the merged cluster; deactivate j.
                    for k in 0..n {
                        if k == i || k == j || !active[k] {
                            continue;
                        }
                        let dk = (size[i] as f64 * d[tri(n, k, i)]
                            + size[j] as f64 * d[tri(n, k, j)])
                            / new_size as f64;
                        d[tri(n, k, i)] = dk;
                    }
                    size[i] = new_size;
                    active[j] = false;
                    remaining -= 1;
                    break;
                }
                chain.push(best);
            }
            // A merged slot may still be on the chain; NN-chain guarantees it
            // is not (only the top two are removed), but clear stale entries
            // pointing at deactivated slots defensively.
            chain.retain(|&s| active[s]);
        }

        // Sort merges by distance (ties broken by chain order, which is a
        // valid UPGMA order because the linkage is reducible) and relabel
        // slot pairs into dendrogram cluster ids with a union-find. The
        // `total_cmp` + index tie-break makes the order a *total* one, so
        // the emitted dendrogram cannot depend on sort internals.
        let mut order: Vec<usize> = (0..raw.len()).collect();
        order.sort_by(|&x, &y| raw[x].2.total_cmp(&raw[y].2).then(x.cmp(&y)));
        let mut uf = crate::union_find::UnionFind::new(n);
        // Root slot -> current cluster id and size.
        let mut id_of: Vec<usize> = (0..n).collect();
        let mut size_of: Vec<usize> = vec![1; n];
        let mut merges: Vec<Merge> = Vec::with_capacity(raw.len());
        for (k, &oi) in order.iter().enumerate() {
            let (si, sj, distance) = raw[oi];
            let (ri, rj) = (uf.find(si), uf.find(sj));
            debug_assert_ne!(ri, rj, "merge joins an already-joined pair");
            let (ida, idb) = (id_of[ri], id_of[rj]);
            let new_size = size_of[ri] + size_of[rj];
            uf.union(ri, rj);
            let root = uf.find(ri);
            id_of[root] = n + k;
            size_of[root] = new_size;
            merges.push(Merge {
                a: ida.min(idb),
                b: ida.max(idb),
                distance,
                size: new_size,
            });
        }
        Dendrogram { n, merges }
    }

    pub fn leaf_count(&self) -> usize {
        self.n
    }

    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut at `threshold`: apply only merges with `distance <= threshold`,
    /// return the resulting partition (clusters of leaf indices, sorted,
    /// ordered by smallest leaf). §6 cuts at 0.95.
    pub fn cut(&self, threshold: f64) -> Vec<Vec<usize>> {
        let mut uf = crate::union_find::UnionFind::new(self.n);
        // Track a representative leaf for every cluster id.
        let mut rep: Vec<usize> = (0..self.n).collect();
        rep.reserve(self.merges.len());
        for m in &self.merges {
            let ra = rep[m.a];
            let rb = rep[m.b];
            if m.distance <= threshold {
                uf.union(ra, rb);
            }
            // The new cluster's representative: a's leaf (arbitrary but
            // consistent).
            rep.push(ra);
        }
        uf.groups()
    }

    /// Monotonicity check: UPGMA merge distances are non-decreasing (within
    /// floating-point slack). Exposed for tests/benchmarks.
    pub fn is_monotone(&self) -> bool {
        self.merges
            .windows(2)
            .all(|w| w[1].distance >= w[0].distance - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_from(points: &[f64]) -> impl FnMut(usize, usize) -> f64 + '_ {
        move |i, j| (points[i] - points[j]).abs()
    }

    #[test]
    fn two_obvious_groups() {
        // {0.0, 0.1, 0.2} and {10.0, 10.1}
        let pts = [0.0, 0.1, 0.2, 10.0, 10.1];
        let dend = Dendrogram::build(pts.len(), dist_from(&pts));
        assert_eq!(dend.merges().len(), 4);
        assert!(dend.is_monotone());
        let clusters = dend.cut(1.0);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3, 4]]);
        // Cutting above the max distance gives one cluster.
        let all = dend.cut(100.0);
        assert_eq!(all.len(), 1);
        // Cutting below the min distance gives singletons.
        let singles = dend.cut(0.05);
        assert_eq!(singles.len(), 5);
    }

    #[test]
    fn average_linkage_value() {
        // Three points on a line: 0, 1, 5. First merge {0,1} at d=1; then
        // UPGMA distance from {0,1} to {5} = (5 + 4)/2 = 4.5.
        let pts = [0.0, 1.0, 5.0];
        let dend = Dendrogram::build(3, dist_from(&pts));
        assert_eq!(dend.merges()[0].distance, 1.0);
        assert!((dend.merges()[1].distance - 4.5).abs() < 1e-12);
    }

    #[test]
    fn identical_points_merge_at_zero() {
        let pts = [1.0, 1.0, 1.0, 2.0];
        let dend = Dendrogram::build(4, dist_from(&pts));
        let zero_merges = dend.merges().iter().filter(|m| m.distance == 0.0).count();
        assert_eq!(zero_merges, 2);
        let clusters = dend.cut(0.0);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn empty_and_singleton() {
        let dend = Dendrogram::build(0, |_, _| 0.0);
        assert!(dend.cut(1.0).is_empty());
        let dend = Dendrogram::build(1, |_, _| 0.0);
        assert_eq!(dend.cut(1.0), vec![vec![0]]);
        assert!(dend.merges().is_empty());
    }

    #[test]
    fn sizes_accumulate() {
        let pts = [0.0, 0.1, 0.2, 0.3];
        let dend = Dendrogram::build(4, dist_from(&pts));
        let last = dend.merges().last().unwrap();
        assert_eq!(last.size, 4);
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Pseudorandom but content-keyed distances: every pair gets a
        // distinct value, so the dendrogram is unique and any divergence in
        // the parallel fill shows up as a merge mismatch.
        let n = 37;
        let dist = |i: usize, j: usize| {
            let (a, b) = (i.min(j) as u64, i.max(j) as u64);
            let h = (a * 1_000_003 + b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 11) as f64 / (1u64 << 53) as f64
        };
        let serial = Dendrogram::build(n, dist);
        for threads in [1, 2, 3, 8, 64] {
            let par = Dendrogram::build_par(n, threads, dist);
            assert_eq!(par.merges(), serial.merges(), "threads={threads}");
        }
        // Degenerate sizes through the parallel path.
        for n in [0, 1, 2, 3] {
            let par = Dendrogram::build_par(n, 4, dist);
            let ser = Dendrogram::build(n, dist);
            assert_eq!(par.merges(), ser.merges(), "n={n}");
        }
    }

    #[test]
    fn jaccard_style_distances() {
        // Identifier domain-sets like §6: two campaign groups + a loner.
        let sets: Vec<Vec<u32>> = vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![2, 3, 4],
            vec![10, 11],
            vec![10, 11, 12],
            vec![99],
        ];
        let dend = Dendrogram::build(sets.len(), |i, j| {
            crate::jaccard::jaccard_distance(&sets[i], &sets[j])
        });
        let clusters = dend.cut(0.95);
        assert_eq!(clusters.len(), 3);
        assert!(clusters.contains(&vec![0, 1, 2]));
        assert!(clusters.contains(&vec![3, 4]));
        assert!(clusters.contains(&vec![5]));
    }
}
