//! Plain-text table rendering for the experiment harness.
//!
//! Every `repro` subcommand prints its table/figure data through this so the
//! output is directly comparable with the paper's rows.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * ncols)
            );
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Format a fraction as a percent string with one decimal.
pub fn pct(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Thousands separator for readability of large counts.
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo").headers(["name", "count"]);
        t.row(["azure", "8347"]);
        t.row(["aws-s3-longer-name", "983"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("name"));
        // Columns aligned: both data rows same position for second column.
        let lines: Vec<&str> = s.lines().collect();
        let c1 = lines[3].find("8347").unwrap();
        let c2 = lines[4].find("983").unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(8347, 690_779), "1.2%");
        assert_eq!(pct(1, 0), "-");
        assert_eq!(pct(0, 10), "0.0%");
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(1_508_273), "1,508,273");
        assert_eq!(thousands(25_806_449_380), "25,806,449,380");
    }
}
