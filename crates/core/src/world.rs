//! The simulated world: population + cloud + DNS + CAs + attackers.
//!
//! [`World`] owns all mutable state the longitudinal scenario evolves, plus
//! the **ground-truth hijack ledger** — the thing the real study had to
//! reconstruct forensically and we get for free, which lets the test suite
//! score the pipeline's precision/recall instead of taking it on faith.

use attacker::{BinaryArtifact, Campaign, CookieVault, MalwareModel};
use certsim::{CaId, CertId, CtLog};
use cloudsim::{
    AccountId, CapabilityClass, CloudPlatform, PlatformConfig, ResourceId, ServiceId, SiteContent,
};
use contentgen::abuse::{AbuseTopic, SeoTechnique};
use dns::resolver::Transport;
use dns::server::answer_with;
use dns::{CaaRecord, Message, Name, Rcode, RecordData, ResourceRecord, ZoneSet};
use httpsim::{Endpoint, Request, Response};
use rand::Rng;
use serde::Serialize;
use simcore::{RngTree, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use worldgen::{CaaPolicy, OrgCategory, OrgId, Population, VirusTotalModel};

/// Ground truth for one hijack (simulation metadata — the detection pipeline
/// never reads this).
#[derive(Debug, Clone, Serialize)]
pub struct HijackTruth {
    pub victim_fqdn: Name,
    pub cloud_fqdn: Name,
    pub org: OrgId,
    pub campaign: u32,
    pub service: ServiceId,
    pub resource: ResourceId,
    pub start: SimTime,
    /// Set when the org remediates (purges the record).
    pub end: Option<SimTime>,
    pub topic: AbuseTopic,
    pub technique: SeoTechnique,
    pub page_count: u64,
    pub identifiers_embedded: bool,
    pub cert: Option<CertId>,
    pub cert_issued_at: Option<SimTime>,
}

/// Non-cloud origin servers (org apex sites etc.).
#[derive(Debug, Default)]
pub struct OriginServers {
    sites: HashMap<Ipv4Addr, SiteContent>,
    by_host: HashMap<Name, Ipv4Addr>,
}

impl OriginServers {
    pub fn host(&mut self, host: Name, ip: Ipv4Addr, content: SiteContent) {
        self.sites.insert(ip, content);
        self.by_host.insert(host, ip);
    }

    pub fn ip_of(&self, host: &Name) -> Option<Ipv4Addr> {
        self.by_host.get(host).copied()
    }
}

/// The whole simulated world.
pub struct World {
    pub population: Population,
    pub platform: CloudPlatform,
    /// Authoritative zones of the organizations (one per apex).
    pub org_zones: ZoneSet,
    pub origins: OriginServers,
    pub ct: CtLog,
    pub campaigns: Vec<Campaign>,
    pub vault: CookieVault,
    pub binaries: Vec<BinaryArtifact>,
    pub malware_model: MalwareModel,
    pub vt: VirusTotalModel,
    pub truth: Vec<HijackTruth>,
    next_cert_id: u64,
    pub rng_tree: RngTree,
}

impl World {
    pub fn new(
        population: Population,
        campaigns: Vec<Campaign>,
        platform_config: PlatformConfig,
        rng_tree: RngTree,
    ) -> World {
        let mut org_zones = ZoneSet::new();
        let mut origins = OriginServers::default();
        let mut rng = rng_tree.rng("world/origins");
        for org in &population.orgs {
            let zone = org_zones.zone_mut_or_create(&org.apex);
            // CAA policy at the apex (§5.6.2).
            match org.caa {
                CaaPolicy::None => {}
                CaaPolicy::FreeCa => zone.add(ResourceRecord::new(
                    org.apex.clone(),
                    3600,
                    RecordData::Caa(CaaRecord::issue(CaId::LetsEncrypt.caa_identity())),
                )),
                CaaPolicy::PaidOnly => zone.add(ResourceRecord::new(
                    org.apex.clone(),
                    3600,
                    RecordData::Caa(CaaRecord::issue(CaId::DigiCert.caa_identity())),
                )),
            }
            // Apex website on a non-cloud origin (serves HSTS when adopted;
            // parked domains serve the registrar's parking rotation).
            let ip = Ipv4Addr::new(93, 184, (org.id.0 >> 8) as u8, org.id.0 as u8);
            zone.add(ResourceRecord::new(
                org.apex.clone(),
                3600,
                RecordData::A(ip),
            ));
            let mut content = if org.parked {
                contentgen::benign::parked_site(&worldgen::org::registrar_name(org.registrar), 0)
            } else {
                contentgen::benign::benign_site(
                    match org.category {
                        OrgCategory::University => contentgen::BenignKind::University,
                        OrgCategory::Government => contentgen::BenignKind::Government,
                        _ => contentgen::BenignKind::Corporate,
                    },
                    &org.name,
                    org.sector,
                    &org.apex.to_string(),
                    &mut rng,
                )
            };
            if org.uses_hsts {
                content.extra_headers.push((
                    "Strict-Transport-Security".into(),
                    "max-age=31536000; includeSubDomains".into(),
                ));
            }
            origins.host(org.apex.clone(), ip, content);
        }
        let vt = VirusTotalModel::new(&rng_tree);
        World {
            population,
            platform: CloudPlatform::new(platform_config),
            org_zones,
            origins,
            ct: CtLog::new(),
            campaigns,
            vault: CookieVault::new(),
            binaries: Vec::new(),
            malware_model: MalwareModel::default(),
            vt,
            truth: Vec::new(),
            next_cert_id: 1,
            rng_tree,
        }
    }

    /// A DNS transport view over org + platform zones.
    pub fn dns(&self) -> WorldDns<'_> {
        WorldDns {
            org: &self.org_zones,
            cloud: self.platform.zones(),
        }
    }

    /// Allocate a certificate id.
    pub fn fresh_cert_id(&mut self) -> CertId {
        let id = CertId(self.next_cert_id);
        self.next_cert_id += 1;
        id
    }

    /// Who controls the web root of `host` right now? (The HTTP-01 question;
    /// see certsim's `DomainControl` substitution note.)
    pub fn controller_of(&self, host: &Name) -> Option<AccountId> {
        if let Some(res) = self.platform.resource_by_host(host) {
            return Some(res.owner);
        }
        // Org apex origins.
        if self.origins.ip_of(host).is_some() {
            return self
                .population
                .orgs
                .iter()
                .find(|o| &o.apex == host)
                .map(|o| AccountId::Org(o.id.0));
        }
        None
    }

    /// Issue a certificate if validation + CAA pass; logs to CT and binds
    /// HTTPS on the platform resource when the requester controls it there.
    pub fn try_issue_cert(
        &mut self,
        ca: CaId,
        account: AccountId,
        sans: &[Name],
        now: SimTime,
    ) -> Result<CertId, certsim::IssueError> {
        let id = self.fresh_cert_id();
        let resolver = dns::Resolver::new(self.dns());
        let caa_lookup = |name: &Name| resolver.find_caa(name);
        let control = |acct: AccountId, host: &Name, _t: SimTime| -> bool {
            self.controller_of(host) == Some(acct)
        };
        let cert = certsim::issue(ca, account, sans, &control, &caa_lookup, id, now)?;
        // Bind HTTPS for platform-hosted SANs owned by the account.
        let mut bindings: Vec<(ResourceId, Name)> = Vec::new();
        for san in sans {
            if san.is_wildcard() {
                continue;
            }
            if let Some(res) = self.platform.resource_by_host(san) {
                if res.owner == account {
                    bindings.push((res.id, san.clone()));
                }
            }
        }
        for (rid, host) in bindings {
            self.platform.add_tls_host(rid, host);
        }
        self.ct.append(cert, now);
        Ok(id)
    }

    /// The victim-side capability class of a hijack (Table 4).
    pub fn capability_of(&self, service: ServiceId) -> CapabilityClass {
        cloudsim::provider::spec(service).capability
    }

    /// Approximate weekly visitor count for a hijacked FQDN, scaled by the
    /// parent's reputation.
    pub fn weekly_visitors(&self, org: OrgId) -> f64 {
        match self.population.org(org).tranco_rank {
            Some(r) => 4_000.0 / (r as f64).sqrt(),
            None => 3.0,
        }
    }
}

/// Composite DNS transport: organization zones answer first; platform
/// (cloud-suffix) zones answer for everything else they own.
pub struct WorldDns<'a> {
    org: &'a ZoneSet,
    cloud: &'a ZoneSet,
}

impl Transport for WorldDns<'_> {
    fn exchange(&self, query: &Message) -> Message {
        let r = answer_with(self.org, query);
        if r.header.rcode != Rcode::Refused {
            return r;
        }
        answer_with(self.cloud, query)
    }
}

/// HTTP endpoint view: cloud platform first, then org origin servers.
pub struct WorldWeb<'a> {
    pub platform: &'a CloudPlatform,
    pub origins: &'a OriginServers,
}

impl World {
    pub fn web(&self) -> WorldWeb<'_> {
        WorldWeb {
            platform: &self.platform,
            origins: &self.origins,
        }
    }
}

impl Endpoint for WorldWeb<'_> {
    fn icmp_responds(&self, ip: Ipv4Addr, now: SimTime) -> bool {
        if self.origins.sites.contains_key(&ip) {
            return true;
        }
        self.platform.icmp_responds(ip, now)
    }

    fn tcp_open(&self, ip: Ipv4Addr, port: u16, now: SimTime) -> bool {
        if self.origins.sites.contains_key(&ip) {
            return port == 80 || port == 443;
        }
        self.platform.tcp_open(ip, port, now)
    }

    fn http_serve(&self, ip: Ipv4Addr, request: &Request, now: SimTime) -> Option<Response> {
        if let Some(content) = self.origins.sites.get(&ip) {
            return Some(content.serve(request));
        }
        self.platform.http_serve(ip, request, now)
    }
}

/// Convenience for sampling an abuse lifetime for remediation scheduling.
pub fn remediation_delay<R: Rng + ?Sized>(median_days: f64, rng: &mut R) -> i32 {
    simcore::LogNormal::from_median_spread(median_days, 2.4)
        .sample(rng)
        .clamp(2.0, 700.0) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacker::CampaignConfig;
    use simcore::Scale;
    use worldgen::WorldConfig;

    fn tiny_world() -> World {
        let tree = RngTree::new(7);
        let pop = Population::generate(
            WorldConfig {
                scale: Scale::new(2000),
                n_fortune1000: 20,
                n_global500: 10,
                ..Default::default()
            },
            &tree,
        );
        let campaigns = attacker::generate_campaigns(
            &CampaignConfig {
                scale: Scale::new(2000),
                ..Default::default()
            },
            &tree,
        );
        World::new(pop, campaigns, PlatformConfig::default(), tree)
    }

    #[test]
    fn org_zones_have_apex_records() {
        let w = tiny_world();
        let org = &w.population.orgs[0];
        let zone = w.org_zones.get(&org.apex).expect("zone exists");
        assert!(!zone.records_at(&org.apex).is_empty());
    }

    #[test]
    fn dns_view_resolves_apex() {
        let w = tiny_world();
        let org = &w.population.orgs[0];
        let resolver = dns::Resolver::new(w.dns());
        let out = resolver.resolve_a(&org.apex, SimTime(0));
        assert!(out.is_resolvable(), "{:?}", out);
    }

    #[test]
    fn web_view_serves_apex_with_hsts_when_adopted() {
        let w = tiny_world();
        let org = w
            .population
            .orgs
            .iter()
            .find(|o| o.uses_hsts)
            .expect("some org uses HSTS");
        let ip = w.origins.ip_of(&org.apex).unwrap();
        let resp = w
            .web()
            .http_serve(ip, &Request::get(&org.apex.to_string(), "/"), SimTime(0))
            .unwrap();
        assert!(resp.headers.contains("Strict-Transport-Security"));
    }

    #[test]
    fn cert_issuance_respects_control() {
        let mut w = tiny_world();
        let mut rng = w.rng_tree.rng("t");
        let t0 = SimTime(100);
        // Org provisions a resource and binds its subdomain.
        let org = w.population.orgs[0].id;
        let rid = w
            .platform
            .register(
                ServiceId::AzureWebApp,
                Some("corpsite"),
                None,
                AccountId::Org(org.0),
                t0,
                &mut rng,
            )
            .unwrap();
        let sub: Name = w.population.orgs[0].apex.child("www2").unwrap();
        w.platform.bind_custom_domain(rid, sub.clone());
        // The owner can issue...
        let ok = w.try_issue_cert(
            CaId::LetsEncrypt,
            AccountId::Org(org.0),
            std::slice::from_ref(&sub),
            t0,
        );
        assert!(ok.is_ok());
        assert_eq!(w.ct.len(), 1);
        // ...a stranger cannot.
        let bad = w.try_issue_cert(
            CaId::LetsEncrypt,
            AccountId::Attacker(9),
            std::slice::from_ref(&sub),
            t0,
        );
        assert!(bad.is_err());
        // HTTPS now works for the custom domain.
        let ip = w.platform.resource(rid).unwrap().ip;
        assert!(w
            .web()
            .http_serve(ip, &Request::get_https(&sub.to_string(), "/"), t0)
            .is_some());
    }

    #[test]
    fn caa_paid_only_blocks_free_ca() {
        let mut w = tiny_world();
        // Force a PaidOnly CAA org by editing the zone directly.
        let org = w.population.orgs[1].clone();
        let zone = w.org_zones.get_mut(&org.apex).unwrap();
        zone.add(ResourceRecord::new(
            org.apex.clone(),
            3600,
            RecordData::Caa(CaaRecord::issue(CaId::DigiCert.caa_identity())),
        ));
        let mut rng = w.rng_tree.rng("t2");
        let rid = w
            .platform
            .register(
                ServiceId::HerokuApp,
                Some("paidcaa"),
                None,
                AccountId::Org(org.id.0),
                SimTime(0),
                &mut rng,
            )
            .unwrap();
        let sub = org.apex.child("pay").unwrap();
        w.platform.bind_custom_domain(rid, sub.clone());
        let denied = w.try_issue_cert(
            CaId::LetsEncrypt,
            AccountId::Org(org.id.0),
            std::slice::from_ref(&sub),
            SimTime(1),
        );
        assert!(matches!(denied, Err(certsim::IssueError::CaaForbids(_))));
        let allowed =
            w.try_issue_cert(CaId::DigiCert, AccountId::Org(org.id.0), &[sub], SimTime(1));
        assert!(allowed.is_ok());
    }
}
