//! The attacker-capability model (§5.1, Table 4, Figure 17).
//!
//! What an attacker can do with a hijacked domain is a function of the cloud
//! resource class they control: static-content resources (S3, Pantheon CMS)
//! give file/content/html/javascript; full-webserver resources additionally
//! give header access and HTTPS. The §5.5 cookie consequences follow
//! mechanically.

use cloudsim::CapabilityClass;
use serde::{Deserialize, Serialize};

/// Individual capabilities from Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    pub file: bool,
    pub content: bool,
    pub html: bool,
    pub javascript: bool,
    pub headers: bool,
    pub https: bool,
}

/// Table 4, row for a capability class.
pub fn capabilities(class: CapabilityClass) -> Capabilities {
    match class {
        CapabilityClass::StaticContent => Capabilities {
            file: true,
            content: true,
            html: true,
            javascript: true, // via injected script tags (CMS may need a plugin)
            headers: false,
            https: false,
        },
        CapabilityClass::FullWebserver => Capabilities {
            file: true,
            content: true,
            html: true,
            javascript: true,
            headers: true,
            https: true,
        },
    }
}

/// Which cookies can the attacker steal (§5.5)?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CookieAccess {
    /// Header access: all cookies the browser sends, including HttpOnly.
    AllCookies,
    /// Script-only access: cookies without HttpOnly.
    ScriptVisibleOnly,
}

/// Cookie access for a capability class.
pub fn cookie_access(class: CapabilityClass) -> CookieAccess {
    if capabilities(class).headers {
        CookieAccess::AllCookies
    } else {
        CookieAccess::ScriptVisibleOnly
    }
}

/// Can a specific cookie be stolen by a hijack of the given class, given
/// whether the hijack serves valid HTTPS for the domain?
///
/// - `HttpOnly` cookies require header access (full webserver).
/// - `Secure` cookies are only ever sent over HTTPS, so stealing them
///   requires a valid certificate (§5.6's motivation).
pub fn can_steal_cookie(
    class: CapabilityClass,
    hijack_serves_https: bool,
    cookie_http_only: bool,
    cookie_secure: bool,
) -> bool {
    if cookie_http_only && cookie_access(class) != CookieAccess::AllCookies {
        return false;
    }
    if cookie_secure && !hijack_serves_https {
        return false;
    }
    true
}

/// §5.1's attack-prerequisite check, extending [16]: which same-site attacks
/// does the capability class enable? CSP bypass needs file+html; CORS /
/// postMessage / domain-relaxation abuse additionally need javascript —
/// "all of these are possible from static hosting resources".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SameSiteAttack {
    CspBypass,
    CorsAbuse,
    PostMessageAbuse,
    DomainRelaxation,
    SecureCookieTheft,
}

pub fn attack_possible(class: CapabilityClass, https: bool, attack: SameSiteAttack) -> bool {
    let caps = capabilities(class);
    match attack {
        SameSiteAttack::CspBypass => caps.file && caps.html,
        SameSiteAttack::CorsAbuse
        | SameSiteAttack::PostMessageAbuse
        | SameSiteAttack::DomainRelaxation => caps.file && caps.html && caps.javascript,
        SameSiteAttack::SecureCookieTheft => https,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows() {
        let s = capabilities(CapabilityClass::StaticContent);
        assert!(s.file && s.content && s.html && s.javascript);
        assert!(!s.headers && !s.https);
        let f = capabilities(CapabilityClass::FullWebserver);
        assert!(f.headers && f.https);
    }

    #[test]
    fn cookie_access_split() {
        assert_eq!(
            cookie_access(CapabilityClass::FullWebserver),
            CookieAccess::AllCookies
        );
        assert_eq!(
            cookie_access(CapabilityClass::StaticContent),
            CookieAccess::ScriptVisibleOnly
        );
    }

    #[test]
    fn cookie_theft_matrix() {
        use CapabilityClass::*;
        // HttpOnly + Secure: needs full webserver AND https.
        assert!(can_steal_cookie(FullWebserver, true, true, true));
        assert!(!can_steal_cookie(FullWebserver, false, true, true));
        assert!(!can_steal_cookie(StaticContent, true, true, true));
        // Plain cookie: anyone.
        assert!(can_steal_cookie(StaticContent, false, false, false));
        // Secure only: needs https, not headers.
        assert!(!can_steal_cookie(StaticContent, false, false, true));
        assert!(can_steal_cookie(StaticContent, true, false, true));
    }

    #[test]
    fn same_site_attacks_from_static_hosting() {
        // §5.1: "all of these are possible from static hosting resources".
        for a in [
            SameSiteAttack::CspBypass,
            SameSiteAttack::CorsAbuse,
            SameSiteAttack::PostMessageAbuse,
            SameSiteAttack::DomainRelaxation,
        ] {
            assert!(attack_possible(CapabilityClass::StaticContent, false, a));
        }
        // ...except secure-cookie theft, which needs https.
        assert!(!attack_possible(
            CapabilityClass::StaticContent,
            false,
            SameSiteAttack::SecureCookieTheft
        ));
        assert!(attack_possible(
            CapabilityClass::FullWebserver,
            true,
            SameSiteAttack::SecureCookieTheft
        ));
    }
}
