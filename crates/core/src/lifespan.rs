//! Hijack duration analysis (§4.4, Figures 15/16).
//!
//! Lifespan = first HTML sample recognized as abused → the DNS correction
//! that ends the hijack. Open hijacks (no correction by study end) are
//! right-censored at the horizon.

use analysis::Ecdf;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// One abuse interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbuseInterval {
    pub fqdn: Name,
    pub first_seen: SimTime,
    /// DNS correction time (None = still live at the horizon).
    pub corrected_at: Option<SimTime>,
}

impl AbuseInterval {
    /// Duration in days, censored at `horizon`.
    pub fn duration_days(&self, horizon: SimTime) -> i32 {
        let end = self.corrected_at.unwrap_or(horizon);
        (end - self.first_seen).max(0)
    }

    pub fn is_open(&self) -> bool {
        self.corrected_at.is_none()
    }
}

/// Figure 15 summary statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifespanStats {
    pub count: usize,
    /// Fraction removed within 15 days.
    pub frac_within_15d: f64,
    /// Fraction lasting longer than 65 days (paper: > 1/3).
    pub frac_over_65d: f64,
    /// Fraction lasting longer than a year.
    pub frac_over_1y: f64,
    pub median_days: f64,
}

/// Compute the duration ECDF and headline stats.
pub fn lifespan_stats(intervals: &[AbuseInterval], horizon: SimTime) -> (Ecdf, LifespanStats) {
    let durations: Vec<f64> = intervals
        .iter()
        .map(|i| i.duration_days(horizon) as f64)
        .collect();
    let ecdf = Ecdf::new(durations);
    let stats = LifespanStats {
        count: intervals.len(),
        frac_within_15d: ecdf.fraction_le(15.0),
        frac_over_65d: 1.0 - ecdf.fraction_le(65.0),
        frac_over_1y: 1.0 - ecdf.fraction_le(365.0),
        median_days: ecdf.quantile(0.5).unwrap_or(0.0),
    };
    (ecdf, stats)
}

/// One Figure 16 bar: a hijacked domain with its abuse start and end dates.
pub type TimeframeBar = (Name, SimTime, SimTime);

/// Figure 16: per-domain (start, end) bars sorted by start date, plus the
/// monthly count of concurrently-active hijacks.
pub fn timeframes(
    intervals: &[AbuseInterval],
    horizon: SimTime,
) -> (Vec<TimeframeBar>, Vec<(i32, u32)>) {
    let mut bars: Vec<TimeframeBar> = intervals
        .iter()
        .map(|i| {
            (
                i.fqdn.clone(),
                i.first_seen,
                i.corrected_at.unwrap_or(horizon),
            )
        })
        .collect();
    bars.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    // Concurrency by month.
    let mut monthly: Vec<(i32, u32)> = Vec::new();
    if let (Some(first), Some(_)) = (bars.first(), bars.last()) {
        let mut m = first.1.month_floor();
        while m <= horizon {
            let month_idx = m.month_index();
            let next = m + 31;
            let next = next.month_floor();
            let active = bars.iter().filter(|(_, s, e)| *s < next && *e >= m).count() as u32;
            monthly.push((month_idx, active));
            m = next;
        }
    }
    (bars, monthly)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(fqdn: &str, start: i32, end: Option<i32>) -> AbuseInterval {
        AbuseInterval {
            fqdn: fqdn.parse().unwrap(),
            first_seen: SimTime(start),
            corrected_at: end.map(SimTime),
        }
    }

    #[test]
    fn durations_and_censoring() {
        let horizon = SimTime(1000);
        let a = iv("a.x.com", 100, Some(110));
        assert_eq!(a.duration_days(horizon), 10);
        assert!(!a.is_open());
        let b = iv("b.x.com", 900, None);
        assert_eq!(b.duration_days(horizon), 100);
        assert!(b.is_open());
    }

    #[test]
    fn stats_fractions() {
        let horizon = SimTime(1000);
        let intervals = vec![
            iv("a.x.com", 0, Some(5)),   // 5d
            iv("b.x.com", 0, Some(14)),  // 14d
            iv("c.x.com", 0, Some(100)), // 100d
            iv("d.x.com", 0, Some(400)), // 400d
        ];
        let (_, s) = lifespan_stats(&intervals, horizon);
        assert_eq!(s.count, 4);
        assert_eq!(s.frac_within_15d, 0.5);
        assert_eq!(s.frac_over_65d, 0.5);
        assert_eq!(s.frac_over_1y, 0.25);
    }

    #[test]
    fn timeframes_sorted_and_concurrency() {
        let horizon = SimTime(100);
        let intervals = vec![iv("b.x.com", 40, Some(80)), iv("a.x.com", 10, Some(50))];
        let (bars, monthly) = timeframes(&intervals, horizon);
        assert_eq!(bars[0].0.to_string(), "a.x.com");
        assert!(!monthly.is_empty());
        // Both active around day 45 (second month window).
        let max_active = monthly.iter().map(|(_, c)| *c).max().unwrap();
        assert_eq!(max_active, 2);
    }

    #[test]
    fn empty_inputs() {
        let (ecdf, s) = lifespan_stats(&[], SimTime(10));
        assert!(ecdf.is_empty());
        assert_eq!(s.count, 0);
        let (bars, monthly) = timeframes(&[], SimTime(10));
        assert!(bars.is_empty());
        assert!(monthly.is_empty());
    }
}
