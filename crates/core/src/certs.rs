//! Certificate analysis (§5.6, Figure 20).
//!
//! Over the full CT history of the hijacked subdomains: single-SAN vs
//! multi-SAN/wildcard monthly series, detection of mass-issuance anomaly
//! windows, the Let's Encrypt share inside them, and the §5.6.2 CAA census.

use analysis::MonthlySeries;
use certsim::{CaId, CtLog};
use dns::Name;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Figure 20's two series plus window anomalies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertTimeline {
    pub single_san_total: usize,
    pub multi_san_total: usize,
    pub single_by_month: Vec<(i32, f64)>,
    pub multi_by_month: Vec<(i32, f64)>,
    /// Months where single-SAN issuance spikes ≥ `spike_factor` × median.
    pub anomaly_months: Vec<i32>,
    /// Let's Encrypt share of single-SAN certs inside anomaly months.
    pub le_share_in_anomalies: f64,
    /// Let's Encrypt share of single-SAN certs outside them.
    pub le_share_elsewhere: f64,
}

/// Build the Figure 20 analysis for a set of hijacked FQDNs.
pub fn cert_timeline(ct: &CtLog, hijacked: &[Name], spike_factor: f64) -> CertTimeline {
    let hijacked_set: BTreeSet<&Name> = hijacked.iter().collect();
    let mut single = MonthlySeries::new();
    let mut multi = MonthlySeries::new();
    let mut single_entries: Vec<(i32, CaId)> = Vec::new();
    let mut single_total = 0;
    let mut multi_total = 0;
    for entry in ct.iter() {
        let covers_hijacked = entry.cert.sans.iter().any(|san| {
            if san.is_wildcard() {
                hijacked_set.iter().any(|h| h.matches_wildcard(san))
            } else {
                hijacked_set.contains(san)
            }
        });
        if !covers_hijacked {
            continue;
        }
        let m = entry.logged_at.month_index();
        if entry.cert.is_single_san() {
            single.increment(m);
            single_entries.push((m, entry.cert.issuer));
            single_total += 1;
        } else {
            multi.increment(m);
            multi_total += 1;
        }
    }
    // Anomaly months: single-SAN count >= spike_factor * positive-median.
    let dense = single.dense();
    let mut positives: Vec<f64> = dense.iter().map(|(_, v)| *v).filter(|v| *v > 0.0).collect();
    positives.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = positives.get(positives.len() / 2).copied().unwrap_or(0.0);
    let anomaly_months: Vec<i32> = dense
        .iter()
        .filter(|(_, v)| median > 0.0 && *v >= spike_factor * median && *v >= 3.0)
        .map(|(m, _)| *m)
        .collect();
    let in_window = |m: i32| anomaly_months.contains(&m);
    let le = |entries: &[(i32, CaId)], inside: bool| -> f64 {
        let relevant: Vec<&(i32, CaId)> = entries
            .iter()
            .filter(|(m, _)| in_window(*m) == inside)
            .collect();
        if relevant.is_empty() {
            return 0.0;
        }
        relevant
            .iter()
            .filter(|(_, ca)| *ca == CaId::LetsEncrypt)
            .count() as f64
            / relevant.len() as f64
    };
    CertTimeline {
        single_san_total: single_total,
        multi_san_total: multi_total,
        single_by_month: single.dense(),
        multi_by_month: multi.dense(),
        le_share_in_anomalies: le(&single_entries, true),
        le_share_elsewhere: le(&single_entries, false),
        anomaly_months,
    }
}

/// §5.6.2's CAA census over the parents of hijacked subdomains.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CaaCensus {
    pub parents: usize,
    /// Parents with any CAA record.
    pub with_caa: usize,
    /// Parents whose CAA authorizes only paid CAs.
    pub paid_only: usize,
    /// Of parents with CAA, how many still had a hijacked subdomain with a
    /// valid certificate (the paper: about half).
    pub caa_but_hijack_cert: usize,
}

/// Compute the census. `caa_of` reports (has_caa, paid_only) for an apex;
/// `hijack_has_cert` reports whether any hijacked subdomain of the apex got
/// a certificate.
pub fn caa_census<F, G>(parents: &[Name], caa_of: F, hijack_has_cert: G) -> CaaCensus
where
    F: Fn(&Name) -> (bool, bool),
    G: Fn(&Name) -> bool,
{
    let mut census = CaaCensus {
        parents: parents.len(),
        with_caa: 0,
        paid_only: 0,
        caa_but_hijack_cert: 0,
    };
    for p in parents {
        let (has, paid) = caa_of(p);
        if has {
            census.with_caa += 1;
            if hijack_has_cert(p) {
                census.caa_but_hijack_cert += 1;
            }
        }
        if paid {
            census.paid_only += 1;
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use certsim::{CertId, Certificate};
    use cloudsim::AccountId;
    use simcore::{Date, SimTime};

    fn cert(id: u64, sans: &[&str], ca: CaId, by: AccountId) -> Certificate {
        Certificate {
            id: CertId(id),
            subject: sans[0].parse().unwrap(),
            sans: sans.iter().map(|s| s.parse().unwrap()).collect(),
            issuer: ca,
            not_before: SimTime(0),
            not_after: SimTime(90),
            requested_by: by,
        }
    }

    #[test]
    fn timeline_splits_and_finds_anomaly() {
        let mut ct = CtLog::new();
        let hijacked: Vec<Name> = (0..10)
            .map(|i| format!("h{i}.victim{i}.com").parse().unwrap())
            .collect();
        // Background: monthly multi-SAN renewals + occasional single-SAN.
        for m in 0..24 {
            let t = Date::new(2020, 1, 15).to_sim() + m * 30;
            ct.append(
                cert(
                    m as u64,
                    &["h0.victim0.com", "victim0.com"],
                    CaId::DigiCert,
                    AccountId::Org(0),
                ),
                t,
            );
            if m % 6 == 0 {
                ct.append(
                    cert(
                        100 + m as u64,
                        &["h1.victim1.com"],
                        CaId::ZeroSsl,
                        AccountId::Org(1),
                    ),
                    t,
                );
            }
        }
        // Anomaly burst: 8 single-SAN LE certs in one month.
        let burst = Date::new(2021, 9, 10).to_sim();
        for i in 0..8 {
            ct.append(
                cert(
                    200 + i,
                    &[format!("h{}.victim{}.com", i % 10, i % 10).as_str()],
                    CaId::LetsEncrypt,
                    AccountId::Attacker(0),
                ),
                burst + (i as i32 % 20),
            );
        }
        // Unrelated noise must be ignored.
        ct.append(
            cert(
                999,
                &["x.unrelated.net"],
                CaId::LetsEncrypt,
                AccountId::Org(9),
            ),
            burst,
        );

        let tl = cert_timeline(&ct, &hijacked, 3.0);
        assert_eq!(tl.multi_san_total, 24);
        assert_eq!(tl.single_san_total, 4 + 8);
        assert_eq!(tl.anomaly_months.len(), 1);
        assert_eq!(tl.anomaly_months[0], burst.month_index());
        assert!(tl.le_share_in_anomalies > 0.9);
        assert!(tl.le_share_elsewhere < 0.5);
    }

    #[test]
    fn wildcards_count_as_multi() {
        let mut ct = CtLog::new();
        let hijacked: Vec<Name> = vec!["h.victim.com".parse().unwrap()];
        ct.append(
            cert(1, &["*.victim.com"], CaId::DigiCert, AccountId::Org(0)),
            SimTime(10),
        );
        let tl = cert_timeline(&ct, &hijacked, 3.0);
        assert_eq!(tl.multi_san_total, 1);
        assert_eq!(tl.single_san_total, 0);
    }

    #[test]
    fn census_counts() {
        let parents: Vec<Name> = (0..100)
            .map(|i| format!("p{i}.com").parse().unwrap())
            .collect();
        let census = caa_census(
            &parents,
            |p| {
                let i: usize = p.labels()[0][1..].parse().unwrap();
                (i < 4, i == 0) // 4 with CAA, 1 paid-only
            },
            |p| {
                let i: usize = p.labels()[0][1..].parse().unwrap();
                i.is_multiple_of(2) // half the CAA parents still had hijack certs
            },
        );
        assert_eq!(census.parents, 100);
        assert_eq!(census.with_caa, 4);
        assert_eq!(census.paid_only, 1);
        assert_eq!(census.caa_but_hijack_cert, 2);
    }
}
