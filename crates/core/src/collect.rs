//! Algorithm 1 — collection of cloud-pointing FQDNs (§3.1).
//!
//! Faithful to the paper's pseudocode: for every candidate FQDN issue an A
//! query; keep it if any CNAME in the chain ends with a known cloud suffix,
//! or any terminal A record falls inside a published cloud range. The
//! [`Feed`] models the growing input list (1.5M → 3.1M over three years).

use cloudsim::{IpRangeTable, ServiceId};
use dns::resolver::Transport;
use dns::{Name, Resolver};
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// The candidate-FQDN feed: initial lists (§3.1's government / Fortune /
/// Alexa / university domains expanded via passive DNS) plus the commercial
/// feed that arrives over time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Feed {
    /// `(fqdn, first time it is visible to the study)` sorted by time.
    entries: Vec<(Name, SimTime)>,
}

impl Feed {
    pub fn new(mut entries: Vec<(Name, SimTime)>) -> Self {
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        Feed { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FQDNs that became visible in `(since, until]`, as borrowed names.
    ///
    /// The entries are sorted by time at construction, so both window edges
    /// are `partition_point` binary searches rather than full scans — the
    /// feed is consulted every monitoring round and reached millions of
    /// entries in the real study.
    pub fn discovered_between(
        &self,
        since: SimTime,
        until: SimTime,
    ) -> impl Iterator<Item = &Name> + '_ {
        let lo = self.entries.partition_point(|(_, t)| *t <= since);
        let hi = self.entries.partition_point(|(_, t)| *t <= until);
        self.entries[lo..hi].iter().map(|(n, _)| n)
    }

    /// All FQDNs visible at or before `t`, as borrowed names.
    pub fn visible_at(&self, t: SimTime) -> impl Iterator<Item = &Name> + '_ {
        let hi = self.entries.partition_point(|(_, d)| *d <= t);
        self.entries[..hi].iter().map(|(n, _)| n)
    }

    pub fn iter(&self) -> impl Iterator<Item = &(Name, SimTime)> {
        self.entries.iter()
    }
}

/// The outcome of Algorithm 1 for one FQDN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CloudPointer {
    /// CNAME chain ends at a known cloud suffix.
    CnameSuffix { target: Name, service: ServiceId },
    /// Terminal A record inside a published cloud range.
    CloudIp {
        ip: std::net::Ipv4Addr,
        service: ServiceId,
    },
    /// Not cloud-hosted (or NXDOMAIN with no cloud CNAME).
    NotCloud,
}

impl CloudPointer {
    pub fn is_cloud(&self) -> bool {
        !matches!(self, CloudPointer::NotCloud)
    }

    pub fn service(&self) -> Option<ServiceId> {
        match self {
            CloudPointer::CnameSuffix { service, .. } | CloudPointer::CloudIp { service, .. } => {
                Some(*service)
            }
            CloudPointer::NotCloud => None,
        }
    }
}

/// The Algorithm-1 classifier. Owns the cloud suffix list (Appendix A.1) and
/// IP range table, both built from the provider catalog exactly as the paper
/// builds them from provider documentation.
pub struct Collector {
    suffixes: Vec<(Name, ServiceId)>,
    ranges: IpRangeTable<ServiceId>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    pub fn new() -> Self {
        let mut suffixes = Vec::new();
        for spec in cloudsim::CATALOG {
            let Some(s) = spec.suffix else { continue };
            if s.contains("REGION") {
                for r in spec.regions {
                    suffixes.push((Name::parse(&s.replace("REGION", r)).unwrap(), spec.id));
                }
            } else {
                suffixes.push((Name::parse(s).unwrap(), spec.id));
            }
        }
        Collector {
            suffixes,
            ranges: cloudsim::provider::cloud_ip_ranges(),
        }
    }

    /// Classify one FQDN per Algorithm 1 (lines 4–14).
    pub fn classify<T: Transport>(
        &self,
        fqdn: &Name,
        resolver: &Resolver<T>,
        now: SimTime,
    ) -> CloudPointer {
        let outcome = resolver.resolve_a(fqdn, now);
        // Line 5–9: any CNAME in the chain with a cloud suffix.
        for cname in &outcome.cname_chain {
            for (suffix, service) in &self.suffixes {
                if cname.is_subdomain_of(suffix) {
                    return CloudPointer::CnameSuffix {
                        target: cname.clone(),
                        service: *service,
                    };
                }
            }
        }
        // Line 10–14: any A record inside cloud ranges.
        for ip in &outcome.addresses {
            if let Some(service) = self.ranges.lookup(*ip) {
                return CloudPointer::CloudIp {
                    ip: *ip,
                    service: *service,
                };
            }
        }
        CloudPointer::NotCloud
    }

    /// Algorithm 1 in bulk: the subset of `fqdns` pointing at the cloud,
    /// with their classifications.
    pub fn collect_fqdns<T: Transport>(
        &self,
        fqdns: &[Name],
        resolver: &Resolver<T>,
        now: SimTime,
    ) -> Vec<(Name, CloudPointer)> {
        let mut out = Vec::new();
        for fqdn in fqdns {
            let c = self.classify(fqdn, resolver, now);
            if c.is_cloud() {
                out.push((fqdn.clone(), c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};

    fn setup() -> (Resolver<Authority>, Collector) {
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("victim.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.victim.com".parse().unwrap(),
            300,
            RecordData::Cname("victim-shop.azurewebsites.net".parse().unwrap()),
        ));
        z.add(ResourceRecord::new(
            "vm.victim.com".parse().unwrap(),
            300,
            RecordData::A("54.144.1.2".parse().unwrap()), // EC2 range
        ));
        z.add(ResourceRecord::new(
            "www.victim.com".parse().unwrap(),
            300,
            RecordData::A("93.184.216.34".parse().unwrap()), // not cloud
        ));
        zs.insert(z);
        let mut az = Zone::new("azurewebsites.net".parse().unwrap());
        az.add(ResourceRecord::new(
            "victim-shop.azurewebsites.net".parse().unwrap(),
            60,
            RecordData::A("20.40.0.9".parse().unwrap()),
        ));
        zs.insert(az);
        (Resolver::new(Authority::new(zs)), Collector::new())
    }

    #[test]
    fn cname_suffix_detected() {
        let (r, c) = setup();
        let out = c.classify(&"shop.victim.com".parse().unwrap(), &r, SimTime(0));
        assert_eq!(
            out,
            CloudPointer::CnameSuffix {
                target: "victim-shop.azurewebsites.net".parse().unwrap(),
                service: ServiceId::AzureWebApp
            }
        );
    }

    #[test]
    fn cloud_ip_detected() {
        let (r, c) = setup();
        let out = c.classify(&"vm.victim.com".parse().unwrap(), &r, SimTime(0));
        assert!(matches!(
            out,
            CloudPointer::CloudIp {
                service: ServiceId::AwsEc2PublicIp,
                ..
            }
        ));
    }

    #[test]
    fn non_cloud_rejected() {
        let (r, c) = setup();
        assert_eq!(
            c.classify(&"www.victim.com".parse().unwrap(), &r, SimTime(0)),
            CloudPointer::NotCloud
        );
    }

    #[test]
    fn dangling_cname_still_collected() {
        // Remove the azure record: the CNAME dangles but Algorithm 1 keeps
        // the FQDN (the chain is inspected, not the terminal answer).
        let (mut zs_resolver, c) = setup();
        let _ = &mut zs_resolver; // rebuild with the record removed:
        let mut zs = ZoneSet::new();
        let mut z = Zone::new("victim.com".parse().unwrap());
        z.add(ResourceRecord::new(
            "shop.victim.com".parse().unwrap(),
            300,
            RecordData::Cname("victim-shop.azurewebsites.net".parse().unwrap()),
        ));
        zs.insert(z);
        zs.insert(Zone::new("azurewebsites.net".parse().unwrap()));
        let r = Resolver::new(Authority::new(zs));
        let out = c.classify(&"shop.victim.com".parse().unwrap(), &r, SimTime(0));
        assert!(out.is_cloud());
    }

    #[test]
    fn bulk_collection_filters() {
        let (r, c) = setup();
        let fqdns: Vec<Name> = vec![
            "shop.victim.com".parse().unwrap(),
            "vm.victim.com".parse().unwrap(),
            "www.victim.com".parse().unwrap(),
        ];
        let collected = c.collect_fqdns(&fqdns, &r, SimTime(0));
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn feed_discovery_windows() {
        let feed = Feed::new(vec![
            ("b.x.com".parse().unwrap(), SimTime(10)),
            ("a.x.com".parse().unwrap(), SimTime(0)),
            ("c.x.com".parse().unwrap(), SimTime(20)),
        ]);
        assert_eq!(feed.len(), 3);
        assert_eq!(feed.visible_at(SimTime(10)).count(), 2);
        let new: Vec<&Name> = feed.discovered_between(SimTime(5), SimTime(20)).collect();
        assert_eq!(new.len(), 2);
        assert_eq!(feed.discovered_between(SimTime(20), SimTime(99)).count(), 0);
    }

    #[test]
    fn feed_windows_match_linear_scan() {
        // The binary-search windows must agree with the naive filter for
        // every cut point, including duplicates sharing one timestamp.
        let times = [0, 0, 3, 3, 3, 7, 9, 9, 12];
        let feed = Feed::new(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (format!("h{i}.x.com").parse().unwrap(), SimTime(t)))
                .collect(),
        );
        for since in -1..14 {
            let expect = times.iter().filter(|&&t| t <= since).count();
            assert_eq!(
                feed.visible_at(SimTime(since)).count(),
                expect,
                "visible_at({since})"
            );
            for until in since..14 {
                let expect = times.iter().filter(|&&t| t > since && t <= until).count();
                assert_eq!(
                    feed.discovered_between(SimTime(since), SimTime(until))
                        .count(),
                    expect,
                    "window ({since}, {until}]"
                );
            }
        }
    }
}
