//! Keyword extraction (§3.2 "Signatures", Tables 1 and 5).
//!
//! The pipeline extracted 56,946 keywords with an average of 2.72 per
//! signature. We tokenize visible text, drop a small English stopword list
//! (the abuse vocabulary is mostly non-English, which is itself signal),
//! and rank by frequency with deterministic tie-breaking.

use contentgen::extract;

/// Stopwords excluded from keyword ranking — high-frequency English and
/// structural tokens that carry no abuse signal.
const STOPWORDS: &[&str] = &[
    "the", "and", "for", "with", "our", "your", "from", "this", "that", "are", "was", "were",
    "have", "has", "will", "more", "about", "all", "can", "you", "not", "but", "its", "into",
    "than", "then", "they", "them", "their", "out", "who", "what", "when", "where", "how", "html",
    "http", "https", "www", "com", "net", "org", "page", "site", "website", "home", "welcome",
    "learn", "contact", "us",
];

/// Extract the top `k` content keywords from an HTML document.
pub fn extract_keywords(html: &str, k: usize) -> Vec<String> {
    let tokens = extract::tokens(html);
    rank_tokens(tokens, k)
}

/// Rank a token stream into top-k keywords.
pub fn rank_tokens(tokens: Vec<String>, k: usize) -> Vec<String> {
    let mut counts: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    for t in tokens {
        if t.len() < 3 && t.is_ascii() {
            continue; // short ASCII tokens are noise; short CJK tokens are words
        }
        if STOPWORDS.contains(&t.as_str()) {
            continue;
        }
        if t.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        *counts.entry(t).or_insert(0) += 1;
    }
    let mut v: Vec<(String, u32)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(k);
    v.into_iter().map(|(t, _)| t).collect()
}

/// Canonical cluster key for a keyword list: sorted + joined. Snapshots with
/// the same key carry "identical keyword lists [which] indicate the same
/// page content" (§3.2's clustering step).
pub fn cluster_key(keywords: &[String]) -> String {
    let mut ks: Vec<&str> = keywords.iter().map(String::as_str).collect();
    ks.sort_unstable();
    ks.dedup();
    ks.join("|")
}

/// Overlap coefficient between two keyword lists (|∩| / min(|A|,|B|)).
pub fn overlap(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|k| b.contains(k)).count();
    inter as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_abuse_vocabulary() {
        let html = "<html><body><h1>daftar situs judi slot online</h1>\
                    <p>slot gacor slot terpercaya judi bola</p></body></html>";
        let kws = extract_keywords(html, 5);
        assert_eq!(kws[0], "slot"); // highest frequency
        assert!(kws.contains(&"judi".to_string()));
        assert!(!kws.contains(&"the".to_string()));
    }

    #[test]
    fn stopwords_and_digits_dropped() {
        let html = "<html><body>the the the and and 12345 welcome</body></html>";
        assert!(extract_keywords(html, 10).is_empty());
    }

    #[test]
    fn deterministic_tiebreak() {
        let html = "<html><body>zebra apple zebra apple</body></html>";
        assert_eq!(extract_keywords(html, 2), vec!["apple", "zebra"]);
    }

    #[test]
    fn cluster_key_order_insensitive() {
        let a = vec!["slot".to_string(), "judi".to_string()];
        let b = vec!["judi".to_string(), "slot".to_string()];
        assert_eq!(cluster_key(&a), cluster_key(&b));
        assert_ne!(cluster_key(&a), cluster_key(&[]));
    }

    #[test]
    fn overlap_coefficient() {
        let a = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let b = vec![
            "b".to_string(),
            "c".to_string(),
            "d".to_string(),
            "e".to_string(),
        ];
        assert!((overlap(&a, &b) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(overlap(&a, &[]), 0.0);
    }

    #[test]
    fn cjk_tokens_survive_length_filter() {
        let html = "<html><body>脱出 攻略 脱出</body></html>";
        let kws = extract_keywords(html, 3);
        assert!(kws.contains(&"脱出".to_string()));
    }
}
