//! Snapshot diffing (§3.2).
//!
//! "By comparing these snapshots, including changes to DNS, HTTP response,
//! sitemap (e.g., size changes of 100KB), language changes, and keywords,
//! differences can be detected."

use crate::snapshot::Snapshot;
use dns::Name;
use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// The sitemap-growth threshold the paper names (100 KB).
pub const SITEMAP_JUMP_BYTES: u64 = 100_000;

/// One detected difference class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeKind {
    /// CNAME target / terminal IP / rcode changed.
    Dns,
    /// HTTP status class changed (e.g. 404 → 200: a released resource came
    /// back to life — the hijack tell).
    HttpStatus,
    /// Index content hash changed.
    Content,
    /// Detected content language changed.
    Language,
    /// A sitemap appeared where none was.
    SitemapAppeared,
    /// Sitemap grew by ≥ 100 KB.
    SitemapGrew,
    /// Was serving, now unreachable (remediation or release).
    BecameUnreachable,
    /// Was unreachable, now serving (re-registration!).
    BecameReachable,
}

/// A change event with full context for the signature pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRecord {
    pub fqdn: Name,
    pub day: SimTime,
    pub kinds: Vec<ChangeKind>,
    /// Features of the previous state (content features may be empty if the
    /// previous crawl skipped extraction).
    pub before_language: Option<String>,
    pub before_sitemap_bytes: Option<u64>,
    pub before_serving: bool,
    /// Content keywords of the previous state (routine-update suppression).
    pub before_keywords: Vec<String>,
    /// The new snapshot (carries HTML when content changed).
    pub after: Snapshot,
}

/// Compare consecutive snapshots of one FQDN.
pub fn diff(prev: &Snapshot, curr: &Snapshot) -> Vec<ChangeKind> {
    let mut kinds = Vec::new();
    if prev.cname_target != curr.cname_target || prev.rcode != curr.rcode || prev.ip != curr.ip {
        kinds.push(ChangeKind::Dns);
    }
    match (prev.is_serving(), curr.is_serving()) {
        (false, true) => kinds.push(ChangeKind::BecameReachable),
        (true, false) => kinds.push(ChangeKind::BecameUnreachable),
        _ => {
            if prev.http_status != curr.http_status {
                kinds.push(ChangeKind::HttpStatus);
            }
        }
    }
    if curr.is_serving() && prev.index_hash != curr.index_hash && prev.index_hash != 0 {
        kinds.push(ChangeKind::Content);
    }
    if let (Some(a), Some(b)) = (&prev.language, &curr.language) {
        if a != b {
            kinds.push(ChangeKind::Language);
        }
    }
    match (prev.sitemap_bytes, curr.sitemap_bytes) {
        (None, Some(b)) if prev.is_serving() && b > 0 => kinds.push(ChangeKind::SitemapAppeared),
        (Some(a), Some(b)) if b >= a + SITEMAP_JUMP_BYTES => kinds.push(ChangeKind::SitemapGrew),
        _ => {}
    }
    kinds
}

/// Build a [`ChangeRecord`] when anything changed.
pub fn record(prev: &Snapshot, curr: Snapshot) -> Option<ChangeRecord> {
    let kinds = diff(prev, &curr);
    if kinds.is_empty() {
        return None;
    }
    Some(ChangeRecord {
        fqdn: curr.fqdn.clone(),
        day: curr.day,
        kinds,
        before_language: prev.language.clone(),
        before_sitemap_bytes: prev.sitemap_bytes,
        before_serving: prev.is_serving(),
        before_keywords: prev.keywords.clone(),
        after: curr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::Rcode;

    fn base(day: i32) -> Snapshot {
        let mut s = Snapshot::unreachable(
            "x.a.com".parse().unwrap(),
            SimTime(day),
            Rcode::NoError,
            None,
        );
        s.http_status = Some(200);
        s.index_hash = 111;
        s.language = Some("en".into());
        s
    }

    #[test]
    fn no_change_no_record() {
        let a = base(0);
        let b = base(7);
        assert!(diff(&a, &b).is_empty());
        assert!(record(&a, b).is_none());
    }

    #[test]
    fn content_and_language_change() {
        let a = base(0);
        let mut b = base(7);
        b.index_hash = 222;
        b.language = Some("id".into());
        let kinds = diff(&a, &b);
        assert!(kinds.contains(&ChangeKind::Content));
        assert!(kinds.contains(&ChangeKind::Language));
    }

    #[test]
    fn reachability_transitions() {
        let mut dead = base(0);
        dead.http_status = None;
        let alive = base(7);
        assert!(diff(&dead, &alive).contains(&ChangeKind::BecameReachable));
        assert!(diff(&alive, &dead).contains(&ChangeKind::BecameUnreachable));
    }

    #[test]
    fn sitemap_thresholds() {
        let mut a = base(0);
        a.sitemap_bytes = Some(50_000);
        let mut b = base(7);
        b.sitemap_bytes = Some(149_000);
        assert!(
            diff(&a, &b).is_empty(),
            "99KB growth is under the threshold"
        );
        b.sitemap_bytes = Some(150_000);
        assert!(diff(&a, &b).contains(&ChangeKind::SitemapGrew));
        // Appearance.
        let none = base(0);
        let mut c = base(7);
        c.sitemap_bytes = Some(10_000);
        assert!(diff(&none, &c).contains(&ChangeKind::SitemapAppeared));
    }

    #[test]
    fn dns_change_detected() {
        let a = base(0);
        let mut b = base(7);
        b.cname_target = Some("new.azurewebsites.net".parse().unwrap());
        assert!(diff(&a, &b).contains(&ChangeKind::Dns));
    }

    #[test]
    fn first_content_after_unreachable_is_not_content_change() {
        // index_hash 0 on the unreachable previous snapshot must not count
        // as a content change (it is a reachability change).
        let mut dead = base(0);
        dead.http_status = None;
        dead.index_hash = 0;
        let alive = base(7);
        let kinds = diff(&dead, &alive);
        assert!(!kinds.contains(&ChangeKind::Content));
        assert!(kinds.contains(&ChangeKind::BecameReachable));
    }
}
