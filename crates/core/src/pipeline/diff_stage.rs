//! Diff/record stage: the serial merge point of the parallel crawl.
//!
//! Consumes the round's [`super::CrawlOutcome`] batch — already in canonical
//! monitored order — appends changes to the change log and commits snapshots
//! to the sharded store. Keeping this stage serial is what lets the crawl
//! stage be embarrassingly parallel: workers never write shared state.
//!
//! The change log is append-only: records are pushed with strictly
//! increasing days (one round, one day) and never mutated afterwards. The
//! streaming retro pass ([`super::IncrementalRetro`]) depends on exactly
//! that — it consumes each round's new suffix of `rs.changes` right after
//! this stage runs and indexes into the log by position forever after.

use super::{RunState, Stage};
use simcore::SimTime;

/// The diff/record stage (see module docs).
pub struct DiffStage;

impl Stage for DiffStage {
    fn name(&self) -> &'static str {
        "diff"
    }

    fn weekly(&mut self, rs: &mut RunState, _now: SimTime) {
        let mut changes: u64 = 0;
        let mut snapshots: u64 = 0;
        for out in rs.crawl_batch.drain(..) {
            if let Some(rec) = out.change {
                rs.changes.push(rec);
                changes += 1;
            }
            rs.store.insert(out.snap);
            snapshots += 1;
        }
        obs::counter("diff.changes").add(changes);
        obs::counter("diff.snapshots").add(snapshots);
    }
}
