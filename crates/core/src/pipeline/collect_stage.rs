//! Collection stage — Algorithm 1 (§3.1) applied incrementally.
//!
//! Every monitoring round the stage pulls the feed entries that became
//! visible since the last round, classifies them (cloud-pointing or not),
//! and grows the canonical monitored list. It also keeps the monthly
//! monitored-set series (Figure 4's substrate).
//!
//! Classification is the expensive per-candidate step (a full resolution
//! per FQDN), so it fans out through [`ShardedExecutor`] under the standard
//! contract: candidates bucketed by [`crate::snapshot::fqdn_shard`],
//! verdicts re-assembled in feed order, and the admission loop — the part
//! that mutates the canonical monitored list — stays serial over that
//! ordered zip, so the monitored order is identical for any thread count.

use super::{RunState, ShardedExecutor, Stage};
use crate::collect::{CloudPointer, Collector};
use crate::snapshot::fqdn_shard;
use dns::{Name, Resolver};
use simcore::SimTime;
use std::collections::HashSet;

/// The Algorithm-1 collection stage (see module docs).
pub struct CollectStage {
    collector: Collector,
    exec: ShardedExecutor,
    /// Membership-only (never iterated): hash order cannot escape.
    monitored_set: HashSet<Name>,
    pending_candidates: Vec<Name>,
    last_feed_check: SimTime,
}

impl CollectStage {
    pub fn new(rs: &RunState, threads: usize) -> Self {
        CollectStage {
            collector: Collector::new(),
            exec: ShardedExecutor::new(threads, crate::exec_metric_names!("collect")),
            monitored_set: HashSet::new(),
            pending_candidates: Vec::new(),
            last_feed_check: rs.monitor_start - 1,
        }
    }
}

impl Stage for CollectStage {
    fn name(&self) -> &'static str {
        "collect"
    }

    fn weekly(&mut self, rs: &mut RunState, now: SimTime) {
        // Grow the monitored set from the feed via Algorithm 1.
        self.pending_candidates.extend(
            rs.feed
                .discovered_between(self.last_feed_check, now)
                .cloned(),
        );
        self.last_feed_check = now;
        if !self.pending_candidates.is_empty() {
            obs::counter("collect.candidates").add(self.pending_candidates.len() as u64);
            let admitted_before = rs.monitored.len();
            let candidates = std::mem::take(&mut self.pending_candidates);
            // Classify in parallel (read-only: resolver per worker, shared
            // collector tables), verdicts back in feed order.
            let shards = rs.store.shard_count();
            let world = &rs.world;
            let collector = &self.collector;
            let verdicts: Vec<CloudPointer> = self.exec.map(
                &candidates,
                shards,
                |fqdn| fqdn_shard(fqdn, shards),
                || Resolver::new(world.dns()),
                |resolver, _i, fqdn| collector.classify(fqdn, resolver, now),
            );
            // Serial admission over the ordered zip: the canonical monitored
            // order is the feed order of first cloud-pointing classification.
            let mut still_pending = Vec::new();
            for (fqdn, verdict) in candidates.into_iter().zip(verdicts) {
                match verdict {
                    CloudPointer::NotCloud => {
                        // Non-cloud entries are retried a couple of times then
                        // dropped (cheap heuristic for the paper's periodic
                        // re-checks).
                        still_pending.push((fqdn, 1u8));
                    }
                    ptr => {
                        if self.monitored_set.insert(fqdn.clone()) {
                            rs.monitored.push(fqdn);
                            if let Some(s) = ptr.service() {
                                *rs.monitored_by_service.entry(s).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            // Single retry round for not-cloud outcomes.
            self.pending_candidates.extend(
                still_pending
                    .into_iter()
                    .filter(|(_, tries)| *tries == 0)
                    .map(|(f, _)| f),
            );
            obs::counter("collect.admitted").add((rs.monitored.len() - admitted_before) as u64);
        }
        // Monthly monitored-set bookkeeping (Figure 4).
        rs.monitored_monthly.add(
            now.month_index(),
            0.0, // touch the bucket; set below
        );
        let m = now.month_index();
        let current = rs.monitored.len() as f64;
        // Record the max within the month (overwrites upward).
        if rs.monitored_monthly.get(m) < current {
            let delta = current - rs.monitored_monthly.get(m);
            rs.monitored_monthly.add(m, delta);
        }
    }
}
