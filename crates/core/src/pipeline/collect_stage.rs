//! Collection stage — Algorithm 1 (§3.1) applied incrementally.
//!
//! Every monitoring round the stage pulls the feed entries that became
//! visible since the last round, classifies them (cloud-pointing or not),
//! and grows the canonical monitored list. It also keeps the monthly
//! monitored-set series (Figure 4's substrate).

use super::{RunState, Stage};
use crate::collect::{CloudPointer, Collector};
use dns::{Name, Resolver};
use simcore::SimTime;
use std::collections::HashSet;

/// The Algorithm-1 collection stage (see module docs).
pub struct CollectStage {
    collector: Collector,
    monitored_set: HashSet<Name>,
    pending_candidates: Vec<Name>,
    last_feed_check: SimTime,
}

impl CollectStage {
    pub fn new(rs: &RunState) -> Self {
        CollectStage {
            collector: Collector::new(),
            monitored_set: HashSet::new(),
            pending_candidates: Vec::new(),
            last_feed_check: rs.monitor_start - 1,
        }
    }
}

impl Stage for CollectStage {
    fn name(&self) -> &'static str {
        "collect"
    }

    fn weekly(&mut self, rs: &mut RunState, now: SimTime) {
        // Grow the monitored set from the feed via Algorithm 1.
        self.pending_candidates.extend(
            rs.feed
                .discovered_between(self.last_feed_check, now)
                .cloned(),
        );
        self.last_feed_check = now;
        if !self.pending_candidates.is_empty() {
            obs::counter("collect.candidates").add(self.pending_candidates.len() as u64);
            let admitted_before = rs.monitored.len();
            let resolver = Resolver::new(rs.world.dns());
            let mut still_pending = Vec::new();
            for fqdn in self.pending_candidates.drain(..) {
                match self.collector.classify(&fqdn, &resolver, now) {
                    CloudPointer::NotCloud => {
                        // Non-cloud entries are retried a couple of times then
                        // dropped (cheap heuristic for the paper's periodic
                        // re-checks).
                        still_pending.push((fqdn, 1u8));
                    }
                    ptr => {
                        if self.monitored_set.insert(fqdn.clone()) {
                            rs.monitored.push(fqdn);
                            if let Some(s) = ptr.service() {
                                *rs.monitored_by_service.entry(s).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            // Single retry round for not-cloud outcomes.
            self.pending_candidates.extend(
                still_pending
                    .into_iter()
                    .filter(|(_, tries)| *tries == 0)
                    .map(|(f, _)| f),
            );
            obs::counter("collect.admitted").add((rs.monitored.len() - admitted_before) as u64);
        }
        // Monthly monitored-set bookkeeping (Figure 4).
        rs.monitored_monthly.add(
            now.month_index(),
            0.0, // touch the bucket; set below
        );
        let m = now.month_index();
        let current = rs.monitored.len() as f64;
        // Record the max within the month (overwrites upward).
        if rs.monitored_monthly.get(m) < current {
            let delta = current - rs.monitored_monthly.get(m);
            rs.monitored_monthly.add(m, delta);
        }
    }
}
