//! Incremental retrospective pass: the §3.2 signature machinery as a
//! streaming stage.
//!
//! [`RetroStage`](super::RetroStage) runs once at the horizon as one
//! O(all-changes) batch. `IncrementalRetro` consumes the same
//! [`ChangeRecord`]s as the diff stage emits them each round, so detection
//! keeps pace with collection — the ROADMAP's prerequisite for a
//! long-running service mode. Its contract is exact: the final
//! [`StudyResults`](crate::report::StudyResults) is **byte-identical** to
//! batch mode for any thread count, fresh or resumed mid-run (the
//! `incremental_equivalence` differential suite pins all three axes).
//!
//! ## Why streaming can be exact
//!
//! Each batch computation decomposes differently:
//!
//! - **Benign clustering** is a fingerprint → member-set union — commutative
//!   and idempotent, so folding each round's suspicious records into one
//!   growing map ([`crate::benign::fold_cluster_map`]) reaches the same map
//!   contents as the one-shot pass, and the sorted-key emission on top is
//!   order-blind.
//! - **Signature derivation** is greedy and order-defined — but the batch
//!   pass canonicalizes its input to `(day, fqdn)` order, and rounds arrive
//!   in strictly increasing day order. Feeding each round's suspicious
//!   records (fqdn-sorted within the round) into a
//!   [`SignatureFold`] therefore *is* the batch sort, replayed live: the
//!   fold is prefix-consistent, and no record ever needs re-placing.
//! - **Registrar rule-out is not monotone**: a cluster that gains a second
//!   fqdn becomes rule-out-capable, and one that gains a second registrar
//!   stops being registrar-driven — membership can both grow and shrink.
//!   When the ruled-out set changes, the fold is rebuilt from the retained
//!   suspicious prefix (`retro.incr.fold_rebuilds` counts these); rebuilding
//!   from the same sequence is state-identical, so exactness survives.
//! - **Matching is pure** in (signature content, snapshot), and a recorded
//!   change's after-snapshot never mutates. Verdicts are therefore cached
//!   per signature *content key* — a derived signature that reappears next
//!   round (same keywords/features, new id) reuses its verdict column, and
//!   each round only evaluates new signatures × all records plus all
//!   signatures × new records.
//! - **Benign-corpus validation is advisory per round**: the corpus
//!   ("monitored fqdns that never produced a suspicious change") *shrinks*
//!   as fqdns turn suspicious, so a mid-run verdict can be invalidated
//!   later. Per-round validation feeds the `retro.incr.*` gauges;
//!   [`IncrementalRetro::finalize`] revalidates against the final corpus
//!   exactly as the batch pass does. This is the one stage that cannot be
//!   folded exactly, and the docs say so rather than pretend.
//!
//! Everything downstream of the matched set is shared verbatim with batch
//! mode ([`super::retro::assemble_results`]).
//!
//! ## Determinism under parallelism
//!
//! Per-round fan-out (verdict extension, new-signature matching, advisory
//! validation) goes through one [`ShardedExecutor`] under the pipeline's
//! keyed-shard contract — bucketed by [`fqdn_shard`] (or the signature's
//! derivation id), re-assembled in canonical input order — so `--threads`
//! drives the incremental pass too.

use super::retro::{assemble_results, MatchOutcome};
use super::{RunState, ShardedExecutor, Stage};
use crate::diff::ChangeRecord;
use crate::report::StudyResults;
use crate::signature::{
    is_suspicious, validate_signatures_sharded, Signature, SignatureFold, SignatureKind,
};
use crate::snapshot::fqdn_shard;
use dns::Name;
use simcore::SimTime;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A signature's *content key*: every field [`Signature::matches`] reads.
/// Two derivations that agree on the key have identical verdicts on every
/// snapshot, no matter what ids they were assigned — the cache invariant.
type SigKey = (Vec<String>, Option<u64>, Vec<String>, bool);

fn sig_key(sig: &Signature) -> SigKey {
    (
        sig.keywords.clone(),
        sig.min_sitemap_bytes,
        sig.script_markers.clone(),
        sig.requires_identifiers,
    )
}

/// One suspicious change the pass has ingested: just enough to re-find the
/// record (`change_idx` into `RunState::changes`) and keep the canonical
/// `(day, fqdn)` order without holding snapshot clones.
#[derive(Debug, Clone)]
struct SuspiciousEntry {
    change_idx: usize,
    fqdn: Name,
    day: SimTime,
}

/// The streaming pass's advisory per-round state, promoted from bare
/// `retro.incr.*` gauges into a structured value so service mode can
/// publish real payloads (verdicts, catalog, clusters) instead of two
/// numbers. Everything here is provisional *by construction*: the benign
/// validation corpus shrinks as fqdns turn suspicious, so a mid-run verdict
/// can be invalidated later and [`IncrementalRetro::finalize`] revalidates
/// from scratch (module docs). Consumers must surface that distinction —
/// the serve API stamps `provisional: true` on every field derived from
/// this.
#[derive(Debug, Clone)]
pub struct ProvisionalRound {
    /// Day of the monitoring round this state was computed after.
    pub day: SimTime,
    /// Derived signatures before validation (`retro.incr.signatures`).
    pub signatures_total: usize,
    /// Survivors of this round's advisory validation
    /// (`retro.incr.valid_signatures`).
    pub signatures_valid: usize,
    /// Distinct non-ruled-out fqdns with a provisionally-valid signature
    /// hit (`retro.incr.provisional_abuse`).
    pub provisional_abuse: usize,
    /// Live greedy derivation groups (`retro.incr.groups`).
    pub fold_groups: usize,
    /// One verdict per suspicious fqdn so far, in name order.
    pub verdicts: Vec<ProvisionalVerdict>,
    /// The current signature catalog, in derivation (id) order.
    pub signatures: Vec<ProvisionalSignature>,
    /// Identical-change clusters, in fingerprint order.
    pub clusters: Vec<ProvisionalCluster>,
}

/// Advisory per-fqdn verdict: what the streaming pass would answer *today*
/// for "is this resource abused?".
#[derive(Debug, Clone)]
pub struct ProvisionalVerdict {
    pub fqdn: Name,
    /// Some provisionally-valid signature matches one of this fqdn's
    /// suspicious changes, and the fqdn is not ruled out.
    pub abused: bool,
    /// Ruled out by the registrar-diversity check (not monotone: can flip
    /// back in a later round).
    pub ruled_out: bool,
    /// First / last day a suspicious change was observed.
    pub first_day: SimTime,
    pub last_day: SimTime,
    /// Feature classes of the provisionally-valid signatures that hit,
    /// sorted and deduplicated.
    pub kinds: Vec<SignatureKind>,
}

/// One derived signature plus its advisory validation verdict.
#[derive(Debug, Clone)]
pub struct ProvisionalSignature {
    pub id: u32,
    pub kind: SignatureKind,
    pub keywords: Vec<String>,
    pub source_members: usize,
    pub source_slds: usize,
    /// Survived this round's validation against the current benign corpus.
    pub valid: bool,
}

/// One identical-change cluster from the registrar rule-out.
#[derive(Debug, Clone)]
pub struct ProvisionalCluster {
    pub key: String,
    pub members: usize,
    pub registrar_count: usize,
    /// Multi-fqdn and confined to ≤1 registrar: members are ruled out.
    pub ruled_out: bool,
}

/// Cached matching state for one signature content key.
struct CachedSig {
    /// A representative signature carrying this key (id irrelevant).
    matcher: Signature,
    /// Verdict per suspicious entry, aligned with the entry list — extended
    /// every round, never recomputed.
    verdicts: Vec<bool>,
    /// Did the key survive the *latest* advisory per-round validation?
    /// Advisory only: finalize revalidates against the final corpus.
    provisional_valid: bool,
}

/// The streaming retro stage. Feed it every round via [`Stage::weekly`]
/// (after the diff stage), then consume it with
/// [`IncrementalRetro::finalize`] at the horizon.
pub struct IncrementalRetro {
    exec: ShardedExecutor,
    /// Cursor into `RunState::changes`: everything before it is ingested.
    processed: usize,
    /// Fingerprint → member set, grown by [`crate::benign::fold_cluster_map`].
    cluster_map: HashMap<String, BTreeSet<Name>>,
    /// Current registrar-driven rule-out set (recomputed each round; not
    /// monotone).
    ruled_out: BTreeSet<Name>,
    /// All suspicious changes so far, in `(day, fqdn)` order (append-only:
    /// days strictly increase across rounds, fqdns are sorted within one).
    suspicious: Vec<SuspiciousEntry>,
    /// Fqdns of `suspicious` — the corpus exclusion set.
    suspicious_fqdns: BTreeSet<Name>,
    /// The running greedy grouping over the non-ruled suspicious prefix.
    fold: SignatureFold,
    /// Verdict columns per signature content key.
    match_cache: BTreeMap<SigKey, CachedSig>,
    /// apex → registrar, built from the population on first ingest (same
    /// first-match semantics as the batch pass's linear scan).
    registrars: Option<HashMap<Name, u16>>,
    min_signature_slds: usize,
    /// Advisory state of the last round, rebuilt by each advisory ingest;
    /// `None` until the first round (and never refreshed by the finalize
    /// catch-up, whose validation is authoritative instead).
    provisional: Option<ProvisionalRound>,
}

impl IncrementalRetro {
    pub fn new(threads: usize) -> Self {
        IncrementalRetro {
            exec: ShardedExecutor::new(threads, crate::exec_metric_names!("retro.incr")),
            processed: 0,
            cluster_map: HashMap::new(),
            ruled_out: BTreeSet::new(),
            suspicious: Vec::new(),
            suspicious_fqdns: BTreeSet::new(),
            fold: SignatureFold::new(),
            match_cache: BTreeMap::new(),
            registrars: None,
            min_signature_slds: 2,
            provisional: None,
        }
    }

    /// The advisory state computed after the most recent round, if any —
    /// what a service-mode sink publishes. See [`ProvisionalRound`] for why
    /// every consumer must carry its provisional flag forward.
    pub fn provisional_round(&self) -> Option<&ProvisionalRound> {
        self.provisional.as_ref()
    }

    fn registrar_of(&self, sld: &Name) -> Option<u16> {
        self.registrars.as_ref().and_then(|m| m.get(sld)).copied()
    }

    /// Recompute the rule-out set from the cluster map: members of any
    /// multi-fqdn cluster confined to ≤1 registrar. Pure function of the
    /// map's contents (output is a sorted set), so the map's iteration order
    /// never escapes.
    fn compute_ruled_out(&self) -> BTreeSet<Name> {
        let mut ruled = BTreeSet::new();
        for fqdns in self.cluster_map.values() {
            if fqdns.len() < 2 {
                continue;
            }
            let registrars: BTreeSet<u16> = fqdns
                .iter()
                .filter_map(|f| f.sld())
                .filter_map(|sld| self.registrar_of(&sld))
                .collect();
            if registrars.len() <= 1 {
                ruled.extend(fqdns.iter().cloned());
            }
        }
        ruled
    }

    /// Rebuild the derivation fold over the retained suspicious prefix. The
    /// entry list is already in canonical `(day, fqdn)` order, so a rebuild
    /// reaches exactly the state an uninterrupted fold over the same ruled
    /// set would have.
    fn rebuild_fold(&mut self, changes: &[ChangeRecord]) {
        let mut fold = SignatureFold::new();
        for e in &self.suspicious {
            if !self.ruled_out.contains(&e.fqdn) {
                fold.push(&changes[e.change_idx]);
            }
        }
        self.fold = fold;
    }

    /// Ingest every not-yet-processed change record. `advisory` carries the
    /// round's day and additionally runs the per-round benign validation,
    /// refreshing the `retro.incr.*` round gauges and the structured
    /// [`ProvisionalRound`] (skipped during the finalize catch-up, where
    /// the real validation follows immediately).
    fn ingest(&mut self, rs: &RunState, advisory: Option<SimTime>) {
        let _s = obs::span("retro.incr.round", "retro").record_into("retro.incr.round_ns");
        if self.registrars.is_none() {
            let mut m: HashMap<Name, u16> = HashMap::new();
            for org in &rs.world.population.orgs {
                m.entry(org.apex.clone()).or_insert(org.registrar.0);
            }
            self.registrars = Some(m);
            self.min_signature_slds = rs.cfg.min_signature_slds;
        }
        let new = &rs.changes[self.processed..];
        let new_start = self.processed;
        self.processed = rs.changes.len();

        // New suspicious entries, sorted by (day, fqdn) within the batch.
        // Days never decrease across rounds, so appending the sorted batch
        // keeps the whole list in canonical order.
        let mut fresh: Vec<SuspiciousEntry> = new
            .iter()
            .enumerate()
            .filter(|(_, rec)| is_suspicious(rec))
            .map(|(i, rec)| SuspiciousEntry {
                change_idx: new_start + i,
                fqdn: rec.fqdn.clone(),
                day: rec.day,
            })
            .collect();
        fresh.sort_by(|a, b| a.day.cmp(&b.day).then_with(|| a.fqdn.cmp(&b.fqdn)));
        if let (Some(last), Some(first)) = (self.suspicious.last(), fresh.first()) {
            debug_assert!(
                (last.day, &last.fqdn) < (first.day, &first.fqdn),
                "rounds must arrive in increasing (day, fqdn) order"
            );
        }
        obs::counter("retro.incr.rounds").add(1);
        obs::counter("retro.incr.new_suspicious").add(fresh.len() as u64);
        let prev_len = self.suspicious.len();
        for e in &fresh {
            self.suspicious_fqdns.insert(e.fqdn.clone());
        }
        crate::benign::fold_cluster_map(
            &mut self.cluster_map,
            fresh.iter().map(|e| &rs.changes[e.change_idx]),
        );
        self.suspicious.extend(fresh);

        // Registrar rule-out is not monotone; on any membership change the
        // fold restarts from the retained prefix (state-identical to an
        // uninterrupted fold, see module docs).
        let ruled = self.compute_ruled_out();
        if ruled != self.ruled_out {
            self.ruled_out = ruled;
            obs::counter("retro.incr.fold_rebuilds").add(1);
            self.rebuild_fold(&rs.changes);
        } else {
            for i in prev_len..self.suspicious.len() {
                let idx = self.suspicious[i].change_idx;
                if !self.ruled_out.contains(&self.suspicious[i].fqdn) {
                    self.fold.push(&rs.changes[idx]);
                }
            }
        }

        let sigs_all = self.fold.signatures(self.min_signature_slds);
        let shards = rs.store.shard_count();

        // Extend every cached verdict column over the new entries: one
        // parallel map over the new records, each task evaluating all cached
        // matchers, scattered back serially in key order.
        let new_entries: Vec<&ChangeRecord> = self.suspicious[prev_len..]
            .iter()
            .map(|e| &rs.changes[e.change_idx])
            .collect();
        if !new_entries.is_empty() && !self.match_cache.is_empty() {
            let matchers: Vec<(SigKey, Signature)> = self
                .match_cache
                .iter()
                .map(|(k, c)| (k.clone(), c.matcher.clone()))
                .collect();
            let columns: Vec<Vec<bool>> = self.exec.map(
                &new_entries,
                shards,
                |rec| fqdn_shard(&rec.fqdn, shards),
                || (),
                |_, _, rec| {
                    matchers
                        .iter()
                        .map(|(_, m)| m.matches(&rec.after))
                        .collect()
                },
            );
            for (ki, (key, _)) in matchers.iter().enumerate() {
                let cached = self.match_cache.get_mut(key).expect("key just listed");
                cached.verdicts.extend(columns.iter().map(|col| col[ki]));
            }
        }
        // New signature content keys match against *all* entries so far.
        let mut new_keys: Vec<(SigKey, Signature)> = Vec::new();
        let mut seen: BTreeSet<SigKey> = BTreeSet::new();
        for sig in &sigs_all {
            let key = sig_key(sig);
            if !self.match_cache.contains_key(&key) && seen.insert(key.clone()) {
                new_keys.push((key, sig.clone()));
            }
        }
        if !new_keys.is_empty() {
            obs::counter("retro.incr.match_cache_misses").add(new_keys.len() as u64);
            let all_entries: Vec<&ChangeRecord> = self
                .suspicious
                .iter()
                .map(|e| &rs.changes[e.change_idx])
                .collect();
            let columns: Vec<Vec<bool>> = self.exec.map(
                &all_entries,
                shards,
                |rec| fqdn_shard(&rec.fqdn, shards),
                || (),
                |_, _, rec| {
                    new_keys
                        .iter()
                        .map(|(_, m)| m.matches(&rec.after))
                        .collect()
                },
            );
            for (ki, (key, matcher)) in new_keys.into_iter().enumerate() {
                self.match_cache.insert(
                    key,
                    CachedSig {
                        matcher,
                        verdicts: columns.iter().map(|col| col[ki]).collect(),
                        provisional_valid: false,
                    },
                );
            }
        }
        debug_assert!(self
            .match_cache
            .values()
            .all(|c| c.verdicts.len() == self.suspicious.len()));

        obs::gauge("retro.incr.groups").set(self.fold.group_count() as f64);
        obs::gauge("retro.incr.signatures").set(sigs_all.len() as f64);
        if let Some(day) = advisory {
            self.advisory_validation(rs, sigs_all, day);
        }
    }

    /// Per-round sharded validation against the *current* benign corpus plus
    /// the provisional-abuse gauge and the structured [`ProvisionalRound`].
    /// Advisory by design: the corpus shrinks as fqdns turn suspicious, so
    /// these verdicts steer dashboards and service-mode queries, not the
    /// final result.
    fn advisory_validation(&mut self, rs: &RunState, sigs_all: Vec<Signature>, day: SimTime) {
        let _s = obs::span("retro.incr.validate", "retro").record_into("retro.incr.validate_ns");
        let corpus: Vec<&crate::snapshot::Snapshot> = rs
            .store
            .iter()
            .filter(|s| !self.suspicious_fqdns.contains(&s.fqdn) && s.is_serving())
            .take(4000)
            .collect();
        let discarded_keys: BTreeSet<SigKey> = {
            let (kept, _) = validate_signatures_sharded(sigs_all.clone(), &corpus, &self.exec);
            let kept_keys: BTreeSet<SigKey> = kept.iter().map(sig_key).collect();
            sigs_all
                .iter()
                .map(sig_key)
                .filter(|k| !kept_keys.contains(k))
                .collect()
        };
        let mut valid = 0usize;
        for sig in &sigs_all {
            let key = sig_key(sig);
            let ok = !discarded_keys.contains(&key);
            if let Some(c) = self.match_cache.get_mut(&key) {
                c.provisional_valid = ok;
            }
            if ok {
                valid += 1;
            }
        }
        obs::gauge("retro.incr.valid_signatures").set(valid as f64);
        // Provisional abuse: non-ruled suspicious fqdns with at least one
        // provisionally-valid signature hit. Alongside the flat hit vector,
        // keep the matching feature classes per entry so the structured
        // verdicts can say *how* each fqdn was flagged.
        let mut hit = vec![false; self.suspicious.len()];
        let mut hit_kinds: Vec<Vec<SignatureKind>> = vec![Vec::new(); self.suspicious.len()];
        for c in self.match_cache.values().filter(|c| c.provisional_valid) {
            let kind = c.matcher.kind();
            for (i, v) in c.verdicts.iter().enumerate() {
                if *v {
                    hit[i] = true;
                    if !hit_kinds[i].contains(&kind) {
                        hit_kinds[i].push(kind);
                    }
                }
            }
        }

        // Aggregate per fqdn (BTreeMap: verdicts come out in name order).
        let mut per_fqdn: BTreeMap<Name, ProvisionalVerdict> = BTreeMap::new();
        for ((entry, h), kinds) in self.suspicious.iter().zip(&hit).zip(&hit_kinds) {
            let ruled = self.ruled_out.contains(&entry.fqdn);
            let v = per_fqdn
                .entry(entry.fqdn.clone())
                .or_insert_with(|| ProvisionalVerdict {
                    fqdn: entry.fqdn.clone(),
                    abused: false,
                    ruled_out: ruled,
                    first_day: entry.day,
                    last_day: entry.day,
                    kinds: Vec::new(),
                });
            v.ruled_out = ruled;
            v.first_day = v.first_day.min(entry.day);
            v.last_day = v.last_day.max(entry.day);
            if *h && !ruled {
                v.abused = true;
            }
            for k in kinds {
                if !v.kinds.contains(k) {
                    v.kinds.push(*k);
                }
            }
        }
        let abused = per_fqdn.values().filter(|v| v.abused).count();
        obs::gauge("retro.incr.provisional_abuse").set(abused as f64);

        let signatures: Vec<ProvisionalSignature> = sigs_all
            .iter()
            .map(|s| ProvisionalSignature {
                id: s.id,
                kind: s.kind(),
                keywords: s.keywords.clone(),
                source_members: s.source_members,
                source_slds: s.source_slds,
                valid: !discarded_keys.contains(&sig_key(s)),
            })
            .collect();
        let clusters: Vec<ProvisionalCluster> =
            crate::benign::clusters_from_map(&self.cluster_map, |sld| self.registrar_of(sld))
                .into_iter()
                .map(|c| ProvisionalCluster {
                    ruled_out: c.fqdns.len() >= 2 && c.registrar_driven(),
                    key: c.key,
                    members: c.fqdns.len(),
                    registrar_count: c.registrar_count,
                })
                .collect();
        let mut verdicts: Vec<ProvisionalVerdict> = per_fqdn.into_values().collect();
        for v in &mut verdicts {
            v.kinds.sort_unstable();
        }
        self.provisional = Some(ProvisionalRound {
            day,
            signatures_total: sigs_all.len(),
            signatures_valid: valid,
            provisional_abuse: abused,
            fold_groups: self.fold.group_count(),
            verdicts,
            signatures,
            clusters,
        });
    }

    /// Consume the run state: catch up on any tail, run the *final*
    /// validation against the final benign corpus (exactly as batch mode
    /// does — per-round advisory verdicts are deliberately not reused), read
    /// the matched set out of the verdict cache, and assemble
    /// [`StudyResults`] through the tail shared with
    /// [`RetroStage`](super::RetroStage).
    pub fn finalize(mut self, rs: RunState) -> StudyResults {
        let _s = obs::span("retro.incr.finalize", "retro").record_into("retro.incr.finalize_ns");
        self.ingest(&rs, None);

        let change_clusters =
            crate::benign::clusters_from_map(&self.cluster_map, |sld| self.registrar_of(sld));
        let sigs_all = self.fold.signatures(self.min_signature_slds);
        let corpus: Vec<&crate::snapshot::Snapshot> = rs
            .store
            .iter()
            .filter(|s| !self.suspicious_fqdns.contains(&s.fqdn) && s.is_serving())
            .take(4000)
            .collect();
        let (signatures, signatures_discarded) =
            validate_signatures_sharded(sigs_all, &corpus, &self.exec);
        obs::gauge("retro.incr.signatures").set(signatures.len() as f64);
        obs::gauge("retro.incr.signatures_discarded").set(signatures_discarded as f64);
        obs::gauge("retro.incr.clusters").set(change_clusters.len() as f64);

        // Matched kinds per retained entry, read from the verdict columns in
        // kept-signature order — the order `match_all` would return.
        let kept_columns: Vec<Option<&CachedSig>> = signatures
            .iter()
            .map(|sig| self.match_cache.get(&sig_key(sig)))
            .collect();
        let mut matched_idx: Vec<(usize, Vec<SignatureKind>)> = Vec::new();
        for (pos, entry) in self.suspicious.iter().enumerate() {
            if self.ruled_out.contains(&entry.fqdn) {
                continue;
            }
            let kinds: Vec<SignatureKind> = signatures
                .iter()
                .zip(&kept_columns)
                .filter(|(sig, col)| match col {
                    Some(c) => c.verdicts[pos],
                    // Cache miss (invariant breach): fall back to a direct
                    // match so correctness never depends on the cache.
                    None => {
                        obs::counter("retro.incr.match_cache_misses").add(1);
                        sig.matches(&rs.changes[entry.change_idx].after)
                    }
                })
                .map(|(sig, _)| sig.kind())
                .collect();
            if !kinds.is_empty() {
                matched_idx.push((entry.change_idx, kinds));
            }
        }
        // The entry list is (day, fqdn)-ordered; the assembly tail wants
        // rs.changes position order. Within one round the two differ (the
        // diff stage emits in monitored order), so re-sort by index.
        matched_idx.sort_unstable_by_key(|(idx, _)| *idx);

        // Content classification of the matched records, shard-parallel as
        // in batch mode (pure per-record reads).
        let matched_recs: Vec<&ChangeRecord> = matched_idx
            .iter()
            .map(|(idx, _)| &rs.changes[*idx])
            .collect();
        let shards = rs.store.shard_count();
        let classified: Vec<(crate::classify::Topic, Vec<contentgen::abuse::SeoTechnique>)> =
            self.exec.map(
                &matched_recs,
                shards,
                |rec| fqdn_shard(&rec.fqdn, shards),
                || (),
                |_, _, rec| {
                    (
                        crate::classify::classify_topic(&rec.after),
                        crate::classify::detect_techniques(&rec.after),
                    )
                },
            );
        let matched: Vec<(ChangeRecord, MatchOutcome)> = matched_idx
            .into_iter()
            .zip(classified)
            .map(|((idx, kinds), (topic, techniques))| {
                (
                    rs.changes[idx].clone(),
                    MatchOutcome {
                        kinds,
                        topic,
                        techniques,
                    },
                )
            })
            .collect();

        assemble_results(
            rs,
            change_clusters,
            signatures,
            signatures_discarded,
            matched,
        )
    }
}

impl Stage for IncrementalRetro {
    fn name(&self) -> &'static str {
        "incr_retro"
    }

    fn weekly(&mut self, rs: &mut RunState, now: SimTime) {
        self.ingest(rs, Some(now));
    }
}
