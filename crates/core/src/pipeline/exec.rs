//! Generic shard-parallel execution under the pipeline's determinism
//! contract.
//!
//! [`ShardedExecutor`] generalizes the work-partitioning machinery the weekly
//! crawl introduced so every shard-friendly pass — crawling, Algorithm-1
//! classification, signature matching, benign clustering — runs under one
//! discipline:
//!
//! 1. work is partitioned into buckets by a **fixed, content-keyed hash**
//!    (never by arrival or iteration order),
//! 2. each bucket is split into bounded **task batches** enqueued onto
//!    per-worker queues at admission; a worker drains its own queue and only
//!    then steals batches from other workers' queues — so at 1M+ tasks
//!    admission costs one enqueue per batch instead of every worker
//!    hammering one shared cursor lock, and
//! 3. outputs are re-assembled in the **canonical input order** (or, for
//!    bucket folds, in bucket-id order) before anything downstream sees them,
//!
//! so the result is byte-identical for any thread count. Worker closures must
//! be pure with respect to shared state: they may read the pre-pass world but
//! never write anything another task could observe. Any randomness must come
//! from an [`simcore::RngTree`] stream keyed by item content, not a shared
//! sequential RNG.
//!
//! Telemetry is out-of-band and prefix-named per executor (e.g. `crawl.*`,
//! `retro.match.*`) so per-phase shard/worker imbalance is observable without
//! perturbing results. A panicking worker propagates its panic out of
//! [`ShardedExecutor::map`] after the scope joins — it never deadlocks the
//! remaining workers.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;

/// A contiguous run of one bucket's task indices: the unit of queueing and
/// stealing. Bounded so one giant bucket still spreads across workers.
#[derive(Debug, Clone)]
struct Batch {
    bucket: usize,
    range: Range<usize>,
}

/// Telemetry names for one executor, fixed at compile time. Build with
/// [`crate::exec_metric_names!`].
#[derive(Debug, Clone, Copy)]
pub struct ExecMetricNames {
    pub tasks: &'static str,
    pub steals: &'static str,
    pub shard_tasks: &'static str,
    pub worker_tasks: &'static str,
    pub shard_imbalance: &'static str,
    pub worker_imbalance: &'static str,
}

/// Expand a literal prefix into the six per-executor telemetry names
/// (`<prefix>.tasks`, `<prefix>.steals`, `<prefix>.shard_tasks`,
/// `<prefix>.worker_tasks`, `<prefix>.shard_imbalance`,
/// `<prefix>.worker_imbalance`).
#[macro_export]
macro_rules! exec_metric_names {
    ($prefix:literal) => {
        $crate::pipeline::ExecMetricNames {
            tasks: concat!($prefix, ".tasks"),
            steals: concat!($prefix, ".steals"),
            shard_tasks: concat!($prefix, ".shard_tasks"),
            worker_tasks: concat!($prefix, ".worker_tasks"),
            shard_imbalance: concat!($prefix, ".shard_imbalance"),
            worker_imbalance: concat!($prefix, ".worker_imbalance"),
        }
    };
}

/// Shard-parallel executor (see module docs for the determinism contract).
pub struct ShardedExecutor {
    threads: usize,
    /// Max tasks per queued batch; `None` picks a size from the workload
    /// (see [`ShardedExecutor::batch_size_for`]).
    batch_size: Option<usize>,
    // Telemetry handles, resolved once at construction so the hot path never
    // touches the registry lock. All out-of-band: nothing here feeds back
    // into results.
    m_tasks: &'static obs::Counter,
    m_steals: &'static obs::Counter,
    m_shard_tasks: &'static obs::Histogram,
    m_worker_tasks: &'static obs::Histogram,
    m_shard_imbalance: &'static obs::Gauge,
    m_worker_imbalance: &'static obs::Gauge,
}

impl ShardedExecutor {
    pub fn new(threads: usize, names: ExecMetricNames) -> Self {
        ShardedExecutor {
            threads: threads.max(1),
            batch_size: None,
            m_tasks: obs::counter(names.tasks),
            m_steals: obs::counter(names.steals),
            m_shard_tasks: obs::histogram(names.shard_tasks),
            m_worker_tasks: obs::histogram(names.worker_tasks),
            m_shard_imbalance: obs::gauge(names.shard_imbalance),
            m_worker_imbalance: obs::gauge(names.worker_imbalance),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override the task-batch size (mainly for tests pinning batch-boundary
    /// behavior and for bench tuning). Values are clamped to ≥ 1.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size.max(1));
        self
    }

    /// Batch size for a workload: aim for several batches per worker so
    /// stealing can level imbalance, but cap admission overhead at large
    /// scale (1M tasks on 8 threads → 4096-task batches, ~256 enqueues,
    /// not 1M cursor bumps).
    fn batch_size_for(&self, n_items: usize) -> usize {
        match self.batch_size {
            Some(b) => b,
            None => (n_items / (self.threads * 8)).clamp(64, 4096),
        }
    }

    /// Partition `items` into `buckets` index buckets by `shard_of`. The
    /// same item always lands in the same bucket no matter how many workers
    /// run — `shard_of` must be a pure function of item content.
    fn partition<T, FS>(items: &[T], buckets: usize, shard_of: &FS) -> Vec<Vec<usize>>
    where
        FS: Fn(&T) -> usize,
    {
        let buckets = buckets.max(1);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); buckets];
        for (i, item) in items.iter().enumerate() {
            let b = shard_of(item);
            debug_assert!(b < buckets, "shard_of returned {b} for {buckets} buckets");
            out[b.min(buckets - 1)].push(i);
        }
        out
    }

    /// Map every item to an output, returning outputs in **input order**.
    ///
    /// `make_ctx` is a per-worker factory (e.g. a resolver with its own TTL
    /// cache) so no lock is shared on the hot path; `work` receives the
    /// worker context, the item's input index, and the item. Output is
    /// byte-identical for any thread count as long as `work` is deterministic
    /// per item.
    pub fn map<T, R, C, FS, FC, FW>(
        &self,
        items: &[T],
        buckets: usize,
        shard_of: FS,
        make_ctx: FC,
        work: FW,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        FS: Fn(&T) -> usize + Sync,
        FC: Fn() -> C + Sync,
        FW: Fn(&mut C, usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() < 2 {
            let mut ctx = make_ctx();
            self.m_tasks.add(items.len() as u64);
            self.m_worker_tasks.record(items.len() as u64);
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| work(&mut ctx, i, item))
                .collect();
        }

        let buckets = Self::partition(items, buckets, &shard_of);
        // Per-shard load picture for this pass: task count per shard and the
        // max/mean imbalance ratio (1.0 = perfectly even hash split).
        let shard_max = buckets.iter().map(Vec::len).max().unwrap_or(0);
        for bucket in &buckets {
            self.m_shard_tasks.record(bucket.len() as u64);
        }
        self.m_shard_imbalance
            .set(shard_max as f64 * buckets.len() as f64 / items.len() as f64);

        // Admission: split each bucket into bounded batches and deal them
        // onto per-worker queues (bucket-major, round-robin across workers).
        // Each enqueue covers up to `batch` tasks, so admission cost is
        // O(items / batch) — not one shared-cursor bump per bucket per
        // worker — and a single oversized bucket still spreads out.
        let batch = self.batch_size_for(items.len());
        let n_workers = self.threads.min(items.len()).max(1);
        let queues: Vec<Mutex<VecDeque<Batch>>> = (0..n_workers)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        {
            let mut next_worker = 0usize;
            for (b, bucket) in buckets.iter().enumerate() {
                let mut start = 0;
                while start < bucket.len() {
                    let end = (start + batch).min(bucket.len());
                    queues[next_worker].lock().push_back(Batch {
                        bucket: b,
                        range: start..end,
                    });
                    next_worker = (next_worker + 1) % n_workers;
                    start = end;
                }
            }
        }

        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
        // (tasks done, batches stolen) per worker, pushed as each worker
        // exits; merged into the registry after the scope joins.
        let worker_stats: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());

        crossbeam::scope(|s| {
            for w in 0..n_workers {
                let queues = &queues;
                let buckets = &buckets;
                let collected = &collected;
                let worker_stats = &worker_stats;
                let make_ctx = &make_ctx;
                let work = &work;
                s.spawn(move |_| {
                    let mut ctx = make_ctx();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut stolen: u64 = 0;
                    loop {
                        // Own queue first (front: admission order), then
                        // steal from victims' backs — opposite ends keep the
                        // owner and thieves off the same cache lines of work.
                        let mut next = queues[w].lock().pop_front();
                        if next.is_none() {
                            for v in 1..n_workers {
                                let victim = (w + v) % n_workers;
                                if let Some(b) = queues[victim].lock().pop_back() {
                                    stolen += 1;
                                    next = Some(b);
                                    break;
                                }
                            }
                        }
                        // Every queue drained: no new batches are ever
                        // admitted after spawn, so empty means done.
                        let Some(Batch { bucket, range }) = next else {
                            break;
                        };
                        for &i in &buckets[bucket][range] {
                            local.push((i, work(&mut ctx, i, &items[i])));
                        }
                    }
                    worker_stats.lock().push((local.len() as u64, stolen));
                    collected.lock().extend(local);
                });
            }
        })
        .expect("sharded worker panicked");

        let worker_stats = worker_stats.into_inner();
        let mut worker_max: u64 = 0;
        for &(tasks, steals) in &worker_stats {
            self.m_tasks.add(tasks);
            self.m_steals.add(steals);
            self.m_worker_tasks.record(tasks);
            worker_max = worker_max.max(tasks);
        }
        if !worker_stats.is_empty() {
            self.m_worker_imbalance
                .set(worker_max as f64 * worker_stats.len() as f64 / items.len().max(1) as f64);
        }

        // Canonical re-assembly: downstream always sees input order,
        // independent of the thread schedule.
        let mut indexed = collected.into_inner();
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(indexed.len(), items.len());
        indexed.into_iter().map(|(_, out)| out).collect()
    }

    /// Fold whole buckets: `work` receives a bucket id and that bucket's
    /// `(input_index, item)` slice (indices ascending), and the per-bucket
    /// results come back **in bucket-id order** — the canonical merge order.
    ///
    /// Use this when a pass aggregates per group (e.g. fingerprint
    /// clustering): each bucket's partial aggregate is computed in parallel
    /// and the caller merges partials in a fixed order (or with a
    /// commutative merge), keeping the result thread-count-invariant.
    pub fn fold_buckets<T, B, FS, FW>(
        &self,
        items: &[T],
        buckets: usize,
        shard_of: FS,
        work: FW,
    ) -> Vec<B>
    where
        T: Sync,
        B: Send,
        FS: Fn(&T) -> usize + Sync,
        FW: Fn(usize, &[(usize, &T)]) -> B + Sync,
    {
        let parts = Self::partition(items, buckets, &shard_of);
        let with_items: Vec<(usize, Vec<(usize, &T)>)> = parts
            .into_iter()
            .enumerate()
            .map(|(b, idx)| (b, idx.into_iter().map(|i| (i, &items[i])).collect()))
            .collect();
        // Reuse `map` over the buckets themselves: one work unit per bucket
        // (sharded by its own id), merged back in bucket-id order.
        let n = with_items.len().max(1);
        self.map(
            &with_items,
            n,
            |(b, _)| *b,
            || (),
            |_, _, (b, bucket)| work(*b, bucket),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(threads: usize) -> ShardedExecutor {
        ShardedExecutor::new(threads, crate::exec_metric_names!("test.exec"))
    }

    fn square_all(threads: usize, items: &[u64], buckets: usize) -> Vec<u64> {
        exec(threads).map(
            items,
            buckets,
            |x| (*x % buckets.max(1) as u64) as usize,
            || 0u64, // per-worker context: a counter nobody reads
            |ctx, _i, x| {
                *ctx += 1;
                x * x
            },
        )
    }

    #[test]
    fn empty_input() {
        for threads in [1, 4] {
            assert!(square_all(threads, &[], 8).is_empty());
        }
    }

    #[test]
    fn one_item() {
        for threads in [1, 4] {
            assert_eq!(square_all(threads, &[7], 8), vec![49]);
        }
    }

    #[test]
    fn items_much_fewer_than_shards() {
        let items = [3u64, 1, 2];
        let want = vec![9, 1, 4];
        for threads in [1, 2, 8] {
            assert_eq!(square_all(threads, &items, 64), want, "threads={threads}");
        }
    }

    #[test]
    fn shards_much_fewer_than_items() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(square_all(threads, &items, 2), want, "threads={threads}");
        }
    }

    #[test]
    fn order_is_canonical_for_any_thread_count() {
        let items: Vec<u64> = (0..500).rev().collect();
        let serial = square_all(1, &items, 16);
        for threads in [2, 3, 4, 8] {
            assert_eq!(square_all(threads, &items, 16), serial);
        }
    }

    #[test]
    fn fold_buckets_groups_by_shard_in_bucket_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let sums: Vec<u64> = exec(threads).fold_buckets(
                &items,
                4,
                |x| (*x % 4) as usize,
                |_b, bucket| bucket.iter().map(|(_, x)| **x).sum(),
            );
            // Bucket b holds 0..100 congruent to b mod 4; sums are fixed and
            // come back in bucket order.
            assert_eq!(sums, vec![1200, 1225, 1250, 1275], "threads={threads}");
        }
    }

    /// The PR-4 executor (whole-bucket shared cursor) merged outputs in
    /// input order after canonical reassembly. Emulate it exactly: process
    /// buckets in bucket-id order, then sort by input index — the reference
    /// the batched per-worker queues must keep matching.
    fn pr4_cursor_reference<FS: Fn(&u64) -> usize>(
        items: &[u64],
        buckets: usize,
        shard_of: FS,
    ) -> Vec<u64> {
        let buckets = buckets.max(1);
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); buckets];
        for (i, x) in items.iter().enumerate() {
            parts[shard_of(x).min(buckets - 1)].push(i);
        }
        let mut indexed: Vec<(usize, u64)> = Vec::new();
        for bucket in &parts {
            for &i in bucket {
                indexed.push((i, items[i] * items[i]));
            }
        }
        indexed.sort_unstable_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, x)| x).collect()
    }

    #[test]
    fn batched_admission_never_reorders_vs_pr4_cursor() {
        // Batch boundaries are the dangerous part: exercise bucket sizes
        // that are below, at, exactly at, one over, and far over the batch
        // size, at every thread count the equivalence suites pin.
        let shard = |x: &u64| (*x % 7) as usize;
        for n_items in [1usize, 7, 63, 64, 65, 128, 129, 1000] {
            let items: Vec<u64> = (0..n_items as u64).rev().collect();
            let want = pr4_cursor_reference(&items, 7, shard);
            for threads in [1, 2, 4, 8] {
                for batch_size in [1, 2, 64, 4096] {
                    let got = exec(threads).with_batch_size(batch_size).map(
                        &items,
                        7,
                        shard,
                        || (),
                        |_, _, x| x * x,
                    );
                    assert_eq!(
                        got, want,
                        "n={n_items} threads={threads} batch={batch_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn stealing_drains_imbalanced_queues() {
        // Everything hashes to one bucket: admission splits it into many
        // batches dealt round-robin, and stealing must still complete the
        // whole workload in canonical order.
        let items: Vec<u64> = (0..3000).collect();
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [2, 8] {
            let got = exec(threads).with_batch_size(16).map(
                &items,
                64,
                |_| 0usize,
                || (),
                |_, _, x| x * x,
            );
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn panicking_worker_surfaces_panic() {
        // A worker panic must propagate out of `map` (after the scope joins
        // every thread) rather than deadlock or vanish.
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                exec(threads).map(
                    &items,
                    8,
                    |x| (*x % 8) as usize,
                    || (),
                    |_, _, x| {
                        if *x == 13 {
                            panic!("worker died on purpose");
                        }
                        *x
                    },
                )
            });
            assert!(result.is_err(), "threads={threads}: panic must surface");
        }
    }
}
