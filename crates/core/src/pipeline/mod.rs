//! The staged monitoring pipeline.
//!
//! [`crate::scenario::Scenario::run`] used to be a single ~1,000-line event
//! loop; it is now an orchestrator over five stages, each behind the small
//! [`Stage`] trait so ablations and benches can swap or instrument them:
//!
//! - [`WorldStage`] — world advancement: organizations provisioning,
//!   releasing and remediating resources, attacker campaigns, certificate
//!   history, liveness probes,
//! - [`CollectStage`] — Algorithm-1 collection: grows the monitored set
//!   from the feed every monitoring round,
//! - [`CrawlStage`] — the weekly crawl, shard-parallel via
//!   [`CrawlExecutor`],
//! - [`DiffStage`] — merges crawl outcomes in canonical FQDN order into the
//!   change log and the sharded snapshot store,
//! - [`RetroStage`] — the retrospective §3.2 signature pass that consumes
//!   the final [`RunState`] and assembles a
//!   [`crate::report::StudyResults`].
//!
//! Opt-in, [`IncrementalRetro`] replaces the one-shot retro pass with a
//! streaming stage that runs after the diff stage every round and is
//! finalized at the horizon — same `StudyResults`, byte for byte (see its
//! module docs for why that equivalence holds).
//!
//! ## Determinism under parallelism
//!
//! The crawl, Algorithm-1 classification, and the retrospective pass
//! (clustering, signature validation, signature matching) all fan out
//! through the shared [`ShardedExecutor`]. Three invariants make every
//! parallel stage's output independent of the thread count: work is
//! partitioned by the stable [`crate::snapshot::fqdn_shard`] hash (never by
//! iteration order), results are re-assembled in the input's canonical order
//! before any downstream stage sees them, and any randomness a task consumes
//! comes from a [`simcore::RngTree`] stream keyed by the FQDN and day — not
//! from a shared sequential RNG that thread scheduling could reorder.
//! `StudyResults` is therefore byte-identical for any `K`, which the
//! `retro_parallel_equivalence` suite verifies end to end.

mod collect_stage;
mod crawl;
mod diff_stage;
pub mod exec;
mod incr;
pub mod obs_codec;
pub mod persist;
mod retro;
mod world_stage;

pub use collect_stage::CollectStage;
pub use crawl::{CrawlExecutor, CrawlOutcome, CrawlStage};
pub use diff_stage::DiffStage;
pub use exec::{ExecMetricNames, ShardedExecutor};
pub use incr::{
    IncrementalRetro, ProvisionalCluster, ProvisionalRound, ProvisionalSignature,
    ProvisionalVerdict,
};
pub use persist::{PersistError, PersistOptions, PersistStage};
pub use retro::RetroStage;
pub use world_stage::WorldStage;

use crate::collect::Feed;
use crate::diff::ChangeRecord;
use crate::report::{LivenessSample, RoundLatency};
use crate::scenario::ScenarioConfig;
use crate::snapshot::SnapshotStore;
use crate::world::World;
use cloudsim::ServiceId;
use dns::Name;
use simcore::{Date, EventQueue, RngTree, SimTime};
use std::collections::BTreeMap;
use worldgen::Population;

/// Scheduled simulation events. Everything except `MonitorWeek` is world
/// advancement; `MonitorWeek` drives the collect → crawl → diff stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    Provision(usize),
    Release(usize),
    Remediate(usize),
    OrgCertRenewal(usize),
    AttackerWeek,
    MonitorWeek,
    BenignRefresh,
    HistoricCertWave,
    /// §2 probe comparison against one live hijack.
    LivenessProbe(usize),
}

/// One stage of the monitoring pipeline.
///
/// Stages keep their private bookkeeping in `self` and communicate through
/// [`RunState`]; the orchestrator invokes them in a fixed order so the data
/// flow (feed → monitored set → crawl batch → change log) is explicit.
pub trait Stage {
    fn name(&self) -> &'static str;

    /// React to a scheduled world event (everything but `MonitorWeek`).
    fn on_event(&mut self, _rs: &mut RunState, _now: SimTime, _ev: Ev) {}

    /// Run one monitoring round (`MonitorWeek`), in pipeline order.
    fn weekly(&mut self, _rs: &mut RunState, _now: SimTime) {}
}

/// A read-only snapshot of one committed round, handed to a [`RoundSink`]
/// right after the round is sealed (after the persist stage's
/// `finish_round`, before the next round starts).
///
/// The sink sees shared references only: it can build whatever external
/// surface it wants from the round (service mode builds a published query
/// view) but cannot perturb the run — the determinism contracts of the
/// equivalence suites hold with any sink attached, by construction.
pub struct RoundView<'a> {
    /// The full run state as of this round's commit.
    pub rs: &'a RunState,
    /// Simulated day of the round.
    pub now: SimTime,
    /// Monitoring rounds completed so far (1-based: 1 after the first).
    pub rounds_done: u64,
    /// The incremental retro pass's advisory per-round state, when the run
    /// is streaming (`None` in batch mode, where no mid-run verdicts
    /// exist).
    pub provisional: Option<&'a ProvisionalRound>,
}

/// An observer of committed rounds — the hook service mode builds on.
///
/// [`crate::scenario::Scenario::round_sink`] attaches one to a run; the
/// orchestrator calls [`RoundSink::round_committed`] once per monitoring
/// round and polls [`RoundSink::stop_requested`] right after, breaking out
/// of the event loop at the round boundary when it returns true. A
/// persisted run has already sealed the round at that point, so a stop
/// request is a clean shutdown: a later `--resume` picks up at the next
/// round exactly as after `PersistOptions::max_rounds`.
pub trait RoundSink: Send {
    fn round_committed(&mut self, view: RoundView<'_>);

    /// Ask the run to stop at this round boundary (SIGTERM-style graceful
    /// shutdown). Polled after every `round_committed`.
    fn stop_requested(&self) -> bool {
        false
    }
}

/// The paper-scale memory budget: approximate resident bytes per monitored
/// FQDN ([`RunState::bytes_per_fqdn`]) that a run must stay under. At 3.1M
/// FQDNs (the study's final population) this bounds pipeline state at
/// ≈ 4.6 GiB — a single commodity machine, which is the point: the paper ran
/// its measurement from one vantage. Enforced by `repro --profile
/// paper-scale`, the `memory_budget` regression test and the
/// `pipeline_parallel` bench contract row.
pub const BYTES_PER_FQDN_BUDGET: f64 = 1600.0;

/// Shared state the stages read and write; everything the retrospective
/// pass needs to assemble [`crate::report::StudyResults`].
pub struct RunState {
    pub cfg: ScenarioConfig,
    pub tree: RngTree,
    pub horizon: SimTime,
    pub monitor_start: SimTime,
    pub world: World,
    pub q: EventQueue<Ev>,
    pub feed: Feed,
    /// Monitored FQDNs in discovery order — the canonical crawl order every
    /// parallel schedule must reproduce.
    pub monitored: Vec<Name>,
    pub monitored_by_service: BTreeMap<ServiceId, u64>,
    pub monitored_monthly: analysis::MonthlySeries,
    pub store: SnapshotStore,
    /// Output of the crawl stage for the current round, in `monitored`
    /// order; consumed by the diff stage.
    pub crawl_batch: Vec<CrawlOutcome>,
    pub changes: Vec<ChangeRecord>,
    pub ip_lottery_declines: u64,
    pub caa_blocked_certs: u64,
    pub liveness: Vec<LivenessSample>,
    /// Per-round DNS resolution-latency percentiles, appended by the crawl
    /// stage (skipped on replayed rounds — persisted logs carry no timing).
    pub round_latency: Vec<RoundLatency>,
    /// Digest of the world stage's RNG stream positions, refreshed at every
    /// round boundary; recorded in persistence checkpoints so a resumed run
    /// can prove its replayed world marched in lockstep with the original.
    pub rng_witness: u64,
}

impl RunState {
    /// Generate the world, build the feed, and schedule every event of the
    /// 2015–2023 study window.
    pub fn new(cfg: ScenarioConfig) -> Self {
        let tree = RngTree::new(cfg.seed);
        let population = Population::generate(cfg.world.clone(), &tree);
        let campaigns = attacker::generate_campaigns(&cfg.campaigns, &tree);
        let world = World::new(population, campaigns, cfg.platform.clone(), tree.clone());

        let horizon = SimTime::monitor_end();
        let monitor_start = SimTime::monitor_start();

        // ----- feed -----
        let mut feed_entries: Vec<(Name, SimTime)> = Vec::new();
        for plan in &world.population.plans {
            feed_entries.push((
                plan.subdomain.clone(),
                plan.discovered_at.max(monitor_start),
            ));
        }
        // Non-cloud names (apexes) also flow through Algorithm 1 and must be
        // filtered out — the methodology's own selectivity.
        for org in &world.population.orgs {
            feed_entries.push((org.apex.clone(), monitor_start));
        }
        let feed = Feed::new(feed_entries);

        // ----- event queue -----
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (i, plan) in world.population.plans.iter().enumerate() {
            q.schedule(plan.create_at.max(SimTime::EPOCH), Ev::Provision(i));
            if let Some(r) = plan.release_at {
                q.schedule(r, Ev::Release(i));
            }
        }
        let mut t = monitor_start;
        while t <= horizon {
            q.schedule(t, Ev::MonitorWeek);
            q.schedule(t, Ev::AttackerWeek);
            t += cfg.monitor_interval_days;
        }
        let mut m = Date::new(2016, 1, 1).to_sim();
        while m <= horizon {
            q.schedule(m, Ev::BenignRefresh);
            m = (m + 31).month_floor();
        }
        if cfg.historic_cert_wave {
            q.schedule(Date::new(2017, 8, 1).to_sim(), Ev::HistoricCertWave);
        }

        RunState {
            cfg,
            tree,
            horizon,
            monitor_start,
            world,
            q,
            feed,
            monitored: Vec::new(),
            monitored_by_service: BTreeMap::new(),
            monitored_monthly: analysis::MonthlySeries::new(),
            store: SnapshotStore::new(),
            crawl_batch: Vec::new(),
            changes: Vec::new(),
            ip_lottery_declines: 0,
            caa_blocked_certs: 0,
            liveness: Vec::new(),
            round_latency: Vec::new(),
            rng_witness: 0,
        }
    }

    /// Approximate resident bytes per monitored FQDN — see
    /// [`bytes_per_fqdn_of`]. Published as the `pipeline.bytes_per_fqdn`
    /// gauge at every round boundary.
    pub fn bytes_per_fqdn(&self) -> f64 {
        bytes_per_fqdn_of(&self.store, &self.monitored)
    }
}

/// Approximate resident bytes per monitored FQDN: the snapshot store, the
/// monitored list, and the process-global label-intern table's text, divided
/// by the monitored count. This is the quantity the paper-scale profile
/// budgets ([`BYTES_PER_FQDN_BUDGET`]): everything that grows with the
/// monitored *population*. The append-only change history is excluded — it
/// grows with events, is streamed to disk by persisted runs, and is reported
/// separately. The monitored list is counted at `len` (not `capacity`);
/// amortized growth headroom is part of the budget's slack.
pub fn bytes_per_fqdn_of(store: &SnapshotStore, monitored: &[Name]) -> f64 {
    if monitored.is_empty() {
        return 0.0;
    }
    let monitored_vec = std::mem::size_of_val(monitored)
        + monitored.iter().map(Name::heap_bytes).sum::<usize>();
    let total = store.approx_bytes() + monitored_vec + dns::intern::global().label_bytes();
    total as f64 / monitored.len() as f64
}
