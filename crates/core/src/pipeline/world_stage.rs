//! World-advancement stage: everything that happens *to* the simulated
//! world — organizations provisioning, releasing and remediating cloud
//! resources, attacker campaigns, benign content churn, certificate history,
//! and the §2 liveness probes. The monitoring stages observe what this stage
//! does, never the other way around.

use super::{Ev, RunState, Stage};
use crate::world::{remediation_delay, HijackTruth};
use attacker::{CostModel, Scanner};
use certsim::CaId;
use cloudsim::{AccountId, NamingModel, ResourceId};
use contentgen::abuse::AbuseTopic;
use dns::{Name, Resolver};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use simcore::SimTime;
use worldgen::CaaPolicy;

/// Mutable per-campaign execution state.
struct CampaignState {
    hijacked_hosts: Vec<String>,
    quota_used: u32,
}

/// The world-advancement stage (see module docs).
pub struct WorldStage {
    scanner: Scanner,
    cost_model: CostModel,
    plan_resource: Vec<Option<ResourceId>>,
    /// Dangling, hijackable (freetext naming).
    open_freetext: Vec<usize>,
    /// Dangling IP records (evaluated and declined, §4.3).
    open_ip: Vec<usize>,
    campaign_state: Vec<CampaignState>,
    truth_steals_cookies: Vec<bool>,
    benign_rng: StdRng,
    attacker_rng: StdRng,
    org_rng: StdRng,
    refresh_round: u32,
    // Telemetry handles, resolved once. Counters only observe decisions
    // already made — they never touch an RNG stream or event ordering.
    m_provisions: &'static obs::Counter,
    m_releases: &'static obs::Counter,
    m_remediations: &'static obs::Counter,
    m_hijacks: &'static obs::Counter,
    m_certs_issued: &'static obs::Counter,
    m_caa_blocked: &'static obs::Counter,
    m_ip_declines: &'static obs::Counter,
    m_rng_benign: &'static obs::Gauge,
    m_rng_attacker: &'static obs::Gauge,
    m_rng_org: &'static obs::Gauge,
}

impl WorldStage {
    pub fn new(rs: &RunState) -> Self {
        WorldStage {
            scanner: Scanner::new(),
            cost_model: CostModel::default(),
            plan_resource: vec![None; rs.world.population.plans.len()],
            open_freetext: Vec::new(),
            open_ip: Vec::new(),
            campaign_state: rs
                .world
                .campaigns
                .iter()
                .map(|_| CampaignState {
                    hijacked_hosts: Vec::new(),
                    quota_used: 0,
                })
                .collect(),
            truth_steals_cookies: Vec::new(),
            benign_rng: rs.tree.rng("scenario/benign"),
            attacker_rng: rs.tree.rng("scenario/attacker"),
            org_rng: rs.tree.rng("scenario/orgs"),
            refresh_round: 0,
            m_provisions: obs::counter("world.provisions"),
            m_releases: obs::counter("world.releases"),
            m_remediations: obs::counter("world.remediations"),
            m_hijacks: obs::counter("world.hijacks"),
            m_certs_issued: obs::counter("world.certs_issued"),
            m_caa_blocked: obs::counter("world.caa_blocked_certs"),
            m_ip_declines: obs::counter("world.ip_lottery_declines"),
            m_rng_benign: obs::gauge("world.rng.benign_draws"),
            m_rng_attacker: obs::gauge("world.rng.attacker_draws"),
            m_rng_org: obs::gauge("world.rng.org_draws"),
        }
    }

    /// Digest of the positions of this stage's three sequential RNG streams.
    ///
    /// The world stage owns the only *stateful* RNGs in the simulation
    /// (everything else derives keyed streams from the [`simcore::RngTree`]).
    /// A resumed run replays world events from the seed, so after replaying
    /// to round R these cursors must land exactly where the original run's
    /// did at R — the persistence layer records the digest in every
    /// checkpoint and refuses to resume on a mismatch.
    pub fn rng_cursor_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for cur in [
            self.benign_rng.cursor(),
            self.attacker_rng.cursor(),
            self.org_rng.cursor(),
        ] {
            for b in cur.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    fn provision(&mut self, rs: &mut RunState, now: SimTime, idx: usize) {
        let plan = rs.world.population.plans[idx].clone();
        let org = rs.world.population.org(plan.org).clone();
        let account = AccountId::Org(org.id.0);
        let name = plan.resource_name.clone();
        let mut rid = None;
        for attempt in 0..3 {
            let try_name = name.as_deref().map(|n| {
                if attempt == 0 {
                    n.to_string()
                } else {
                    format!("{n}-{attempt}")
                }
            });
            match rs.world.platform.register(
                plan.service,
                try_name.as_deref(),
                plan.region.as_deref(),
                account,
                now,
                &mut self.org_rng,
            ) {
                Ok(id) => {
                    rid = Some(id);
                    break;
                }
                Err(cloudsim::RegisterError::NameTaken) => continue,
                Err(_) => break,
            }
        }
        let Some(rid) = rid else { return };
        self.m_provisions.inc();
        self.plan_resource[idx] = Some(rid);
        // Serve content; bind the org subdomain. Parked domains serve the
        // registrar's parking rotation (the Figure 10 confounder lives inside
        // the monitored set).
        let content = if org.parked {
            contentgen::benign::parked_site(&worldgen::org::registrar_name(org.registrar), 0)
        } else if org.category == worldgen::OrgCategory::Popular && self.org_rng.gen_bool(0.03) {
            // Benign sites whose vocabulary brushes the abuse lexicon — the
            // §3.2 validation corpus needs them.
            contentgen::benign::benign_topical_site(
                &org.name,
                &plan.subdomain.to_string(),
                &mut self.org_rng,
            )
        } else {
            contentgen::benign::benign_site(
                match org.category {
                    worldgen::OrgCategory::University => contentgen::BenignKind::University,
                    worldgen::OrgCategory::Government => contentgen::BenignKind::Government,
                    _ => contentgen::BenignKind::Corporate,
                },
                &org.name,
                org.sector,
                &plan.subdomain.to_string(),
                &mut self.org_rng,
            )
        };
        rs.world.platform.set_content(rid, content);
        rs.world
            .platform
            .bind_custom_domain(rid, plan.subdomain.clone());
        // Publish the org-side DNS record.
        let res = rs.world.platform.resource(rid).unwrap();
        let record = match &res.generated_fqdn {
            Some(target) => dns::ResourceRecord::new(
                plan.subdomain.clone(),
                300,
                dns::RecordData::Cname(target.clone()),
            ),
            None => {
                dns::ResourceRecord::new(plan.subdomain.clone(), 300, dns::RecordData::A(res.ip))
            }
        };
        rs.world.org_zones.zone_mut_or_create(&org.apex).add(record);
        // Legitimate certificate issuance (multi-SAN background of Figure 20).
        if self.org_rng.gen_bool(rs.cfg.org_cert_probability) {
            let sans = if self.org_rng.gen_bool(0.2) {
                vec![Name::parse(&format!("*.{}", org.apex)).unwrap()]
            } else {
                vec![plan.subdomain.clone(), org.apex.clone()]
            };
            let ca = match org.caa {
                CaaPolicy::PaidOnly => CaId::DigiCert,
                CaaPolicy::FreeCa => CaId::LetsEncrypt,
                CaaPolicy::None => *[
                    CaId::LetsEncrypt,
                    CaId::DigiCert,
                    CaId::AzureCa,
                    CaId::Sectigo,
                ]
                .choose(&mut self.org_rng)
                .unwrap(),
            };
            if rs.world.try_issue_cert(ca, account, &sans, now).is_ok() {
                self.m_certs_issued.inc();
                let renew = now + ca.validity_days() - 7;
                if renew > now && renew <= rs.horizon {
                    rs.q.schedule(renew, Ev::OrgCertRenewal(idx));
                }
            }
        }
    }

    fn org_cert_renewal(&mut self, rs: &mut RunState, now: SimTime, idx: usize) {
        let Some(rid) = self.plan_resource[idx] else {
            return;
        };
        let plan = &rs.world.population.plans[idx];
        if !rs
            .world
            .platform
            .resource(rid)
            .map(|r| r.is_active() && !r.owner.is_attacker())
            .unwrap_or(false)
        {
            return;
        }
        let org = rs.world.population.org(plan.org).clone();
        let sans = vec![plan.subdomain.clone(), org.apex.clone()];
        let ca = match org.caa {
            CaaPolicy::PaidOnly => CaId::DigiCert,
            _ => CaId::LetsEncrypt,
        };
        if rs
            .world
            .try_issue_cert(ca, AccountId::Org(org.id.0), &sans, now)
            .is_ok()
        {
            self.m_certs_issued.inc();
            let renew = now + ca.validity_days() - 7;
            if renew <= rs.horizon {
                rs.q.schedule(renew, Ev::OrgCertRenewal(idx));
            }
        }
    }

    fn release(&mut self, rs: &mut RunState, now: SimTime, idx: usize) {
        let Some(rid) = self.plan_resource[idx] else {
            return;
        };
        // The attacker may already own the name (only possible if the org
        // re-registered; guard anyway).
        if rs
            .world
            .platform
            .resource(rid)
            .map(|r| r.owner.is_attacker())
            .unwrap_or(true)
        {
            return;
        }
        rs.world.platform.release(rid, now);
        self.m_releases.inc();
        let plan = &rs.world.population.plans[idx];
        if plan.purge_record_on_release {
            let sub = plan.subdomain.clone();
            if let Some(z) = rs.world.org_zones.find_zone_mut(&sub) {
                z.remove_name(&sub);
            }
        } else {
            let naming = cloudsim::provider::spec(plan.service).naming;
            match naming {
                NamingModel::Freetext => self.open_freetext.push(idx),
                NamingModel::IpPool => self.open_ip.push(idx),
                NamingModel::RandomName => {} // unguessable; dead end
            }
        }
    }

    fn attacker_week(&mut self, rs: &mut RunState, now: SimTime) {
        // §4.3 economics: every open IP dangling is evaluated and declined.
        for &idx in &self.open_ip {
            let plan = &rs.world.population.plans[idx];
            let org = rs.world.population.org(plan.org);
            let pool_free = rs
                .world
                .platform
                .pool(plan.service)
                .map(|p| p.free_count())
                .unwrap_or(0);
            let d = self
                .cost_model
                .decide(plan.service, org.tranco_rank, pool_free);
            debug_assert!(!d.proceeds());
            rs.ip_lottery_declines += 1;
            self.m_ip_declines.inc();
        }
        self.open_ip.clear(); // evaluated once, never pursued

        for ci in 0..rs.world.campaigns.len() {
            let campaign = rs.world.campaigns[ci].clone();
            if !campaign.is_active(now)
                || self.campaign_state[ci].quota_used >= campaign.target_hijacks
            {
                continue;
            }
            let n = simcore::Poisson::new(campaign.hijacks_per_week)
                .sample(&mut self.attacker_rng)
                .min((campaign.target_hijacks - self.campaign_state[ci].quota_used) as u64);
            for _ in 0..n {
                if self.open_freetext.is_empty() {
                    break;
                }
                // Sample a few candidates; prefer reputation.
                let k = 6.min(self.open_freetext.len());
                let mut picks: Vec<usize> = (0..self.open_freetext.len()).collect();
                picks.shuffle(&mut self.attacker_rng);
                picks.truncate(k);
                let best_pos = picks
                    .into_iter()
                    .max_by(|&a, &b| {
                        let va = self.cost_model.domain_value(
                            rs.world
                                .population
                                .org(rs.world.population.plans[self.open_freetext[a]].org)
                                .tranco_rank,
                        );
                        let vb = self.cost_model.domain_value(
                            rs.world
                                .population
                                .org(rs.world.population.plans[self.open_freetext[b]].org)
                                .tranco_rank,
                        );
                        va.partial_cmp(&vb).unwrap()
                    })
                    .unwrap();
                let plan_idx = self.open_freetext.swap_remove(best_pos);
                let plan = rs.world.population.plans[plan_idx].clone();
                // Cooldown-blocked names free up later: keep the opportunity
                // on the list (the §7 mitigation delays attackers, it does
                // not erase targets).
                if let Some(res) =
                    self.plan_resource[plan_idx].and_then(|rid| rs.world.platform.resource(rid))
                {
                    if let Some(name) = &res.name {
                        if !rs.world.platform.name_available(
                            plan.service,
                            name,
                            plan.region.as_deref(),
                            now,
                        ) {
                            self.open_freetext.push(plan_idx);
                            continue;
                        }
                    }
                }
                // Verify via the real scanning primitive.
                let findings = {
                    let resolver = Resolver::new(rs.world.dns());
                    self.scanner.scan(
                        std::slice::from_ref(&plan.subdomain),
                        &resolver,
                        &rs.world.platform,
                        now,
                    )
                };
                let Some(finding) = findings.into_iter().next() else {
                    continue;
                };
                let account = campaign.account();
                let Ok(rid) = rs.world.platform.register(
                    finding.service,
                    Some(&finding.resource_name),
                    finding.region.as_deref(),
                    account,
                    now,
                    &mut self.attacker_rng,
                ) else {
                    continue;
                };
                // Verify the takeover actually worked: the minted FQDN must
                // be the one the victim's record points at. Under the
                // randomized-names mitigation the platform mints something
                // else and the attacker walks away (this is the §4.3
                // determinism check in action).
                let got = rs
                    .world
                    .platform
                    .resource(rid)
                    .and_then(|r| r.generated_fqdn.clone());
                if got.as_ref() != Some(&finding.cloud_fqdn) {
                    rs.world.platform.release(rid, now);
                    continue;
                }
                rs.world
                    .platform
                    .bind_custom_domain(rid, finding.victim_fqdn.clone());
                let spec = campaign.make_abuse_spec(
                    &self.campaign_state[ci].hijacked_hosts,
                    &mut self.attacker_rng,
                );
                let content = contentgen::abuse::build_abuse_site(
                    &spec,
                    &finding.victim_fqdn.to_string(),
                    &mut self.attacker_rng,
                );
                rs.world.platform.set_content(rid, content);
                self.campaign_state[ci]
                    .hijacked_hosts
                    .push(finding.victim_fqdn.to_string());
                self.campaign_state[ci].quota_used += 1;
                // Certificate?
                let in_boost = now >= rs.cfg.cert_boost_from && now <= rs.cfg.cert_boost_until;
                let p_cert = if in_boost {
                    0.75
                } else {
                    campaign.cert_probability
                };
                let mut cert = None;
                let mut cert_at = None;
                if self.attacker_rng.gen_bool(p_cert) {
                    let ca = if self.attacker_rng.gen_bool(0.85) {
                        CaId::LetsEncrypt
                    } else {
                        CaId::ZeroSsl
                    };
                    match rs.world.try_issue_cert(
                        ca,
                        account,
                        std::slice::from_ref(&finding.victim_fqdn),
                        now,
                    ) {
                        Ok(id) => {
                            self.m_certs_issued.inc();
                            cert = Some(id);
                            cert_at = Some(now);
                        }
                        Err(certsim::IssueError::CaaForbids(_)) => {
                            rs.caa_blocked_certs += 1;
                            self.m_caa_blocked.inc();
                        }
                        Err(_) => {}
                    }
                }
                // Malware droppers on gambling sites (§5.4).
                if spec.topic == AbuseTopic::Gambling {
                    let arts = rs.world.malware_model.sample_site(
                        &finding.victim_fqdn,
                        now,
                        &mut self.attacker_rng,
                    );
                    rs.world.binaries.extend(arts);
                }
                // Ground truth + remediation scheduling.
                let org = rs.world.population.org(plan.org).clone();
                let delay = remediation_delay(org.remediation_median_days, &mut self.attacker_rng);
                let truth_idx = rs.world.truth.len();
                rs.world.truth.push(HijackTruth {
                    victim_fqdn: finding.victim_fqdn.clone(),
                    cloud_fqdn: finding.cloud_fqdn.clone(),
                    org: org.id,
                    campaign: campaign.id,
                    service: finding.service,
                    resource: rid,
                    start: now,
                    end: None,
                    topic: spec.topic,
                    technique: spec.technique,
                    page_count: spec.page_count,
                    identifiers_embedded: !spec.links.phones.is_empty()
                        || !spec.links.social.is_empty(),
                    cert,
                    cert_issued_at: cert_at,
                });
                self.m_hijacks.inc();
                self.truth_steals_cookies.push(
                    self.attacker_rng
                        .gen_bool(rs.cfg.cookie_stealer_probability),
                );
                let rem = now + delay;
                if rem <= rs.horizon {
                    rs.q.schedule(rem, Ev::Remediate(truth_idx));
                }
                if now + 7 <= rs.horizon {
                    rs.q.schedule(now + 7, Ev::LivenessProbe(truth_idx));
                }
            }
        }

        // Cookie exfiltration on live stealer hijacks (§5.5).
        for (ti, t) in rs.world.truth.iter().enumerate() {
            if t.end.is_some() || !self.truth_steals_cookies.get(ti).copied().unwrap_or(false) {
                continue;
            }
            let class = rs.world.capability_of(t.service);
            let https = t.cert.is_some();
            let visitors = rs.world.weekly_visitors(t.org);
            let fqdn = t.victim_fqdn.clone();
            rs.world.vault.simulate_visits(
                &fqdn,
                class,
                https,
                visitors,
                0.02,
                now,
                &mut self.attacker_rng,
            );
        }
    }

    fn remediate(&mut self, rs: &mut RunState, now: SimTime, truth_idx: usize) {
        let fqdn = rs.world.truth[truth_idx].victim_fqdn.clone();
        if rs.world.truth[truth_idx].end.is_some() {
            return;
        }
        if let Some(z) = rs.world.org_zones.find_zone_mut(&fqdn) {
            z.remove_name(&fqdn);
        }
        rs.world.truth[truth_idx].end = Some(now);
        self.m_remediations.inc();
    }

    fn benign_refresh(&mut self, rs: &mut RunState) {
        self.refresh_round += 1;
        // Parking rotations: all parked apexes of one registrar flip together
        // (the Figure 10 confounder).
        let parked: Vec<(Name, String)> = rs
            .world
            .population
            .orgs
            .iter()
            .filter(|o| o.parked)
            .map(|o| (o.apex.clone(), worldgen::org::registrar_name(o.registrar)))
            .collect();
        for (apex, provider) in parked {
            if let Some(ip) = rs.world.origins.ip_of(&apex) {
                rs.world.origins.host(
                    apex,
                    ip,
                    contentgen::benign::parked_site(&provider, self.refresh_round),
                );
            }
        }
        // A slice of org cloud sites get routine content updates; parked
        // cloud sites rotate with their registrar.
        let active: Vec<(ResourceId, usize)> = self
            .plan_resource
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|rid| (rid, i)))
            .filter(|(rid, _)| {
                rs.world
                    .platform
                    .resource(*rid)
                    .map(|r| r.is_active() && !r.owner.is_attacker())
                    .unwrap_or(false)
            })
            .collect();
        for (rid, idx) in active {
            let plan = &rs.world.population.plans[idx];
            let org = rs.world.population.org(plan.org).clone();
            if org.parked {
                rs.world.platform.set_content(
                    rid,
                    contentgen::benign::parked_site(
                        &worldgen::org::registrar_name(org.registrar),
                        self.refresh_round,
                    ),
                );
                continue;
            }
            if !self.benign_rng.gen_bool(0.02) {
                continue;
            }
            let content = contentgen::benign::benign_site(
                contentgen::BenignKind::Corporate,
                &org.name,
                org.sector,
                &plan.subdomain.to_string(),
                &mut self.benign_rng,
            );
            rs.world.platform.set_content(rid, content);
        }
    }

    fn historic_cert_wave(&mut self, rs: &mut RunState, now: SimTime) {
        // Figure 20's 2017 anomaly: single-SAN LE certs mass issued for
        // subdomains that will later dangle. Appended directly to CT
        // (pre-study history reconstruction; see DESIGN.md substitutions).
        let candidates: Vec<Name> = rs
            .world
            .population
            .plans
            .iter()
            .filter(|p| p.deterministically_hijackable())
            .map(|p| p.subdomain.clone())
            .collect();
        let mut rng = rs.tree.rng("scenario/certwave2017");
        let n = (candidates.len() as f64 * 0.5) as usize;
        let mut picks = candidates;
        picks.shuffle(&mut rng);
        picks.truncate(n);
        for (i, fqdn) in picks.into_iter().enumerate() {
            let id = rs.world.fresh_cert_id();
            let cert = certsim::Certificate {
                id,
                subject: fqdn.clone(),
                sans: vec![fqdn],
                issuer: if i % 20 == 0 {
                    CaId::ZeroSsl
                } else {
                    CaId::LetsEncrypt
                },
                not_before: now,
                not_after: now + 90,
                requested_by: AccountId::Attacker(u32::MAX),
            };
            rs.world.ct.append(cert, now + (i as i32 % 14));
        }
    }

    fn liveness_probe(&mut self, rs: &mut RunState, now: SimTime, truth_idx: usize) {
        // §2's methodology comparison, run while the hijack is live: ICMP and
        // TCP probe the resolved IP; HTTP carries the FQDN in the Host header.
        let t = &rs.world.truth[truth_idx];
        let fqdn = t.victim_fqdn.clone();
        let outcome = {
            let resolver = Resolver::new(rs.world.dns());
            resolver.resolve_a(&fqdn, now)
        };
        let web = rs.world.web();
        use httpsim::{probe::probe, ProbeKind, ProbeResult};
        let (icmp, tcp80, tcp443, http) = match outcome.addresses.first() {
            Some(&ip) => (
                probe(&web, ProbeKind::IcmpPing, ip, &fqdn.to_string(), now).considers_alive(),
                probe(&web, ProbeKind::TcpConnect(80), ip, &fqdn.to_string(), now)
                    .considers_alive(),
                probe(&web, ProbeKind::TcpConnect(443), ip, &fqdn.to_string(), now)
                    .considers_alive(),
                matches!(
                    probe(
                        &web,
                        ProbeKind::Http { https: false },
                        ip,
                        &fqdn.to_string(),
                        now
                    ),
                    ProbeResult::HttpResponse(_)
                ),
            ),
            None => (false, false, false, false),
        };
        rs.liveness.push(crate::report::LivenessSample {
            icmp,
            tcp80,
            tcp443,
            http,
        });
    }
}

impl Stage for WorldStage {
    fn name(&self) -> &'static str {
        "world"
    }

    fn on_event(&mut self, rs: &mut RunState, now: SimTime, ev: Ev) {
        match ev {
            Ev::Provision(idx) => self.provision(rs, now, idx),
            Ev::OrgCertRenewal(idx) => self.org_cert_renewal(rs, now, idx),
            Ev::Release(idx) => self.release(rs, now, idx),
            Ev::AttackerWeek => self.attacker_week(rs, now),
            Ev::Remediate(idx) => self.remediate(rs, now, idx),
            Ev::BenignRefresh => self.benign_refresh(rs),
            Ev::HistoricCertWave => self.historic_cert_wave(rs, now),
            Ev::LivenessProbe(idx) => self.liveness_probe(rs, now, idx),
            Ev::MonitorWeek => {} // handled by the monitoring stages
        }
        // Cursor positions of the three stateful RNG streams: total draws so
        // far, the world stage's determinism fingerprint made visible.
        self.m_rng_benign.set(self.benign_rng.cursor() as f64);
        self.m_rng_attacker.set(self.attacker_rng.cursor() as f64);
        self.m_rng_org.set(self.org_rng.cursor() as f64);
    }
}
