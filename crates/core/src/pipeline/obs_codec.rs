//! Binary `ObsRecord` codec for storelog format v2.
//!
//! One [`ShardCodec`] per segment shard, shared shape between encoder and
//! decoder: the codec context (interned labels/strings, the name table, and
//! the last observation per FQDN) is exactly the replayed prefix of the
//! shard's committed stream, updated record by record in append order.
//! Nothing about the context is written to disk separately, which keeps the
//! append-only frame/commit/recovery machinery of v1 byte-identical — only
//! what a data payload *means* changed (see `crates/storelog/MIGRATIONS.md`
//! for the wire layout).
//!
//! Two record shapes:
//!
//! - **full** (`tag 0x01`): the first observation of an FQDN in this shard.
//!   The name is introduced inline (label-interned) and the snapshot is
//!   encoded against an empty-snapshot baseline, so unreachable probes —
//!   the overwhelming majority of a feed — cost a handful of bytes.
//! - **delta** (`tag 0x02`): every later observation. Only fields that
//!   differ from the FQDN's previous snapshot are encoded (a field mask),
//!   plus a 16-bit chain check over the previous record's payload bytes.
//!
//! The chain check is what makes *structurally plausible* corruption
//! detectable: frame checksums catch flipped bits, but a whole-frame splice
//! (duplicate / remove / reorder, each frame individually checksum-valid)
//! shifts the codec context. Duplicated inline interns, out-of-range ids,
//! full records for already-observed FQDNs, deltas without a predecessor,
//! and chain-check mismatches each turn such a splice into a hard decode
//! error instead of silently wrong history — the corruption-injection
//! suite pins this.
//!
//! Decoding is total: every path returns [`CodecError`] rather than
//! panicking, and allocations are bounded by the payload slice.

use crate::diff::ChangeKind;
use crate::snapshot::Snapshot;
use dns::{Name, Rcode};
use simcore::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use storelog::codec::{
    put_ivarint, put_len_prefixed, put_uvarint, CodecError, CodecResult, Reader,
};
use storelog::intern::InternTable;

use super::persist::{ChangeMeta, ObsRecord};

const TAG_FULL: u8 = 0x01;
const TAG_DELTA: u8 = 0x02;

// Field-mask bits of the snapshot body, in encode order.
const F_RCODE: u32 = 1 << 0;
const F_CNAME: u32 = 1 << 1;
const F_IP: u32 = 1 << 2;
const F_HTTP_STATUS: u32 = 1 << 3;
const F_INDEX_HASH: u32 = 1 << 4;
const F_INDEX_SIZE: u32 = 1 << 5;
const F_TITLE: u32 = 1 << 6;
const F_LANGUAGE: u32 = 1 << 7;
const F_KEYWORDS: u32 = 1 << 8;
const F_META_KEYWORDS: u32 = 1 << 9;
const F_GENERATOR: u32 = 1 << 10;
const F_SITEMAP: u32 = 1 << 11;
const F_SCRIPT_SRCS: u32 = 1 << 12;
const F_IDENTIFIERS: u32 = 1 << 13;
const F_HTML: u32 = 1 << 14;
const F_ALL: u32 = (1 << 15) - 1;

fn kind_code(k: ChangeKind) -> u8 {
    match k {
        ChangeKind::Dns => 0,
        ChangeKind::HttpStatus => 1,
        ChangeKind::Content => 2,
        ChangeKind::Language => 3,
        ChangeKind::SitemapAppeared => 4,
        ChangeKind::SitemapGrew => 5,
        ChangeKind::BecameUnreachable => 6,
        ChangeKind::BecameReachable => 7,
    }
}

fn kind_from_code(c: u8) -> CodecResult<ChangeKind> {
    Ok(match c {
        0 => ChangeKind::Dns,
        1 => ChangeKind::HttpStatus,
        2 => ChangeKind::Content,
        3 => ChangeKind::Language,
        4 => ChangeKind::SitemapAppeared,
        5 => ChangeKind::SitemapGrew,
        6 => ChangeKind::BecameUnreachable,
        7 => ChangeKind::BecameReachable,
        _ => return Err(CodecError::Malformed(format!("unknown change kind {c}"))),
    })
}

/// Streaming v2 codec context of one shard. The same instance both encodes
/// and decodes: a resumed run decodes the committed stream and then keeps
/// appending through the very same context, so live deltas continue exactly
/// where the recorded history stopped.
#[derive(Clone)]
pub struct ShardCodec {
    labels: InternTable,
    strs: InternTable,
    /// Dense name table; ids are assigned in stream order, shared between
    /// observed FQDNs and CNAME targets.
    names: Vec<Name>,
    name_ids: HashMap<String, u32>,
    /// Per name id: the previous snapshot of that FQDN and the low 16 bits
    /// of FNV-64 over its record's payload bytes (the delta chain check).
    /// `None` for names only ever seen as CNAME targets.
    last: Vec<Option<(Snapshot, u16)>>,
}

impl Default for ShardCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardCodec {
    pub fn new() -> Self {
        ShardCodec {
            labels: InternTable::new(),
            strs: InternTable::new(),
            names: Vec::new(),
            name_ids: HashMap::new(),
            last: Vec::new(),
        }
    }

    /// Records decoded/encoded through this context so far that introduced
    /// their FQDN (i.e. the number of distinct observed names).
    pub fn observed_names(&self) -> usize {
        self.last.iter().filter(|l| l.is_some()).count()
    }

    // -- name table ---------------------------------------------------------

    fn intern_name(&mut self, name: &Name) -> u32 {
        let key = name.to_string();
        match self.name_ids.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as u32;
                self.names.push(name.clone());
                self.name_ids.insert(key, id);
                self.last.push(None);
                id
            }
        }
    }

    fn put_name_labels(&mut self, name: &Name, out: &mut Vec<u8>) {
        put_uvarint(name.labels().len() as u64, out);
        for l in name.labels() {
            self.labels.put_ref(l, out);
        }
    }

    fn read_name_new(&mut self, r: &mut Reader<'_>) -> CodecResult<u32> {
        let n = r.uvarint()?;
        // A Name is ≤ 255 wire octets, so > 127 labels is impossible.
        if n > 127 {
            return Err(CodecError::Malformed(format!("{n} labels in one name")));
        }
        let mut labels = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = self.labels.read_ref(r)?;
            labels.push(self.labels.get(id).to_string());
        }
        let name = Name::from_labels(labels)
            .map_err(|e| CodecError::Malformed(format!("invalid name: {e}")))?;
        let key = name.to_string();
        if self.name_ids.contains_key(&key) {
            return Err(CodecError::Malformed(format!(
                "duplicate name definition of {key} (duplicated or spliced frame)"
            )));
        }
        let id = self.names.len() as u32;
        self.names.push(name);
        self.name_ids.insert(key, id);
        self.last.push(None);
        Ok(id)
    }

    /// `0` = new name (labels follow), `k>0` = existing id `k-1`.
    fn put_name_ref(&mut self, name: &Name, out: &mut Vec<u8>) -> u32 {
        match self.name_ids.get(&name.to_string()).copied() {
            Some(id) => {
                put_uvarint(id as u64 + 1, out);
                id
            }
            None => {
                put_uvarint(0, out);
                self.put_name_labels(name, out);
                self.intern_name(name)
            }
        }
    }

    fn read_name_ref(&mut self, r: &mut Reader<'_>) -> CodecResult<u32> {
        match r.uvarint()? {
            0 => self.read_name_new(r),
            k => self.check_name_id(k - 1),
        }
    }

    /// `0` = None, `1` = new name, `k>1` = existing id `k-2`.
    fn put_opt_name_ref(&mut self, name: Option<&Name>, out: &mut Vec<u8>) {
        match name {
            None => put_uvarint(0, out),
            Some(n) => match self.name_ids.get(&n.to_string()).copied() {
                Some(id) => put_uvarint(id as u64 + 2, out),
                None => {
                    put_uvarint(1, out);
                    self.put_name_labels(n, out);
                    self.intern_name(n);
                }
            },
        }
    }

    fn read_opt_name_ref(&mut self, r: &mut Reader<'_>) -> CodecResult<Option<u32>> {
        match r.uvarint()? {
            0 => Ok(None),
            1 => self.read_name_new(r).map(Some),
            k => self.check_name_id(k - 2).map(Some),
        }
    }

    fn check_name_id(&self, id: u64) -> CodecResult<u32> {
        if id < self.names.len() as u64 {
            Ok(id as u32)
        } else {
            Err(CodecError::Malformed(format!(
                "name id {id} out of range (table has {})",
                self.names.len()
            )))
        }
    }

    // -- encode -------------------------------------------------------------

    /// Encode `rec` into `out` (cleared first) and advance the context.
    pub fn encode_into(&mut self, rec: &ObsRecord, out: &mut Vec<u8>) {
        out.clear();
        let known = self
            .name_ids
            .get(&rec.snap.fqdn.to_string())
            .copied()
            .filter(|&id| self.last[id as usize].is_some());
        let id = match known {
            Some(id) => {
                let (prev, chain) = self.last[id as usize].clone().unwrap();
                out.push(TAG_DELTA);
                put_ivarint(rec.round.0 as i64, out);
                put_uvarint(rec.seq as u64, out);
                put_uvarint(id as u64, out);
                out.extend_from_slice(&chain.to_le_bytes());
                self.put_body(&prev, prev.day, &rec.snap, out);
                id
            }
            None => {
                out.push(TAG_FULL);
                put_ivarint(rec.round.0 as i64, out);
                put_uvarint(rec.seq as u64, out);
                let id = self.put_name_ref(&rec.snap.fqdn, out);
                let base =
                    Snapshot::unreachable(rec.snap.fqdn.clone(), rec.round, Rcode::NoError, None);
                self.put_body(&base, rec.round, &rec.snap, out);
                id
            }
        };
        self.put_change(rec.change.as_ref(), out);
        let chain = (storelog::frame::fnv64(out) & 0xffff) as u16;
        self.last[id as usize] = Some((rec.snap.clone(), chain));
    }

    /// Snapshot body: day delta + field mask + only the differing fields,
    /// against `base` (an empty snapshot for full records, the previous
    /// snapshot for deltas).
    fn put_body(&mut self, base: &Snapshot, base_day: SimTime, snap: &Snapshot, out: &mut Vec<u8>) {
        put_ivarint(snap.day.0 as i64 - base_day.0 as i64, out);
        let mut mask = 0u32;
        if snap.rcode != base.rcode {
            mask |= F_RCODE;
        }
        if snap.cname_target != base.cname_target {
            mask |= F_CNAME;
        }
        if snap.ip != base.ip {
            mask |= F_IP;
        }
        if snap.http_status != base.http_status {
            mask |= F_HTTP_STATUS;
        }
        if snap.index_hash != base.index_hash {
            mask |= F_INDEX_HASH;
        }
        if snap.index_size != base.index_size {
            mask |= F_INDEX_SIZE;
        }
        if snap.title != base.title {
            mask |= F_TITLE;
        }
        if snap.language != base.language {
            mask |= F_LANGUAGE;
        }
        if snap.keywords != base.keywords {
            mask |= F_KEYWORDS;
        }
        if snap.meta_keywords != base.meta_keywords {
            mask |= F_META_KEYWORDS;
        }
        if snap.generator != base.generator {
            mask |= F_GENERATOR;
        }
        if snap.sitemap_bytes != base.sitemap_bytes {
            mask |= F_SITEMAP;
        }
        if snap.script_srcs != base.script_srcs {
            mask |= F_SCRIPT_SRCS;
        }
        if snap.identifiers != base.identifiers {
            mask |= F_IDENTIFIERS;
        }
        if snap.html != base.html {
            mask |= F_HTML;
        }
        put_uvarint(mask as u64, out);

        if mask & F_RCODE != 0 {
            out.push(snap.rcode.code());
        }
        if mask & F_CNAME != 0 {
            self.put_opt_name_ref(snap.cname_target.as_ref(), out);
        }
        if mask & F_IP != 0 {
            match snap.ip {
                None => out.push(0),
                Some(ip) => {
                    out.push(1);
                    out.extend_from_slice(&ip.octets());
                }
            }
        }
        if mask & F_HTTP_STATUS != 0 {
            put_uvarint(snap.http_status.map_or(0, |s| s as u64 + 1), out);
        }
        if mask & F_INDEX_HASH != 0 {
            out.extend_from_slice(&snap.index_hash.to_le_bytes());
        }
        if mask & F_INDEX_SIZE != 0 {
            put_uvarint(snap.index_size as u64, out);
        }
        if mask & F_TITLE != 0 {
            self.strs.put_opt_ref(snap.title.as_deref(), out);
        }
        if mask & F_LANGUAGE != 0 {
            self.strs.put_opt_ref(snap.language.as_deref(), out);
        }
        if mask & F_KEYWORDS != 0 {
            self.put_str_list(&snap.keywords, out);
        }
        if mask & F_META_KEYWORDS != 0 {
            self.put_str_list(&snap.meta_keywords, out);
        }
        if mask & F_GENERATOR != 0 {
            self.strs.put_opt_ref(snap.generator.as_deref(), out);
        }
        if mask & F_SITEMAP != 0 {
            match snap.sitemap_bytes {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    put_uvarint(b, out);
                }
            }
        }
        if mask & F_SCRIPT_SRCS != 0 {
            self.put_str_list(&snap.script_srcs, out);
        }
        if mask & F_IDENTIFIERS != 0 {
            self.put_str_list(&snap.identifiers, out);
        }
        if mask & F_HTML != 0 {
            match &snap.html {
                None => out.push(0),
                Some(h) => {
                    out.push(1);
                    put_len_prefixed(h.as_bytes(), out);
                }
            }
        }
    }

    fn put_str_list(&mut self, items: &[String], out: &mut Vec<u8>) {
        put_uvarint(items.len() as u64, out);
        for s in items {
            self.strs.put_ref(s, out);
        }
    }

    fn put_change(&mut self, change: Option<&ChangeMeta>, out: &mut Vec<u8>) {
        let Some(m) = change else {
            out.push(0);
            return;
        };
        out.push(1);
        put_uvarint(m.kinds.len() as u64, out);
        for &k in &m.kinds {
            out.push(kind_code(k));
        }
        let mut flags = 0u8;
        if m.before_language.is_some() {
            flags |= 1;
        }
        if m.before_sitemap_bytes.is_some() {
            flags |= 2;
        }
        if m.before_serving {
            flags |= 4;
        }
        out.push(flags);
        if let Some(l) = &m.before_language {
            self.strs.put_ref(l, out);
        }
        if let Some(b) = m.before_sitemap_bytes {
            put_uvarint(b, out);
        }
        self.put_str_list(&m.before_keywords, out);
    }

    // -- decode -------------------------------------------------------------

    /// Decode one payload and advance the context. The payload must be the
    /// next record of this shard's stream in append order.
    pub fn decode(&mut self, payload: &[u8]) -> CodecResult<ObsRecord> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let round_raw = r.ivarint()?;
        let round = SimTime(i32::try_from(round_raw).map_err(|_| {
            CodecError::Malformed(format!("round {round_raw} outside SimTime range"))
        })?);
        let seq_raw = r.uvarint()?;
        let seq = u32::try_from(seq_raw)
            .map_err(|_| CodecError::Malformed(format!("seq {seq_raw} overflows u32")))?;

        let (id, snap) = match tag {
            TAG_FULL => {
                let id = self.read_name_ref(&mut r)?;
                if self.last[id as usize].is_some() {
                    return Err(CodecError::Malformed(format!(
                        "full record for already-observed fqdn {} \
                         (duplicated or spliced frame)",
                        self.names[id as usize]
                    )));
                }
                let base = Snapshot::unreachable(
                    self.names[id as usize].clone(),
                    round,
                    Rcode::NoError,
                    None,
                );
                let snap = self.read_body(base, round, &mut r)?;
                (id, snap)
            }
            TAG_DELTA => {
                let id_raw = r.uvarint()?;
                let id = self.check_name_id(id_raw)?;
                let Some((prev, chain)) = self.last[id as usize].clone() else {
                    return Err(CodecError::Malformed(format!(
                        "delta record for never-observed fqdn {} \
                         (removed or reordered frame)",
                        self.names[id as usize]
                    )));
                };
                let got = r.u16_le()?;
                if got != chain {
                    return Err(CodecError::Malformed(format!(
                        "delta chain check mismatch for {} \
                         (expected {chain:#06x}, payload says {got:#06x}; \
                         removed or reordered frame)",
                        self.names[id as usize]
                    )));
                }
                let prev_day = prev.day;
                let snap = self.read_body(prev, prev_day, &mut r)?;
                (id, snap)
            }
            t => {
                return Err(CodecError::Malformed(format!(
                    "unknown record tag {t:#04x}"
                )))
            }
        };

        let change = self.read_change(&mut r)?;
        r.expect_end()?;
        let chain = (storelog::frame::fnv64(payload) & 0xffff) as u16;
        self.last[id as usize] = Some((snap.clone(), chain));
        Ok(ObsRecord {
            round,
            seq,
            snap,
            change,
        })
    }

    /// Apply a masked body on top of `base` (consumed and returned).
    fn read_body(
        &mut self,
        mut snap: Snapshot,
        base_day: SimTime,
        r: &mut Reader<'_>,
    ) -> CodecResult<Snapshot> {
        let day_delta = r.ivarint()?;
        let day = (base_day.0 as i64)
            .checked_add(day_delta)
            .and_then(|d| i32::try_from(d).ok());
        snap.day = SimTime(day.ok_or_else(|| {
            CodecError::Malformed(format!("day delta {day_delta} outside SimTime range"))
        })?);

        let mask_raw = r.uvarint()?;
        if mask_raw & !(F_ALL as u64) != 0 {
            return Err(CodecError::Malformed(format!(
                "unknown field mask bits {mask_raw:#x}"
            )));
        }
        let mask = mask_raw as u32;

        if mask & F_RCODE != 0 {
            let c = r.u8()?;
            snap.rcode = Rcode::from_code(c)
                .ok_or_else(|| CodecError::Malformed(format!("unknown rcode {c}")))?;
        }
        if mask & F_CNAME != 0 {
            snap.cname_target = self
                .read_opt_name_ref(r)?
                .map(|id| self.names[id as usize].clone());
        }
        if mask & F_IP != 0 {
            snap.ip = match r.u8()? {
                0 => None,
                1 => {
                    let o = r.bytes(4)?;
                    Some(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
                }
                b => {
                    return Err(CodecError::Malformed(format!(
                        "bad option marker {b} for ip"
                    )))
                }
            };
        }
        if mask & F_HTTP_STATUS != 0 {
            snap.http_status = match r.uvarint()? {
                0 => None,
                v => Some(u16::try_from(v - 1).map_err(|_| {
                    CodecError::Malformed(format!("http status {} overflows u16", v - 1))
                })?),
            };
        }
        if mask & F_INDEX_HASH != 0 {
            snap.index_hash = r.u64_le()?;
        }
        if mask & F_INDEX_SIZE != 0 {
            let v = r.uvarint()?;
            snap.index_size = u32::try_from(v)
                .map_err(|_| CodecError::Malformed(format!("index size {v} overflows u32")))?;
        }
        if mask & F_TITLE != 0 {
            snap.title = self.read_opt_str(r)?;
        }
        if mask & F_LANGUAGE != 0 {
            snap.language = self.read_opt_str(r)?;
        }
        if mask & F_KEYWORDS != 0 {
            snap.keywords = self.read_str_list(r)?;
        }
        if mask & F_META_KEYWORDS != 0 {
            snap.meta_keywords = self.read_str_list(r)?;
        }
        if mask & F_GENERATOR != 0 {
            snap.generator = self.read_opt_str(r)?;
        }
        if mask & F_SITEMAP != 0 {
            snap.sitemap_bytes = match r.u8()? {
                0 => None,
                1 => Some(r.uvarint()?),
                b => {
                    return Err(CodecError::Malformed(format!(
                        "bad option marker {b} for sitemap bytes"
                    )))
                }
            };
        }
        if mask & F_SCRIPT_SRCS != 0 {
            snap.script_srcs = self.read_str_list(r)?;
        }
        if mask & F_IDENTIFIERS != 0 {
            snap.identifiers = self.read_str_list(r)?;
        }
        if mask & F_HTML != 0 {
            snap.html = match r.u8()? {
                0 => None,
                1 => {
                    let bytes = r.len_prefixed()?;
                    Some(
                        std::str::from_utf8(bytes)
                            .map_err(|_| CodecError::Malformed("html is not UTF-8".into()))?
                            .to_string(),
                    )
                }
                b => {
                    return Err(CodecError::Malformed(format!(
                        "bad option marker {b} for html"
                    )))
                }
            };
        }
        Ok(snap)
    }

    fn read_opt_str(&mut self, r: &mut Reader<'_>) -> CodecResult<Option<String>> {
        Ok(self
            .strs
            .read_opt_ref(r)?
            .map(|id| self.strs.get(id).to_string()))
    }

    fn read_str_list(&mut self, r: &mut Reader<'_>) -> CodecResult<Vec<String>> {
        let n = r.uvarint()?;
        // Each list element costs ≥ 1 byte on the wire; a count past the
        // remaining bytes is a corrupt length, not a huge allocation.
        if n > r.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let id = self.strs.read_ref(r)?;
            out.push(self.strs.get(id).to_string());
        }
        Ok(out)
    }

    fn read_change(&mut self, r: &mut Reader<'_>) -> CodecResult<Option<ChangeMeta>> {
        match r.u8()? {
            0 => Ok(None),
            1 => {
                let n = r.uvarint()?;
                if n > 8 {
                    return Err(CodecError::Malformed(format!("{n} change kinds (8 exist)")));
                }
                let mut kinds = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    kinds.push(kind_from_code(r.u8()?)?);
                }
                let flags = r.u8()?;
                if flags & !0x07 != 0 {
                    return Err(CodecError::Malformed(format!(
                        "unknown change flags {flags:#04x}"
                    )));
                }
                let before_language = if flags & 1 != 0 {
                    let id = self.strs.read_ref(r)?;
                    Some(self.strs.get(id).to_string())
                } else {
                    None
                };
                let before_sitemap_bytes = if flags & 2 != 0 {
                    Some(r.uvarint()?)
                } else {
                    None
                };
                Ok(Some(ChangeMeta {
                    kinds,
                    before_language,
                    before_sitemap_bytes,
                    before_serving: flags & 4 != 0,
                    before_keywords: self.read_str_list(r)?,
                }))
            }
            b => Err(CodecError::Malformed(format!(
                "bad option marker {b} for change meta"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(fqdn: &str, day: i32) -> Snapshot {
        Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(day), Rcode::NxDomain, None)
    }

    fn serving(fqdn: &str, day: i32) -> Snapshot {
        let mut s = snap(fqdn, day);
        s.rcode = Rcode::NoError;
        s.cname_target = Some("app.pages.example".parse().unwrap());
        s.ip = Some(Ipv4Addr::new(10, 1, 2, 3));
        s.http_status = Some(200);
        s.index_hash = 0xfeed_beef;
        s.index_size = 4821;
        s.title = Some("Welcome — «démo»".into());
        s.language = Some("fr".into());
        s.keywords = vec!["casino".into(), "slots".into()];
        s.meta_keywords = vec!["casino".into()];
        s.generator = Some("WordPress 6.2".into());
        s.sitemap_bytes = Some(120_000);
        s.script_srcs = vec!["https://cdn.example/app.js".into()];
        s.identifiers = vec!["ua-1234".into()];
        s.html = Some("<html lang=\"fr\">🦀</html>".into());
        s
    }

    fn rec(round: i32, seq: u32, snap: Snapshot, change: Option<ChangeMeta>) -> ObsRecord {
        ObsRecord {
            round: SimTime(round),
            seq,
            snap,
            change,
        }
    }

    fn assert_roundtrip(records: &[ObsRecord]) -> Vec<Vec<u8>> {
        let mut enc = ShardCodec::new();
        let mut payloads = Vec::new();
        for r in records {
            let mut buf = Vec::new();
            enc.encode_into(r, &mut buf);
            payloads.push(buf);
        }
        let mut dec = ShardCodec::new();
        for (r, p) in records.iter().zip(&payloads) {
            let back = dec.decode(p).unwrap();
            assert_eq!(back.round, r.round);
            assert_eq!(back.seq, r.seq);
            assert_eq!(back.snap, r.snap);
            match (&back.change, &r.change) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.kinds, b.kinds);
                    assert_eq!(a.before_language, b.before_language);
                    assert_eq!(a.before_sitemap_bytes, b.before_sitemap_bytes);
                    assert_eq!(a.before_serving, b.before_serving);
                    assert_eq!(a.before_keywords, b.before_keywords);
                }
                _ => panic!("change presence mismatch"),
            }
        }
        payloads
    }

    #[test]
    fn full_then_delta_roundtrip() {
        let records = vec![
            rec(0, 0, snap("a.cloud.example", 0), None),
            rec(0, 1, serving("b.cloud.example", 0), None),
            rec(7, 0, snap("a.cloud.example", 7), None),
            rec(
                7,
                1,
                serving("b.cloud.example", 7),
                Some(ChangeMeta {
                    kinds: vec![ChangeKind::Content, ChangeKind::Language],
                    before_language: Some("en".into()),
                    before_sitemap_bytes: None,
                    before_serving: true,
                    before_keywords: vec!["casino".into()],
                }),
            ),
        ];
        let payloads = assert_roundtrip(&records);
        // The unchanged repeat observation is a handful of bytes.
        assert!(
            payloads[2].len() < 16,
            "no-change delta is {} bytes",
            payloads[2].len()
        );
        // The delta of an identical serving snapshot shares every string.
        assert!(
            payloads[3].len() < payloads[1].len() / 2,
            "delta {} vs full {}",
            payloads[3].len(),
            payloads[1].len()
        );
    }

    #[test]
    fn deltas_encode_only_changed_fields() {
        let mut before = serving("x.cloud.example", 0);
        before.html = None;
        let mut after = before.clone();
        after.day = SimTime(7);
        after.http_status = Some(404);
        after.index_hash = 1;
        let records = vec![rec(0, 0, before, None), rec(7, 0, after, None)];
        let payloads = assert_roundtrip(&records);
        assert!(
            payloads[1].len() < 32,
            "two-field delta is {} bytes",
            payloads[1].len()
        );
    }

    #[test]
    fn cname_targets_share_the_name_table() {
        let mut a = snap("a.example", 0);
        a.cname_target = Some("shared.target.example".parse().unwrap());
        let mut b = snap("b.example", 0);
        b.cname_target = Some("shared.target.example".parse().unwrap());
        let records = vec![rec(0, 0, a, None), rec(0, 1, b, None)];
        let payloads = assert_roundtrip(&records);
        assert!(
            payloads[1].len() < payloads[0].len(),
            "second cname ref should be an id, not inline"
        );
    }

    #[test]
    fn duplicated_frame_is_rejected() {
        let mut enc = ShardCodec::new();
        let mut p0 = Vec::new();
        enc.encode_into(&rec(0, 0, snap("dup.example", 0), None), &mut p0);
        let mut dec = ShardCodec::new();
        dec.decode(&p0).unwrap();
        // Same frame again: the full record's name is already defined.
        let err = dec.decode(&p0).unwrap_err();
        assert!(matches!(err, CodecError::Malformed(_)), "{err}");
    }

    #[test]
    fn removed_frame_breaks_the_chain() {
        let mut enc = ShardCodec::new();
        let records = vec![
            rec(0, 0, snap("chain.example", 0), None),
            rec(7, 0, snap("chain.example", 7), None),
            rec(14, 0, snap("chain.example", 14), None),
        ];
        let mut payloads = Vec::new();
        for r in &records {
            let mut b = Vec::new();
            enc.encode_into(r, &mut b);
            payloads.push(b);
        }
        // Drop the middle record: the day-14 delta now chains to day 0.
        let mut dec = ShardCodec::new();
        dec.decode(&payloads[0]).unwrap();
        let err = dec.decode(&payloads[2]).unwrap_err();
        assert!(
            err.to_string().contains("chain check"),
            "expected chain mismatch, got {err}"
        );
    }

    #[test]
    fn delta_without_predecessor_is_rejected() {
        let mut enc = ShardCodec::new();
        let mut p0 = Vec::new();
        enc.encode_into(&rec(0, 0, snap("first.example", 0), None), &mut p0);
        let mut p1 = Vec::new();
        enc.encode_into(&rec(7, 0, snap("first.example", 7), None), &mut p1);
        // Replay only the delta: its name id is out of range in a fresh
        // context.
        let mut dec = ShardCodec::new();
        let err = dec.decode(&p1).unwrap_err();
        assert!(matches!(err, CodecError::Malformed(_)), "{err}");
    }

    #[test]
    fn decode_never_panics_on_mutated_payloads() {
        let mut enc = ShardCodec::new();
        let mut payloads = Vec::new();
        for (i, r) in [
            rec(0, 0, serving("fuzz.example", 0), None),
            rec(7, 0, snap("fuzz.example", 7), None),
        ]
        .iter()
        .enumerate()
        {
            let mut b = Vec::new();
            enc.encode_into(r, &mut b);
            let _ = i;
            payloads.push(b);
        }
        // Flip every byte position in turn (and truncate at every length);
        // decode must return — Ok or Err — without panicking.
        for p in &payloads {
            for i in 0..p.len() {
                let mut dec = ShardCodec::new();
                let mut m = p.clone();
                m[i] ^= 0x5a;
                let _ = dec.decode(&m);
                let mut dec = ShardCodec::new();
                let _ = dec.decode(&p[..i]);
            }
        }
    }
}
