//! Retrospective signature pass (§3.2), run once at the horizon.
//!
//! Consumes the final [`RunState`]: registrar rule-out, signature derivation
//! and validation against the benign corpus, matching, correction-time
//! extraction, and the detection evaluation against ground truth. Produces
//! the assembled [`StudyResults`].

use super::RunState;
use crate::diff::{ChangeKind, ChangeRecord};
use crate::report::{AbuseRecord, DetectionEval, StudyResults};
use crate::signature::{derive_signatures, is_suspicious, match_all, validate_signatures};
use dns::Name;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The retrospective stage. Unlike the event-driven stages it runs exactly
/// once, consuming the run state.
pub struct RetroStage;

impl RetroStage {
    pub fn assemble(self, rs: RunState) -> StudyResults {
        let RunState {
            cfg,
            world,
            horizon,
            feed,
            monitored,
            monitored_by_service,
            monitored_monthly,
            store,
            changes,
            ip_lottery_declines,
            caa_blocked_certs,
            liveness,
            ..
        } = rs;

        // FQDN -> plan index (for service attribution).
        let fqdn_plan: HashMap<Name, usize> = world
            .population
            .plans
            .iter()
            .enumerate()
            .map(|(i, p)| (p.subdomain.clone(), i))
            .collect();

        // Registrar rule-out first (Figure 10's machinery): clusters of
        // identical changes confined to one registrar are registrar-driven
        // (parking rotations) and are excluded from signature derivation and
        // matching.
        let registrar_of = |sld: &Name| -> Option<u16> {
            world
                .population
                .orgs
                .iter()
                .find(|o| &o.apex == sld)
                .map(|o| o.registrar.0)
        };
        let suspicious_all: Vec<ChangeRecord> = changes
            .iter()
            .filter(|c| is_suspicious(c))
            .cloned()
            .collect();
        let change_clusters = {
            let _s = obs::span("retro.cluster", "retro").record_into("retro.cluster_ns");
            crate::benign::cluster_changes(&suspicious_all, registrar_of)
        };
        let registrar_driven_fqdns: HashSet<Name> = change_clusters
            .iter()
            .filter(|c| c.fqdns.len() >= 2 && c.registrar_driven())
            .flat_map(|c| c.fqdns.iter().cloned())
            .collect();
        let changes_ruled: Vec<ChangeRecord> = changes
            .iter()
            .filter(|c| !registrar_driven_fqdns.contains(&c.fqdn))
            .cloned()
            .collect();
        let sigs = {
            let _s = obs::span("retro.derive_signatures", "retro").record_into("retro.derive_ns");
            derive_signatures(&changes_ruled, cfg.min_signature_slds)
        };
        // Benign corpus: latest snapshots of monitored FQDNs that never
        // produced a suspicious change. `store.iter()` is canonical-order, so
        // the `take` below samples the same corpus on every run and thread
        // count.
        let suspicious_fqdns: HashSet<&Name> = changes
            .iter()
            .filter(|c| is_suspicious(c))
            .map(|c| &c.fqdn)
            .collect();
        let benign_corpus: Vec<&crate::snapshot::Snapshot> = store
            .iter()
            .filter(|s| !suspicious_fqdns.contains(&s.fqdn) && s.is_serving())
            .take(4000)
            .collect();
        let (signatures, signatures_discarded) = {
            let _s =
                obs::span("retro.validate_signatures", "retro").record_into("retro.validate_ns");
            validate_signatures(sigs, &benign_corpus)
        };
        obs::gauge("retro.signatures").set(signatures.len() as f64);
        obs::gauge("retro.signatures_discarded").set(signatures_discarded as f64);
        obs::gauge("retro.clusters").set(change_clusters.len() as f64);

        // Match every suspicious change's after-snapshot.
        let _match_span = obs::span("retro.match_all", "retro").record_into("retro.match_ns");
        let mut abuse_map: BTreeMap<Name, AbuseRecord> = BTreeMap::new();
        for rec in changes_ruled.iter().filter(|c| is_suspicious(c)) {
            let matched = match_all(&signatures, &rec.after);
            if matched.is_empty() {
                continue;
            }
            let kinds: Vec<_> = matched.iter().map(|s| s.kind()).collect();
            let entry = abuse_map.entry(rec.fqdn.clone()).or_insert_with(|| {
                let sld = rec.fqdn.sld().unwrap_or_else(|| rec.fqdn.clone());
                let org = world
                    .population
                    .orgs
                    .iter()
                    .find(|o| o.apex == sld)
                    .map(|o| o.id);
                let service = fqdn_plan
                    .get(&rec.fqdn)
                    .map(|&i| world.population.plans[i].service);
                let topic = crate::classify::classify_topic(&rec.after);
                let techniques = crate::classify::detect_techniques(&rec.after);
                AbuseRecord {
                    fqdn: rec.fqdn.clone(),
                    sld,
                    org,
                    first_seen: rec.day,
                    corrected_at: None,
                    signature_kinds: Vec::new(),
                    topic,
                    techniques,
                    language: rec.after.language.clone(),
                    cname_target: rec.after.cname_target.clone(),
                    service,
                    sitemap_bytes: rec.after.sitemap_bytes,
                    page_count_est: rec
                        .after
                        .sitemap_bytes
                        .map(|b| b.saturating_sub(120) / 80)
                        .unwrap_or(0),
                    identifiers: rec.after.identifiers.clone(),
                    meta_keywords: rec.after.meta_keywords.clone(),
                    keywords: rec.after.keywords.clone(),
                    generator: rec.after.generator.clone(),
                    html: rec.after.html.clone(),
                }
            });
            for k in kinds {
                if !entry.signature_kinds.contains(&k) {
                    entry.signature_kinds.push(k);
                }
            }
        }
        drop(_match_span);
        // Correction times: the first unreachability/DNS-removal change after
        // first_seen.
        for rec in &changes {
            if !rec
                .kinds
                .iter()
                .any(|k| matches!(k, ChangeKind::BecameUnreachable | ChangeKind::Dns))
            {
                continue;
            }
            if let Some(a) = abuse_map.get_mut(&rec.fqdn) {
                if rec.day > a.first_seen && a.corrected_at.map(|c| rec.day < c).unwrap_or(true) {
                    a.corrected_at = Some(rec.day);
                }
            }
        }
        let abuse: Vec<AbuseRecord> = abuse_map.into_values().collect();

        // Detection evaluation against ground truth.
        let truth_fqdns: HashSet<&Name> = world.truth.iter().map(|t| &t.victim_fqdn).collect();
        let detected_fqdns: HashSet<&Name> = abuse.iter().map(|a| &a.fqdn).collect();
        let tp = detected_fqdns.intersection(&truth_fqdns).count();
        let detection = DetectionEval {
            true_positives: tp,
            false_positives: detected_fqdns.len() - tp,
            false_negatives: truth_fqdns.len() - tp,
        };

        StudyResults {
            scale: cfg.world.scale,
            horizon,
            monitored_monthly: monitored_monthly.dense(),
            feed_size: feed.len(),
            monitored_total: monitored.len(),
            monitored_by_service,
            abuse,
            signatures,
            signatures_discarded,
            change_clusters,
            changes_total: changes.len(),
            world,
            detection,
            ip_lottery_declines,
            caa_blocked_certs,
            changes,
            liveness,
        }
    }
}
