//! Retrospective signature pass (§3.2), run once at the horizon.
//!
//! Consumes the final [`RunState`]: registrar rule-out, signature derivation
//! and validation against the benign corpus, matching, correction-time
//! extraction, and the detection evaluation against ground truth. Produces
//! the assembled [`StudyResults`].
//!
//! ## Determinism under parallelism
//!
//! The pass is shard-parallel under the same contract as the crawl
//! (`--threads` drives both): benign clustering, signature validation and
//! signature matching are fanned out through [`ShardedExecutor`], with work
//! bucketed by the pipeline's fixed FQDN hash
//! ([`crate::snapshot::fqdn_shard`]) and outputs merged back in canonical
//! input order before any ordered state (the abuse map, the kept-signature
//! list) is built. Signature *derivation* stays serial: its greedy grouping
//! is order-defined, and it already canonicalizes its own input order by
//! sorting suspicious records by `(day, fqdn)`. `StudyResults` is therefore
//! byte-identical for any thread count — locked in by the
//! `retro_parallel_equivalence` differential suite.
//!
//! ## One assembly tail, two front halves
//!
//! Everything downstream of "which suspicious changes matched which
//! signatures" — the abuse map, correction times, the detection eval, the
//! `StudyResults` literal — lives in [`assemble_results`], shared verbatim
//! with the streaming counterpart ([`super::IncrementalRetro`]). The two
//! modes can only diverge in how they *arrive* at the matched set, which is
//! exactly what the `incremental_equivalence` differential suite pins.

use super::{RunState, ShardedExecutor};
use crate::classify::Topic;
use crate::diff::{ChangeKind, ChangeRecord};
use crate::report::{AbuseRecord, DetectionEval, StudyResults};
use crate::signature::{
    derive_signatures, is_suspicious, match_all, validate_signatures_sharded, Signature,
    SignatureKind,
};
use crate::snapshot::fqdn_shard;
use contentgen::abuse::SeoTechnique;
use dns::Name;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the matching phase computed for one suspicious change: the matching
/// signature kinds plus the content classification of the after-snapshot
/// (the expensive per-record work, all read-only).
pub(crate) struct MatchOutcome {
    pub(crate) kinds: Vec<SignatureKind>,
    pub(crate) topic: Topic,
    pub(crate) techniques: Vec<SeoTechnique>,
}

/// Shared tail of the batch and incremental retro passes: fold the matched
/// changes into the abuse map, extract correction times, evaluate against
/// ground truth, and assemble [`StudyResults`].
///
/// `matched` must hold only records with a non-empty match, ordered by the
/// records' position in `rs.changes` — the abuse map's first-writer fields
/// (`first_seen`, the snapshot columns) and the append order of
/// `signature_kinds` both depend on it. Batch mode produces that order by
/// construction (it matches a filtered scan of `rs.changes`); the
/// incremental pass sorts its cache hits back into it.
pub(crate) fn assemble_results(
    rs: RunState,
    change_clusters: Vec<crate::benign::ChangeCluster>,
    signatures: Vec<Signature>,
    signatures_discarded: usize,
    matched: Vec<(ChangeRecord, MatchOutcome)>,
) -> StudyResults {
    let RunState {
        cfg,
        world,
        horizon,
        feed,
        monitored,
        monitored_by_service,
        monitored_monthly,
        changes,
        ip_lottery_declines,
        caa_blocked_certs,
        liveness,
        round_latency,
        ..
    } = rs;

    // FQDN -> plan index (for service attribution). Lookup-only: its
    // iteration order never escapes.
    let fqdn_plan: HashMap<Name, usize> = world
        .population
        .plans
        .iter()
        .enumerate()
        .map(|(i, p)| (p.subdomain.clone(), i))
        .collect();

    let mut abuse_map: BTreeMap<Name, AbuseRecord> = BTreeMap::new();
    for (rec, outcome) in matched {
        let entry = abuse_map.entry(rec.fqdn.clone()).or_insert_with(|| {
            let sld = rec.fqdn.sld().unwrap_or_else(|| rec.fqdn.clone());
            let org = world
                .population
                .orgs
                .iter()
                .find(|o| o.apex == sld)
                .map(|o| o.id);
            let service = fqdn_plan
                .get(&rec.fqdn)
                .map(|&i| world.population.plans[i].service);
            AbuseRecord {
                fqdn: rec.fqdn.clone(),
                sld,
                org,
                first_seen: rec.day,
                corrected_at: None,
                signature_kinds: Vec::new(),
                topic: outcome.topic,
                techniques: outcome.techniques,
                language: rec.after.language.clone(),
                cname_target: rec.after.cname_target.clone(),
                service,
                sitemap_bytes: rec.after.sitemap_bytes,
                page_count_est: rec
                    .after
                    .sitemap_bytes
                    .map(|b| b.saturating_sub(120) / 80)
                    .unwrap_or(0),
                identifiers: rec.after.identifiers.clone(),
                meta_keywords: rec.after.meta_keywords.clone(),
                keywords: rec.after.keywords.clone(),
                generator: rec.after.generator.clone(),
                html: rec.after.html.clone(),
            }
        });
        for k in outcome.kinds {
            if !entry.signature_kinds.contains(&k) {
                entry.signature_kinds.push(k);
            }
        }
    }
    // Correction times: the first unreachability/DNS-removal change after
    // first_seen.
    for rec in &changes {
        if !rec
            .kinds
            .iter()
            .any(|k| matches!(k, ChangeKind::BecameUnreachable | ChangeKind::Dns))
        {
            continue;
        }
        if let Some(a) = abuse_map.get_mut(&rec.fqdn) {
            if rec.day > a.first_seen && a.corrected_at.map(|c| rec.day < c).unwrap_or(true) {
                a.corrected_at = Some(rec.day);
            }
        }
    }
    let abuse: Vec<AbuseRecord> = abuse_map.into_values().collect();

    // Detection evaluation against ground truth. Sorted sets: only
    // intersection/size arithmetic escapes, but see the hazard note on
    // `registrar_driven_fqdns`.
    let truth_fqdns: BTreeSet<&Name> = world.truth.iter().map(|t| &t.victim_fqdn).collect();
    let detected_fqdns: BTreeSet<&Name> = abuse.iter().map(|a| &a.fqdn).collect();
    let tp = detected_fqdns.intersection(&truth_fqdns).count();
    let detection = DetectionEval {
        true_positives: tp,
        false_positives: detected_fqdns.len() - tp,
        false_negatives: truth_fqdns.len() - tp,
    };

    StudyResults {
        scale: cfg.world.scale,
        horizon,
        monitored_monthly: monitored_monthly.dense(),
        feed_size: feed.len(),
        monitored_total: monitored.len(),
        monitored_by_service,
        abuse,
        signatures,
        signatures_discarded,
        change_clusters,
        changes_total: changes.len(),
        world,
        detection,
        ip_lottery_declines,
        caa_blocked_certs,
        changes,
        liveness,
        resolution_latency: round_latency,
    }
}

/// The retrospective stage. Unlike the event-driven stages it runs exactly
/// once, consuming the run state.
pub struct RetroStage {
    threads: usize,
}

impl RetroStage {
    pub fn new(threads: usize) -> Self {
        RetroStage {
            threads: threads.max(1),
        }
    }

    pub fn assemble(self, rs: RunState) -> StudyResults {
        // Registrar rule-out first (Figure 10's machinery): clusters of
        // identical changes confined to one registrar are registrar-driven
        // (parking rotations) and are excluded from signature derivation and
        // matching.
        let registrar_of = |sld: &Name| -> Option<u16> {
            rs.world
                .population
                .orgs
                .iter()
                .find(|o| &o.apex == sld)
                .map(|o| o.registrar.0)
        };
        let suspicious_all: Vec<ChangeRecord> = rs
            .changes
            .iter()
            .filter(|c| is_suspicious(c))
            .cloned()
            .collect();
        let change_clusters = {
            let _s = obs::span("retro.cluster", "retro").record_into("retro.cluster_ns");
            let exec =
                ShardedExecutor::new(self.threads, crate::exec_metric_names!("retro.cluster"));
            crate::benign::cluster_changes_sharded(&suspicious_all, registrar_of, &exec)
        };
        // BTreeSet, not HashSet: only membership is consulted today, but a
        // sorted set keeps any future iteration from leaking hash order into
        // ordered output.
        let registrar_driven_fqdns: BTreeSet<Name> = change_clusters
            .iter()
            .filter(|c| c.fqdns.len() >= 2 && c.registrar_driven())
            .flat_map(|c| c.fqdns.iter().cloned())
            .collect();
        let changes_ruled: Vec<ChangeRecord> = rs
            .changes
            .iter()
            .filter(|c| !registrar_driven_fqdns.contains(&c.fqdn))
            .cloned()
            .collect();
        let sigs = {
            let _s = obs::span("retro.derive_signatures", "retro").record_into("retro.derive_ns");
            derive_signatures(&changes_ruled, rs.cfg.min_signature_slds)
        };
        // Benign corpus: latest snapshots of monitored FQDNs that never
        // produced a suspicious change. `store.iter()` is canonical-order, so
        // the `take` below samples the same corpus on every run and thread
        // count.
        let suspicious_fqdns: BTreeSet<&Name> = rs
            .changes
            .iter()
            .filter(|c| is_suspicious(c))
            .map(|c| &c.fqdn)
            .collect();
        let benign_corpus: Vec<&crate::snapshot::Snapshot> = rs
            .store
            .iter()
            .filter(|s| !suspicious_fqdns.contains(&s.fqdn) && s.is_serving())
            .take(4000)
            .collect();
        let (signatures, signatures_discarded) = {
            let _s =
                obs::span("retro.validate_signatures", "retro").record_into("retro.validate_ns");
            let exec =
                ShardedExecutor::new(self.threads, crate::exec_metric_names!("retro.validate"));
            validate_signatures_sharded(sigs, &benign_corpus, &exec)
        };
        obs::gauge("retro.signatures").set(signatures.len() as f64);
        obs::gauge("retro.signatures_discarded").set(signatures_discarded as f64);
        obs::gauge("retro.clusters").set(change_clusters.len() as f64);

        // Match every suspicious change's after-snapshot, shard-parallel:
        // matching and content classification are pure per-record reads, so
        // they fan out bucketed by the crawl's FQDN hash; the outcomes come
        // back in input order and the abuse map is then built serially — the
        // same canonical merge the diff stage applies to crawl outcomes.
        let matched = {
            let _match_span = obs::span("retro.match_all", "retro").record_into("retro.match_ns");
            let suspicious_ruled: Vec<&ChangeRecord> =
                changes_ruled.iter().filter(|c| is_suspicious(c)).collect();
            let match_exec =
                ShardedExecutor::new(self.threads, crate::exec_metric_names!("retro.match"));
            let shards = rs.store.shard_count();
            let outcomes: Vec<Option<MatchOutcome>> = match_exec.map(
                &suspicious_ruled,
                shards,
                |rec| fqdn_shard(&rec.fqdn, shards),
                || (),
                |_, _, rec| {
                    let matched = match_all(&signatures, &rec.after);
                    if matched.is_empty() {
                        return None;
                    }
                    Some(MatchOutcome {
                        kinds: matched.iter().map(|s| s.kind()).collect(),
                        topic: crate::classify::classify_topic(&rec.after),
                        techniques: crate::classify::detect_techniques(&rec.after),
                    })
                },
            );
            // `suspicious_ruled` scans `changes_ruled`, which scans
            // `rs.changes`: filtering preserves order, so zipping restores
            // the canonical matched order `assemble_results` requires.
            suspicious_ruled
                .into_iter()
                .zip(outcomes)
                .filter_map(|(rec, outcome)| outcome.map(|o| (rec.clone(), o)))
                .collect()
        };
        assemble_results(
            rs,
            change_clusters,
            signatures,
            signatures_discarded,
            matched,
        )
    }
}
