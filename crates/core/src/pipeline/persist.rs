//! Persistence stage: append-only observation logging and checkpoint/resume.
//!
//! Sits after the crawl and before the diff in the weekly pipeline. During a
//! live round it serializes every [`CrawlOutcome`] into the state
//! directory's [`storelog`] (one segment per [`SnapshotStore`] shard, same
//! partition as the parallel crawl), then seals the round with a fsynced
//! commit carrying a [`Checkpoint`]. A crash at any point loses at most the
//! round in flight.
//!
//! ## Resume = deterministic replay
//!
//! The simulation is fully deterministic from its seed: world events,
//! attacker campaigns and certificate history replay for free. The only
//! expensive stage is the weekly crawl — so a resumed run re-executes the
//! world from t=0 but **substitutes the logged crawl outcomes** for every
//! round up to the recovered frontier, skipping the crawl entirely. Past the
//! frontier it crawls and records again as if never interrupted. The final
//! [`crate::report::StudyResults`] is therefore byte-identical to an
//! uninterrupted run, at any thread count (`resume_equivalence` enforces
//! this).
//!
//! Replay is validated, not trusted: every checkpoint records aggregate
//! counters and a digest of the world stage's RNG stream positions
//! ([`RunState::rng_witness`]); at the frontier the resumed run must
//! reproduce all of them exactly or resume aborts with
//! [`PersistError::Diverged`].
//!
//! Because replayed rounds flow through the diff stage like live ones, they
//! also feed the streaming retro pass when `--incremental` is on: recorded
//! segments stream straight into signature derivation without re-running
//! the crawl (the `incremental_equivalence` suite asserts the crawl stage
//! stays idle during a full-history replay).
//!
//! ## Compaction
//!
//! Unchanged-snapshot records only matter until a newer observation of the
//! same FQDN is durable; [`compact_state_dir`] drops the superseded ones
//! (change records are always kept). Replay tolerates the thinned history
//! because nothing downstream reads intermediate store states during
//! replayed rounds: the change log replays from the kept change records and
//! the final store state from the kept last-per-FQDN records.

use super::{CrawlOutcome, RunState};
use crate::diff::{ChangeKind, ChangeRecord};
use crate::scenario::ScenarioConfig;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use storelog::{CompactStats, LogReader, LogWriter, Retention};

/// Version of the JSON record/checkpoint payloads inside the storelog
/// frames. Bump together with [`storelog::FORMAT_VERSION`] discipline: a
/// migration note in `crates/storelog/MIGRATIONS.md`.
pub const OBS_FORMAT: u32 = 1;

/// One logged observation: what one crawl task produced in one round.
///
/// `seq` is the FQDN's index in the canonical monitored order of its round,
/// so replay can reassemble the batch in exactly the order the diff stage
/// consumed it, even after compaction thins the round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsRecord {
    pub round: SimTime,
    pub seq: u32,
    pub snap: Snapshot,
    pub change: Option<ChangeMeta>,
}

/// The `before` half of a [`ChangeRecord`]. The `after` half is the record's
/// own snapshot (the crawl always diffs against the previous snapshot and
/// stores the new one), so it is not duplicated on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeMeta {
    pub kinds: Vec<ChangeKind>,
    pub before_language: Option<String>,
    pub before_sitemap_bytes: Option<u64>,
    pub before_serving: bool,
    pub before_keywords: Vec<String>,
}

impl ChangeMeta {
    fn from_record(rec: &ChangeRecord) -> Self {
        ChangeMeta {
            kinds: rec.kinds.clone(),
            before_language: rec.before_language.clone(),
            before_sitemap_bytes: rec.before_sitemap_bytes,
            before_serving: rec.before_serving,
            before_keywords: rec.before_keywords.clone(),
        }
    }

    fn into_record(self, snap: &Snapshot) -> ChangeRecord {
        ChangeRecord {
            fqdn: snap.fqdn.clone(),
            day: snap.day,
            kinds: self.kinds,
            before_language: self.before_language,
            before_sitemap_bytes: self.before_sitemap_bytes,
            before_serving: self.before_serving,
            before_keywords: self.before_keywords,
            after: snap.clone(),
        }
    }
}

/// The application payload of every storelog commit: enough aggregate state
/// to prove a replayed run reproduced the original, and the frontier a
/// resume continues from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    pub format: u32,
    /// The round this commit sealed.
    pub round: SimTime,
    pub rounds_done: u64,
    pub monitored_total: u64,
    pub store_len: u64,
    pub changes_total: u64,
    pub ip_lottery_declines: u64,
    pub caa_blocked_certs: u64,
    pub liveness_len: u64,
    /// [`super::WorldStage::rng_cursor_digest`] at the round boundary.
    pub rng_witness: u64,
}

impl Checkpoint {
    fn capture(rs: &RunState, now: SimTime, rounds_done: u64) -> Self {
        Checkpoint {
            format: OBS_FORMAT,
            round: now,
            rounds_done,
            monitored_total: rs.monitored.len() as u64,
            store_len: rs.store.len() as u64,
            changes_total: rs.changes.len() as u64,
            ip_lottery_declines: rs.ip_lottery_declines,
            caa_blocked_certs: rs.caa_blocked_certs,
            liveness_len: rs.liveness.len() as u64,
            rng_witness: rs.rng_witness,
        }
    }
}

/// How to open a state directory.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    pub state_dir: PathBuf,
    /// Continue a recorded run (refused if the recorded config differs).
    /// Without this flag an already-populated state dir is refused instead
    /// of clobbered.
    pub resume: bool,
    /// Stop the simulation after this many monitoring rounds — the
    /// kill-at-a-round-boundary knob the resume tests (and incremental
    /// long-run operation) are built on.
    pub max_rounds: Option<u64>,
}

impl PersistOptions {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            state_dir: state_dir.into(),
            resume: false,
            max_rounds: None,
        }
    }
}

/// Everything that can go wrong persisting or resuming a run.
#[derive(Debug)]
pub enum PersistError {
    Store(storelog::Error),
    Json(String),
    /// The state dir records a different [`ScenarioConfig`] than the one the
    /// caller is running with (crawl thread count excluded — it cannot
    /// affect results).
    ConfigMismatch {
        state_dir: PathBuf,
    },
    /// The state dir exists and `resume` was not requested.
    AlreadyExists(PathBuf),
    /// Replay failed to reproduce the recorded checkpoint — the log is
    /// corrupt or was produced by an incompatible build.
    Diverged(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "{e}"),
            PersistError::Json(m) => write!(f, "persist serialization error: {m}"),
            PersistError::ConfigMismatch { state_dir } => write!(
                f,
                "state dir {} was recorded with a different scenario config; \
                 resume refused (results would silently diverge)",
                state_dir.display()
            ),
            PersistError::AlreadyExists(p) => write!(
                f,
                "state dir {} already contains a recorded run; pass --resume \
                 to continue it or remove the directory",
                p.display()
            ),
            PersistError::Diverged(m) => {
                write!(f, "resume replay diverged from recorded checkpoint: {m}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<storelog::Error> for PersistError {
    fn from(e: storelog::Error) -> Self {
        PersistError::Store(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e.0)
    }
}

/// The recorded history a resuming run replays instead of crawling.
struct ReplayData {
    /// Last committed round; rounds ≤ this replay from the log.
    frontier: SimTime,
    /// Observations grouped by round, each group in `seq` order.
    rounds: BTreeMap<i32, Vec<ObsRecord>>,
    /// The checkpoint replay must reproduce at the frontier.
    checkpoint: Checkpoint,
}

/// The persistence stage (see module docs). Only instantiated when a state
/// dir is configured; the plain in-memory pipeline never pays for it.
pub struct PersistStage {
    writer: LogWriter,
    replay: Option<ReplayData>,
    rounds_done: u64,
    max_rounds: Option<u64>,
}

/// The serialized config a state dir is stamped with. The crawl thread
/// count is zeroed first: by the pipeline's determinism contract it cannot
/// change results, so recording at 8 threads and resuming at 1 is legal —
/// while a differing `crawl_failure_rate` or seed genuinely forks history
/// and must be refused.
fn config_fingerprint(cfg: &ScenarioConfig) -> Result<Vec<u8>, PersistError> {
    let mut canon = cfg.clone();
    canon.crawl_threads = 0;
    Ok(serde_json::to_vec(&canon)?)
}

impl PersistStage {
    /// Open or create the state directory. With `opts.resume` and existing
    /// state, loads the recorded history for replay; a fresh or empty dir
    /// starts a new recording either way.
    pub fn open(
        opts: &PersistOptions,
        cfg: &ScenarioConfig,
        shards: usize,
    ) -> Result<Self, PersistError> {
        let fingerprint = config_fingerprint(cfg)?;
        let dir = &opts.state_dir;

        let existing = match LogReader::open(dir) {
            Ok(reader) => Some(reader),
            Err(storelog::Error::NoState(_)) => None,
            Err(e) => return Err(e.into()),
        };

        let replay = match existing {
            None => {
                std::fs::create_dir_all(dir).map_err(storelog::Error::Io)?;
                let writer = LogWriter::create(dir, shards, &fingerprint)?;
                return Ok(PersistStage {
                    writer,
                    replay: None,
                    rounds_done: 0,
                    max_rounds: opts.max_rounds,
                });
            }
            Some(reader) => {
                if !opts.resume {
                    return Err(PersistError::AlreadyExists(dir.clone()));
                }
                if reader.config() != fingerprint.as_slice() {
                    return Err(PersistError::ConfigMismatch {
                        state_dir: dir.clone(),
                    });
                }
                if reader.shard_count() != shards {
                    return Err(PersistError::Diverged(format!(
                        "state dir has {} shards, store has {shards}",
                        reader.shard_count()
                    )));
                }
                Self::load_replay(&reader)?
            }
        };

        if let Some(rep) = &replay {
            obs::info!(
                "resuming {}: replaying {} recorded round(s) up to day {}",
                dir.display(),
                rep.rounds.len(),
                rep.frontier.0
            );
        }
        let writer = LogWriter::open_append(dir)?;
        Ok(PersistStage {
            writer,
            replay,
            rounds_done: 0,
            max_rounds: opts.max_rounds,
        })
    }

    fn load_replay(reader: &LogReader) -> Result<Option<ReplayData>, PersistError> {
        let Some(commit) = reader.last_commit() else {
            // Created but never committed a round: nothing to replay.
            return Ok(None);
        };
        let checkpoint: Checkpoint = serde_json::from_slice(&commit.app)?;
        if checkpoint.format != OBS_FORMAT {
            return Err(PersistError::Diverged(format!(
                "recorded payload format v{}, this build writes v{OBS_FORMAT}",
                checkpoint.format
            )));
        }
        let mut rounds: BTreeMap<i32, Vec<ObsRecord>> = BTreeMap::new();
        for shard in 0..reader.shard_count() {
            // Zero-copy walk: payloads are decoded straight out of the
            // segment bytes, no per-record buffer.
            let stream = reader.stream_shard(shard)?;
            for payload in stream.iter() {
                let rec: ObsRecord = serde_json::from_slice(payload)?;
                rounds.entry(rec.round.0).or_default().push(rec);
            }
        }
        for group in rounds.values_mut() {
            group.sort_unstable_by_key(|r| r.seq);
        }
        Ok(Some(ReplayData {
            frontier: checkpoint.round,
            rounds,
            checkpoint,
        }))
    }

    /// If `now` is inside the recorded history, install the logged outcomes
    /// as this round's crawl batch and return `true` — the caller skips the
    /// crawl. Returns `false` past the frontier (or when not resuming).
    pub fn replay_round(&mut self, rs: &mut RunState, now: SimTime) -> Result<bool, PersistError> {
        let Some(rep) = &mut self.replay else {
            return Ok(false);
        };
        if now > rep.frontier {
            return Ok(false);
        }
        // Compaction may have thinned the round (superseded no-change
        // records); whatever remains replays in original order and rebuilds
        // the change log exactly and the store eventually.
        let records = rep.rounds.remove(&now.0).unwrap_or_default();
        obs::counter("persist.rounds_replayed").inc();
        obs::counter("persist.records_replayed").add(records.len() as u64);
        if records.len() > rs.monitored.len() {
            return Err(PersistError::Diverged(format!(
                "round {} has {} records for {} monitored names",
                now.0,
                records.len(),
                rs.monitored.len()
            )));
        }
        rs.crawl_batch = records
            .into_iter()
            .map(|rec| {
                let change = rec.change.map(|m| m.into_record(&rec.snap));
                // Latency telemetry is out-of-band and not persisted; replayed
                // rounds carry zeroed timings.
                CrawlOutcome {
                    snap: rec.snap,
                    change,
                    sim_elapsed_ns: 0,
                    dns_elapsed_ns: 0,
                }
            })
            .collect();
        Ok(true)
    }

    /// Buffer this round's crawl outcomes into the log (in memory until
    /// [`Self::finish_round`] makes them durable). Runs on live rounds only,
    /// before the diff stage drains the batch.
    pub fn record_round(&mut self, rs: &RunState, now: SimTime) -> Result<(), PersistError> {
        for (i, out) in rs.crawl_batch.iter().enumerate() {
            let rec = ObsRecord {
                round: now,
                seq: i as u32,
                snap: out.snap.clone(),
                change: out.change.as_ref().map(ChangeMeta::from_record),
            };
            let payload = serde_json::to_vec(&rec)?;
            self.writer
                .append(rs.store.shard_of(&out.snap.fqdn), &payload);
        }
        obs::counter("persist.records").add(rs.crawl_batch.len() as u64);
        Ok(())
    }

    /// Seal the round. On a live round: fsync the buffered records and
    /// commit a [`Checkpoint`]. On a replayed round: count it, and at the
    /// frontier validate the rebuilt state against the recorded checkpoint
    /// before going live.
    pub fn finish_round(&mut self, rs: &RunState, now: SimTime) -> Result<(), PersistError> {
        self.rounds_done += 1;
        if let Some(rep) = &self.replay {
            match now.cmp(&rep.frontier) {
                std::cmp::Ordering::Less => return Ok(()),
                std::cmp::Ordering::Equal => {
                    // At the frontier: prove the replay landed exactly where
                    // the original run stood before accepting live appends.
                    let rebuilt = Checkpoint::capture(rs, now, self.rounds_done);
                    if rebuilt != rep.checkpoint {
                        return Err(PersistError::Diverged(format!(
                            "at round {}: rebuilt {rebuilt:?} != recorded {:?}",
                            now.0, rep.checkpoint
                        )));
                    }
                    self.replay = None;
                    return Ok(());
                }
                std::cmp::Ordering::Greater => {
                    return Err(PersistError::Diverged(format!(
                        "round {} passed the recorded frontier {} without \
                         reaching it (monitoring cadence mismatch?)",
                        now.0, rep.frontier.0
                    )))
                }
            }
        }
        let cp = Checkpoint::capture(rs, now, self.rounds_done);
        self.writer.commit(&serde_json::to_vec(&cp)?)?;
        Ok(())
    }

    /// Has the configured round budget been exhausted?
    pub fn should_stop(&self) -> bool {
        self.max_rounds.is_some_and(|m| self.rounds_done >= m)
    }

    /// Rounds completed (replayed + live) so far.
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }
}

/// Compact a state directory: drop every unchanged-snapshot record that a
/// newer observation of the same FQDN supersedes. Change records are always
/// kept. Safe at any point between runs; resume works identically on the
/// compacted log.
pub fn compact_state_dir(dir: &Path) -> Result<CompactStats, PersistError> {
    let stats = storelog::compact(dir, |payload| {
        match serde_json::from_slice::<ObsRecord>(payload) {
            // A change record is study signal — never dropped.
            Ok(rec) if rec.change.is_none() => Retention::Supersede(rec.snap.fqdn.to_string()),
            // Unparseable records are kept, not silently destroyed.
            _ => Retention::Keep,
        }
    })?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::Rcode;

    fn snap(fqdn: &str, day: i32) -> Snapshot {
        let mut s =
            Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(day), Rcode::NoError, None);
        s.http_status = Some(200);
        s.index_hash = 7;
        s.title = Some("Titre — déjà vu".into());
        s
    }

    #[test]
    fn obs_record_roundtrips_through_json() {
        let rec = ObsRecord {
            round: SimTime(35),
            seq: 3,
            snap: snap("a.b.com", 35),
            change: Some(ChangeMeta {
                kinds: vec![ChangeKind::Content, ChangeKind::Language],
                before_language: Some("en".into()),
                before_sitemap_bytes: None,
                before_serving: true,
                before_keywords: vec!["slot".into()],
            }),
        };
        let bytes = serde_json::to_vec(&rec).unwrap();
        let back: ObsRecord = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.round, rec.round);
        assert_eq!(back.seq, rec.seq);
        assert_eq!(back.snap, rec.snap);
        let m = back.change.unwrap();
        assert_eq!(m.kinds, vec![ChangeKind::Content, ChangeKind::Language]);
        assert_eq!(m.before_keywords, vec!["slot".to_string()]);
    }

    #[test]
    fn change_meta_rebuilds_the_original_record() {
        let after = snap("x.y.com", 42);
        let original = ChangeRecord {
            fqdn: after.fqdn.clone(),
            day: after.day,
            kinds: vec![ChangeKind::BecameReachable],
            before_language: None,
            before_sitemap_bytes: Some(10),
            before_serving: false,
            before_keywords: vec![],
            after: after.clone(),
        };
        let rebuilt = ChangeMeta::from_record(&original).into_record(&after);
        assert_eq!(rebuilt.fqdn, original.fqdn);
        assert_eq!(rebuilt.day, original.day);
        assert_eq!(rebuilt.kinds, original.kinds);
        assert_eq!(rebuilt.before_sitemap_bytes, original.before_sitemap_bytes);
        assert_eq!(rebuilt.after, original.after);
    }

    #[test]
    fn fingerprint_ignores_thread_count_only() {
        let mut a = ScenarioConfig::at_scale(800);
        let mut b = a.clone();
        a.crawl_threads = 1;
        b.crawl_threads = 8;
        assert_eq!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&b).unwrap()
        );
        b.crawl_failure_rate = 0.5;
        assert_ne!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&b).unwrap()
        );
        let mut c = a.clone();
        c.seed = a.seed + 1;
        assert_ne!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&c).unwrap()
        );
    }

    #[test]
    fn checkpoint_roundtrips() {
        let cp = Checkpoint {
            format: OBS_FORMAT,
            round: SimTime(1834),
            rounds_done: 52,
            monitored_total: 993,
            store_len: 991,
            changes_total: 120,
            ip_lottery_declines: 4,
            caa_blocked_certs: 1,
            liveness_len: 9,
            rng_witness: 0xdead_beef_cafe_f00d,
        };
        let bytes = serde_json::to_vec(&cp).unwrap();
        let back: Checkpoint = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, cp);
    }
}
