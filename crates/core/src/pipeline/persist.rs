//! Persistence stage: append-only observation logging and checkpoint/resume.
//!
//! Sits after the crawl and before the diff in the weekly pipeline. During a
//! live round it serializes every [`CrawlOutcome`] into the state
//! directory's [`storelog`] (one segment per [`SnapshotStore`] shard, same
//! partition as the parallel crawl), then seals the round with a fsynced
//! commit carrying a [`Checkpoint`]. A crash at any point loses at most the
//! round in flight.
//!
//! ## Resume = deterministic replay
//!
//! The simulation is fully deterministic from its seed: world events,
//! attacker campaigns and certificate history replay for free. The only
//! expensive stage is the weekly crawl — so a resumed run re-executes the
//! world from t=0 but **substitutes the logged crawl outcomes** for every
//! round up to the recovered frontier, skipping the crawl entirely. Past the
//! frontier it crawls and records again as if never interrupted. The final
//! [`crate::report::StudyResults`] is therefore byte-identical to an
//! uninterrupted run, at any thread count (`resume_equivalence` enforces
//! this).
//!
//! Replay is validated, not trusted: every checkpoint records aggregate
//! counters and a digest of the world stage's RNG stream positions
//! ([`RunState::rng_witness`]); at the frontier the resumed run must
//! reproduce all of them exactly or resume aborts with
//! [`PersistError::Diverged`].
//!
//! Because replayed rounds flow through the diff stage like live ones, they
//! also feed the streaming retro pass when `--incremental` is on: recorded
//! segments stream straight into signature derivation without re-running
//! the crawl (the `incremental_equivalence` suite asserts the crawl stage
//! stays idle during a full-history replay).
//!
//! ## Compaction
//!
//! Unchanged-snapshot records only matter until a newer observation of the
//! same FQDN is durable; [`compact_state_dir`] drops the superseded ones
//! (change records are always kept). Replay tolerates the thinned history
//! because nothing downstream reads intermediate store states during
//! replayed rounds: the change log replays from the kept change records and
//! the final store state from the kept last-per-FQDN records.

use super::obs_codec::ShardCodec;
use super::{CrawlOutcome, RunState, ShardedExecutor};
use crate::diff::{ChangeKind, ChangeRecord};
use crate::scenario::ScenarioConfig;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use storelog::{CompactStats, LogReader, LogWriter, Retention};

/// Version of the record/checkpoint payloads inside the storelog frames,
/// tracking [`storelog::FORMAT_VERSION`]: v1 = JSON `ObsRecord`s, v2 =
/// binary interned/delta records ([`super::obs_codec`]). Checkpoints are
/// JSON in both. Bump only with a migration note in
/// `crates/storelog/MIGRATIONS.md`. This build reads both and writes v2 by
/// default ([`PersistOptions::format`] selects).
pub const OBS_FORMAT: u32 = storelog::FORMAT_VERSION;

/// One logged observation: what one crawl task produced in one round.
///
/// `seq` is the FQDN's index in the canonical monitored order of its round,
/// so replay can reassemble the batch in exactly the order the diff stage
/// consumed it, even after compaction thins the round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsRecord {
    pub round: SimTime,
    pub seq: u32,
    pub snap: Snapshot,
    pub change: Option<ChangeMeta>,
}

/// The `before` half of a [`ChangeRecord`]. The `after` half is the record's
/// own snapshot (the crawl always diffs against the previous snapshot and
/// stores the new one), so it is not duplicated on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeMeta {
    pub kinds: Vec<ChangeKind>,
    pub before_language: Option<String>,
    pub before_sitemap_bytes: Option<u64>,
    pub before_serving: bool,
    pub before_keywords: Vec<String>,
}

impl ChangeMeta {
    fn from_record(rec: &ChangeRecord) -> Self {
        ChangeMeta {
            kinds: rec.kinds.clone(),
            before_language: rec.before_language.clone(),
            before_sitemap_bytes: rec.before_sitemap_bytes,
            before_serving: rec.before_serving,
            before_keywords: rec.before_keywords.clone(),
        }
    }

    fn into_record(self, snap: &Snapshot) -> ChangeRecord {
        ChangeRecord {
            fqdn: snap.fqdn.clone(),
            day: snap.day,
            kinds: self.kinds,
            before_language: self.before_language,
            before_sitemap_bytes: self.before_sitemap_bytes,
            before_serving: self.before_serving,
            before_keywords: self.before_keywords,
            after: snap.clone(),
        }
    }
}

/// The application payload of every storelog commit: enough aggregate state
/// to prove a replayed run reproduced the original, and the frontier a
/// resume continues from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    pub format: u32,
    /// The round this commit sealed.
    pub round: SimTime,
    pub rounds_done: u64,
    pub monitored_total: u64,
    pub store_len: u64,
    pub changes_total: u64,
    pub ip_lottery_declines: u64,
    pub caa_blocked_certs: u64,
    pub liveness_len: u64,
    /// [`super::WorldStage::rng_cursor_digest`] at the round boundary.
    pub rng_witness: u64,
}

impl Checkpoint {
    fn capture(rs: &RunState, now: SimTime, rounds_done: u64, format: u32) -> Self {
        Checkpoint {
            format,
            round: now,
            rounds_done,
            monitored_total: rs.monitored.len() as u64,
            store_len: rs.store.len() as u64,
            changes_total: rs.changes.len() as u64,
            ip_lottery_declines: rs.ip_lottery_declines,
            caa_blocked_certs: rs.caa_blocked_certs,
            liveness_len: rs.liveness.len() as u64,
            rng_witness: rs.rng_witness,
        }
    }
}

/// How to open a state directory.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    pub state_dir: PathBuf,
    /// Continue a recorded run (refused if the recorded config differs).
    /// Without this flag an already-populated state dir is refused instead
    /// of clobbered.
    pub resume: bool,
    /// Stop the simulation after this many monitoring rounds — the
    /// kill-at-a-round-boundary knob the resume tests (and incremental
    /// long-run operation) are built on.
    pub max_rounds: Option<u64>,
    /// Payload format for a **freshly created** state dir: `None` = the
    /// current default ([`OBS_FORMAT`]). Recording v1 from a v2-native
    /// build is how the differential format tests and the bench compare
    /// the codecs. Ignored on resume — an existing dir already knows its
    /// format.
    pub format: Option<u32>,
}

impl PersistOptions {
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            state_dir: state_dir.into(),
            resume: false,
            max_rounds: None,
            format: None,
        }
    }
}

/// Everything that can go wrong persisting or resuming a run.
#[derive(Debug)]
pub enum PersistError {
    Store(storelog::Error),
    Json(String),
    /// The state dir records a different [`ScenarioConfig`] than the one the
    /// caller is running with (crawl thread count excluded — it cannot
    /// affect results).
    ConfigMismatch {
        state_dir: PathBuf,
    },
    /// The state dir exists and `resume` was not requested.
    AlreadyExists(PathBuf),
    /// A committed record payload failed to decode — the segment was
    /// corrupted past what frame checksums can heal (e.g. a spliced but
    /// checksum-valid frame), or written by an incompatible build. Never
    /// silently tolerated: replay refuses the whole dir.
    Decode(String),
    /// Replay failed to reproduce the recorded checkpoint — the log is
    /// corrupt or was produced by an incompatible build.
    Diverged(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "{e}"),
            PersistError::Json(m) => write!(f, "persist serialization error: {m}"),
            PersistError::ConfigMismatch { state_dir } => write!(
                f,
                "state dir {} was recorded with a different scenario config; \
                 resume refused (results would silently diverge)",
                state_dir.display()
            ),
            PersistError::AlreadyExists(p) => write!(
                f,
                "state dir {} already contains a recorded run; pass --resume \
                 to continue it or remove the directory",
                p.display()
            ),
            PersistError::Decode(m) => {
                write!(f, "state dir payload decode error: {m}")
            }
            PersistError::Diverged(m) => {
                write!(f, "resume replay diverged from recorded checkpoint: {m}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<storelog::Error> for PersistError {
    fn from(e: storelog::Error) -> Self {
        PersistError::Store(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e.0)
    }
}

/// The recorded history a resuming run replays instead of crawling.
struct ReplayData {
    /// Last committed round; rounds ≤ this replay from the log.
    frontier: SimTime,
    /// Observations grouped by round, each group in `seq` order.
    rounds: BTreeMap<i32, Vec<ObsRecord>>,
    /// The checkpoint replay must reproduce at the frontier.
    checkpoint: Checkpoint,
}

/// The persistence stage (see module docs). Only instantiated when a state
/// dir is configured; the plain in-memory pipeline never pays for it.
pub struct PersistStage {
    writer: LogWriter,
    replay: Option<ReplayData>,
    rounds_done: u64,
    max_rounds: Option<u64>,
    /// The dir's payload format (1 = JSON, 2 = binary; see [`OBS_FORMAT`]).
    payload_format: u32,
    /// v2 only: one streaming codec context per shard. On resume these are
    /// the decoder states at the end of the committed history, so live
    /// appends continue the intern tables and delta chains exactly where
    /// the recording stopped. Empty for v1 dirs.
    codecs: Vec<ShardCodec>,
    /// Scratch encode buffer, reused across records.
    scratch: Vec<u8>,
}

fn fresh_codecs(format: u32, shards: usize) -> Vec<ShardCodec> {
    if format >= 2 {
        (0..shards).map(|_| ShardCodec::new()).collect()
    } else {
        Vec::new()
    }
}

/// The serialized config a state dir is stamped with. The crawl thread
/// count is zeroed first: by the pipeline's determinism contract it cannot
/// change results, so recording at 8 threads and resuming at 1 is legal —
/// while a differing `crawl_failure_rate` or seed genuinely forks history
/// and must be refused.
fn config_fingerprint(cfg: &ScenarioConfig) -> Result<Vec<u8>, PersistError> {
    let mut canon = cfg.clone();
    canon.crawl_threads = 0;
    Ok(serde_json::to_vec(&canon)?)
}

impl PersistStage {
    /// Open or create the state directory. With `opts.resume` and existing
    /// state, loads the recorded history for replay; a fresh or empty dir
    /// starts a new recording either way.
    pub fn open(
        opts: &PersistOptions,
        cfg: &ScenarioConfig,
        shards: usize,
    ) -> Result<Self, PersistError> {
        let fingerprint = config_fingerprint(cfg)?;
        let dir = &opts.state_dir;
        let threads = cfg.crawl_threads.max(1);

        let existing = match LogReader::open_with_threads(dir, threads) {
            Ok(reader) => Some(reader),
            Err(storelog::Error::NoState(_)) => None,
            Err(e) => return Err(e.into()),
        };

        let (replay, codecs) = match existing {
            None => {
                std::fs::create_dir_all(dir).map_err(storelog::Error::Io)?;
                let version = opts.format.unwrap_or(OBS_FORMAT);
                let writer = LogWriter::create_versioned(dir, shards, &fingerprint, version)?;
                return Ok(PersistStage {
                    writer,
                    replay: None,
                    rounds_done: 0,
                    max_rounds: opts.max_rounds,
                    payload_format: version,
                    codecs: fresh_codecs(version, shards),
                    scratch: Vec::new(),
                });
            }
            Some(reader) => {
                if !opts.resume {
                    return Err(PersistError::AlreadyExists(dir.clone()));
                }
                if reader.config() != fingerprint.as_slice() {
                    return Err(PersistError::ConfigMismatch {
                        state_dir: dir.clone(),
                    });
                }
                if reader.shard_count() != shards {
                    return Err(PersistError::Diverged(format!(
                        "state dir has {} shards, store has {shards}",
                        reader.shard_count()
                    )));
                }
                Self::load_replay(&reader, threads)?
            }
        };

        if let Some(rep) = &replay {
            obs::info!(
                "resuming {}: replaying {} recorded round(s) up to day {}",
                dir.display(),
                rep.rounds.len(),
                rep.frontier.0
            );
        }
        // The dir dictates the payload format on resume; `opts.format` only
        // applies to fresh creations.
        let writer = LogWriter::open_append(dir)?;
        let payload_format = writer.format_version();
        Ok(PersistStage {
            writer,
            replay,
            rounds_done: 0,
            max_rounds: opts.max_rounds,
            payload_format,
            codecs,
            scratch: Vec::new(),
        })
    }

    /// Load the committed history for replay, decoding shards in parallel
    /// through the pipeline's [`ShardedExecutor`]. Returns the replay data
    /// (None for an empty dir) plus, for v2 dirs, the per-shard codec states
    /// at the end of the committed stream — the exact encoder contexts live
    /// appends must continue from.
    fn load_replay(
        reader: &LogReader,
        threads: usize,
    ) -> Result<(Option<ReplayData>, Vec<ShardCodec>), PersistError> {
        let version = reader.format_version();
        let shards = reader.shard_count();
        let Some(commit) = reader.last_commit() else {
            // Created but never committed a round: nothing to replay.
            return Ok((None, fresh_codecs(version, shards)));
        };
        let checkpoint: Checkpoint = serde_json::from_slice(&commit.app)?;
        if checkpoint.format != version {
            return Err(PersistError::Diverged(format!(
                "checkpoint says payload format v{}, FORMAT file says v{version}",
                checkpoint.format
            )));
        }

        // Shards are independent streams — fan the decode out under the same
        // determinism contract as the crawl (results re-assembled in shard
        // order; merge below is shard-order deterministic).
        let shard_ids: Vec<usize> = (0..shards).collect();
        type ShardOut = Result<(Vec<ObsRecord>, Option<ShardCodec>), PersistError>;
        let exec = ShardedExecutor::new(threads, crate::exec_metric_names!("persist.replay"));
        let per_shard: Vec<ShardOut> = exec.map(
            &shard_ids,
            shards,
            |&s| s,
            || (),
            |_, _, &shard| {
                let stream = reader.stream_shard(shard).map_err(PersistError::from)?;
                let mut recs: Vec<ObsRecord> = Vec::new();
                let mut codec = (version >= 2).then(ShardCodec::new);
                for payload in stream.iter() {
                    let rec = match &mut codec {
                        Some(c) => c
                            .decode(payload)
                            .map_err(|e| PersistError::Decode(format!("shard {shard}: {e}")))?,
                        None => serde_json::from_slice::<ObsRecord>(payload)?,
                    };
                    // A checksum-valid frame spliced in from another shard's
                    // segment would decode fine; membership in the shard's
                    // FQDN partition is the structural check against it.
                    if crate::snapshot::fqdn_shard(&rec.snap.fqdn, shards) != shard {
                        return Err(PersistError::Decode(format!(
                            "shard {shard}: record for {} belongs to shard {}",
                            rec.snap.fqdn,
                            crate::snapshot::fqdn_shard(&rec.snap.fqdn, shards)
                        )));
                    }
                    recs.push(rec);
                }
                Ok((recs, codec))
            },
        );

        let mut rounds: BTreeMap<i32, Vec<ObsRecord>> = BTreeMap::new();
        let mut codecs: Vec<ShardCodec> = Vec::new();
        for out in per_shard {
            let (recs, codec) = out?;
            for rec in recs {
                rounds.entry(rec.round.0).or_default().push(rec);
            }
            if let Some(c) = codec {
                codecs.push(c);
            }
        }
        for (round, group) in rounds.iter_mut() {
            group.sort_unstable_by_key(|r| r.seq);
            if group.windows(2).any(|w| w[0].seq == w[1].seq) {
                return Err(PersistError::Decode(format!(
                    "round {round}: duplicate seq (spliced or duplicated frame)"
                )));
            }
        }
        Ok((
            Some(ReplayData {
                frontier: checkpoint.round,
                rounds,
                checkpoint,
            }),
            codecs,
        ))
    }

    /// If `now` is inside the recorded history, install the logged outcomes
    /// as this round's crawl batch and return `true` — the caller skips the
    /// crawl. Returns `false` past the frontier (or when not resuming).
    pub fn replay_round(&mut self, rs: &mut RunState, now: SimTime) -> Result<bool, PersistError> {
        let Some(rep) = &mut self.replay else {
            return Ok(false);
        };
        if now > rep.frontier {
            return Ok(false);
        }
        // Compaction may have thinned the round (superseded no-change
        // records); whatever remains replays in original order and rebuilds
        // the change log exactly and the store eventually.
        let records = rep.rounds.remove(&now.0).unwrap_or_default();
        obs::counter("persist.rounds_replayed").inc();
        obs::counter("persist.records_replayed").add(records.len() as u64);
        if records.len() > rs.monitored.len() {
            return Err(PersistError::Diverged(format!(
                "round {} has {} records for {} monitored names",
                now.0,
                records.len(),
                rs.monitored.len()
            )));
        }
        rs.crawl_batch = records
            .into_iter()
            .map(|rec| {
                let change = rec.change.map(|m| m.into_record(&rec.snap));
                // Latency telemetry is out-of-band and not persisted; replayed
                // rounds carry zeroed timings.
                CrawlOutcome {
                    snap: rec.snap,
                    change,
                    sim_elapsed_ns: 0,
                    dns_elapsed_ns: 0,
                }
            })
            .collect();
        Ok(true)
    }

    /// Buffer this round's crawl outcomes into the log (in memory until
    /// [`Self::finish_round`] makes them durable). Runs on live rounds only,
    /// before the diff stage drains the batch.
    pub fn record_round(&mut self, rs: &RunState, now: SimTime) -> Result<(), PersistError> {
        for (i, out) in rs.crawl_batch.iter().enumerate() {
            let rec = ObsRecord {
                round: now,
                seq: i as u32,
                snap: out.snap.clone(),
                change: out.change.as_ref().map(ChangeMeta::from_record),
            };
            let shard = rs.store.shard_of(&out.snap.fqdn);
            if self.payload_format >= 2 {
                self.codecs[shard].encode_into(&rec, &mut self.scratch);
                self.writer.append(shard, &self.scratch);
            } else {
                let payload = serde_json::to_vec(&rec)?;
                self.writer.append(shard, &payload);
            }
        }
        obs::counter("persist.records").add(rs.crawl_batch.len() as u64);
        Ok(())
    }

    /// Seal the round. On a live round: fsync the buffered records and
    /// commit a [`Checkpoint`]. On a replayed round: count it, and at the
    /// frontier validate the rebuilt state against the recorded checkpoint
    /// before going live.
    pub fn finish_round(&mut self, rs: &RunState, now: SimTime) -> Result<(), PersistError> {
        self.rounds_done += 1;
        if let Some(rep) = &self.replay {
            match now.cmp(&rep.frontier) {
                std::cmp::Ordering::Less => return Ok(()),
                std::cmp::Ordering::Equal => {
                    // At the frontier: prove the replay landed exactly where
                    // the original run stood before accepting live appends.
                    let rebuilt =
                        Checkpoint::capture(rs, now, self.rounds_done, self.payload_format);
                    if rebuilt != rep.checkpoint {
                        return Err(PersistError::Diverged(format!(
                            "at round {}: rebuilt {rebuilt:?} != recorded {:?}",
                            now.0, rep.checkpoint
                        )));
                    }
                    self.replay = None;
                    return Ok(());
                }
                std::cmp::Ordering::Greater => {
                    return Err(PersistError::Diverged(format!(
                        "round {} passed the recorded frontier {} without \
                         reaching it (monitoring cadence mismatch?)",
                        now.0, rep.frontier.0
                    )))
                }
            }
        }
        let cp = Checkpoint::capture(rs, now, self.rounds_done, self.payload_format);
        self.writer.commit(&serde_json::to_vec(&cp)?)?;
        Ok(())
    }

    /// Has the configured round budget been exhausted?
    pub fn should_stop(&self) -> bool {
        self.max_rounds.is_some_and(|m| self.rounds_done >= m)
    }

    /// Rounds completed (replayed + live) so far.
    pub fn rounds_done(&self) -> u64 {
        self.rounds_done
    }
}

/// Compact a state directory: drop every unchanged-snapshot record that a
/// newer observation of the same FQDN supersedes. Change records are always
/// kept. Safe at any point between runs; resume works identically on the
/// compacted log.
///
/// v1 dirs drop frames in place (payloads are self-contained JSON); v2 dirs
/// must *transcode* — intern ids and delta bases are positional in the
/// stream, so the surviving records are re-encoded with a fresh
/// [`ShardCodec`] per shard ([`storelog::compact_with`]).
pub fn compact_state_dir(dir: &Path) -> Result<CompactStats, PersistError> {
    let (version, _) = storelog::read_format(dir)?;
    if version < 2 {
        let stats = storelog::compact(dir, |payload| {
            match serde_json::from_slice::<ObsRecord>(payload) {
                // A change record is study signal — never dropped.
                Ok(rec) if rec.change.is_none() => Retention::Supersede(rec.snap.fqdn.to_string()),
                // Unparseable records are kept, not silently destroyed.
                _ => Retention::Keep,
            }
        })?;
        return Ok(stats);
    }
    let stats = storelog::compact_with(dir, |shard, payloads| {
        let mut dec = ShardCodec::new();
        let recs: Vec<ObsRecord> = payloads
            .iter()
            .map(|p| dec.decode(p))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("shard {shard}: {e}"))?;
        // Same retention rule as v1: keep every change record, plus the
        // last record per FQDN among the unchanged-snapshot ones.
        let mut last_of: HashMap<String, usize> = HashMap::new();
        for (i, rec) in recs.iter().enumerate() {
            if rec.change.is_none() {
                last_of.insert(rec.snap.fqdn.to_string(), i);
            }
        }
        let mut enc = ShardCodec::new();
        let mut out = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            let keep = rec.change.is_some() || last_of.get(&rec.snap.fqdn.to_string()) == Some(&i);
            if keep {
                let mut buf = Vec::new();
                enc.encode_into(rec, &mut buf);
                out.push(buf);
            }
        }
        Ok(out)
    })?;
    Ok(stats)
}

/// Outcome of [`migrate_state_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateStats {
    /// Committed rounds carried over.
    pub rounds: u64,
    /// Data records transcoded.
    pub records: u64,
    /// Total segment bytes before (v1) and after (v2).
    pub bytes_before: u64,
    pub bytes_after: u64,
}

/// Rewrite a v1 (JSON-payload) state dir to the current v2 binary format,
/// in place. Records are transcoded commit by commit so every original
/// round boundary and checkpoint survives (the checkpoint's `format` field
/// is rewritten 1→2); the replayed history of the migrated dir is
/// byte-identical to the original's.
///
/// Crash-safe: the new dir is built as a sibling `<dir>.v2.tmp`, then
/// published by renaming the original to `<dir>.v1.bak` and the temp dir
/// into place. A crash at any point leaves the original recoverable (under
/// its own name or the `.v1.bak` name); a leftover `.v2.tmp` from an
/// earlier crash is discarded and rebuilt. Refused if `<dir>.v1.bak`
/// already exists (a previous migration's backup would be clobbered).
pub fn migrate_state_dir(dir: &Path) -> Result<MigrateStats, PersistError> {
    let (version, shards) = storelog::read_format(dir)?;
    if version != 1 {
        return Err(PersistError::Store(storelog::Error::Format(format!(
            "migrate expects a v1 state dir, {} is v{version}",
            dir.display()
        ))));
    }
    let reader = LogReader::open(dir)?;
    let file_name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| storelog::Error::Format(format!("bad state dir path {}", dir.display())))?;
    let tmp = dir.with_file_name(format!("{file_name}.v2.tmp"));
    let bak = dir.with_file_name(format!("{file_name}.v1.bak"));
    if bak.exists() {
        return Err(PersistError::Store(storelog::Error::Format(format!(
            "backup {} already exists; remove it before migrating again",
            bak.display()
        ))));
    }
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp).map_err(storelog::Error::Io)?;
    }
    std::fs::create_dir_all(&tmp).map_err(storelog::Error::Io)?;
    let mut writer = LogWriter::create_versioned(&tmp, shards, reader.config(), 2)?;

    // Walk the committed history oldest-first, consuming each shard's
    // payload stream up to every commit's recorded offset — the transcoded
    // dir gets one commit per original commit, at the transcoded offsets.
    let mut stats = MigrateStats {
        rounds: 0,
        records: 0,
        bytes_before: 0,
        bytes_after: 0,
    };
    let mut codecs = fresh_codecs(2, shards);
    let mut streams = Vec::with_capacity(shards);
    for shard in 0..shards {
        streams.push(reader.stream_shard(shard)?);
    }
    let mut iters: Vec<_> = streams.iter().map(|s| s.iter()).collect();
    let mut consumed = vec![0u64; shards]; // v1 bytes consumed per shard
    let mut buf = Vec::new();
    for commit in reader.commits() {
        for shard in 0..shards {
            let target = commit.offsets[shard];
            while consumed[shard] < target {
                let Some(payload) = iters[shard].next() else {
                    return Err(PersistError::Diverged(format!(
                        "shard {shard}: commit offset {target} past the end \
                         of the committed stream",
                    )));
                };
                consumed[shard] += storelog::frame::frame_len(payload.len()) as u64;
                let rec: ObsRecord = serde_json::from_slice(payload)?;
                codecs[shard].encode_into(&rec, &mut buf);
                writer.append(shard, &buf);
                stats.records += 1;
                stats.bytes_before += payload.len() as u64;
                stats.bytes_after += buf.len() as u64;
            }
            if consumed[shard] != target {
                return Err(PersistError::Diverged(format!(
                    "shard {shard}: commit offset {target} does not land on \
                     a frame boundary ({} consumed)",
                    consumed[shard]
                )));
            }
        }
        let mut cp: Checkpoint = serde_json::from_slice(&commit.app)?;
        cp.format = 2;
        writer.commit(&serde_json::to_vec(&cp)?)?;
        stats.rounds += 1;
    }
    drop(writer);

    // Publish: original out of the way first, then the new dir into place.
    std::fs::rename(dir, &bak).map_err(storelog::Error::Io)?;
    std::fs::rename(&tmp, dir).map_err(storelog::Error::Io)?;
    obs::info!(
        "migrated {} to format v2: {} round(s), {} record(s), {} -> {} payload bytes \
         (v1 original kept at {})",
        dir.display(),
        stats.rounds,
        stats.records,
        stats.bytes_before,
        stats.bytes_after,
        bak.display()
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::Rcode;

    fn snap(fqdn: &str, day: i32) -> Snapshot {
        let mut s =
            Snapshot::unreachable(fqdn.parse().unwrap(), SimTime(day), Rcode::NoError, None);
        s.http_status = Some(200);
        s.index_hash = 7;
        s.title = Some("Titre — déjà vu".into());
        s
    }

    #[test]
    fn obs_record_roundtrips_through_json() {
        let rec = ObsRecord {
            round: SimTime(35),
            seq: 3,
            snap: snap("a.b.com", 35),
            change: Some(ChangeMeta {
                kinds: vec![ChangeKind::Content, ChangeKind::Language],
                before_language: Some("en".into()),
                before_sitemap_bytes: None,
                before_serving: true,
                before_keywords: vec!["slot".into()],
            }),
        };
        let bytes = serde_json::to_vec(&rec).unwrap();
        let back: ObsRecord = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back.round, rec.round);
        assert_eq!(back.seq, rec.seq);
        assert_eq!(back.snap, rec.snap);
        let m = back.change.unwrap();
        assert_eq!(m.kinds, vec![ChangeKind::Content, ChangeKind::Language]);
        assert_eq!(m.before_keywords, vec!["slot".to_string()]);
    }

    #[test]
    fn change_meta_rebuilds_the_original_record() {
        let after = snap("x.y.com", 42);
        let original = ChangeRecord {
            fqdn: after.fqdn.clone(),
            day: after.day,
            kinds: vec![ChangeKind::BecameReachable],
            before_language: None,
            before_sitemap_bytes: Some(10),
            before_serving: false,
            before_keywords: vec![],
            after: after.clone(),
        };
        let rebuilt = ChangeMeta::from_record(&original).into_record(&after);
        assert_eq!(rebuilt.fqdn, original.fqdn);
        assert_eq!(rebuilt.day, original.day);
        assert_eq!(rebuilt.kinds, original.kinds);
        assert_eq!(rebuilt.before_sitemap_bytes, original.before_sitemap_bytes);
        assert_eq!(rebuilt.after, original.after);
    }

    #[test]
    fn fingerprint_ignores_thread_count_only() {
        let mut a = ScenarioConfig::at_scale(800);
        let mut b = a.clone();
        a.crawl_threads = 1;
        b.crawl_threads = 8;
        assert_eq!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&b).unwrap()
        );
        b.crawl_failure_rate = 0.5;
        assert_ne!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&b).unwrap()
        );
        let mut c = a.clone();
        c.seed = a.seed + 1;
        assert_ne!(
            config_fingerprint(&a).unwrap(),
            config_fingerprint(&c).unwrap()
        );
    }

    #[test]
    fn checkpoint_roundtrips() {
        let cp = Checkpoint {
            format: OBS_FORMAT,
            round: SimTime(1834),
            rounds_done: 52,
            monitored_total: 993,
            store_len: 991,
            changes_total: 120,
            ip_lottery_declines: 4,
            caa_blocked_certs: 1,
            liveness_len: 9,
            rng_witness: 0xdead_beef_cafe_f00d,
        };
        let bytes = serde_json::to_vec(&cp).unwrap();
        let back: Checkpoint = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, cp);
    }
}
