//! The shard-parallel weekly crawl (§3.2).
//!
//! [`CrawlExecutor`] fans one monitoring round out over worker threads. The
//! contract is strict determinism: for the same world state the output is
//! byte-identical for any thread count, because
//!
//! 1. work is partitioned by [`SnapshotStore::shard_of`] — a fixed hash of
//!    the FQDN — never by arrival or iteration order,
//! 2. every task reads the *pre-round* store (each FQDN appears once per
//!    round, so no task can observe another's write), and
//! 3. any randomness (the transient-failure model) comes from an RNG stream
//!    keyed by `crawl/{fqdn}/{day}`, so it does not depend on which thread
//!    or in which order the FQDN was crawled,
//!
//! and the outcomes are re-assembled in the canonical monitored order before
//! the diff stage consumes them.

use super::{RunState, ShardedExecutor, Stage};
use crate::diff::{record as diff_record, ChangeRecord};
use crate::monitor::Crawler;
use crate::snapshot::{Snapshot, SnapshotStore};
use dns::resolver::Transport;
use dns::{Name, Resolver};
use httpsim::Endpoint;
use rand::Rng;
use simcore::{RngTree, SimTime};

/// What one crawl task produced: the new snapshot and, when there was a
/// previous one, the diff against it.
#[derive(Debug, Clone)]
pub struct CrawlOutcome {
    pub snap: Snapshot,
    pub change: Option<ChangeRecord>,
}

/// Shard-parallel crawl executor: the [`ShardedExecutor`] discipline applied
/// to the weekly crawl (see module docs for the determinism contract).
pub struct CrawlExecutor {
    exec: ShardedExecutor,
    /// Per-fetch probability of a transient failure (network flake). Zero
    /// disables the model entirely — no RNG stream is even derived.
    failure_rate: f64,
    m_failures: &'static obs::Counter,
}

impl CrawlExecutor {
    pub fn new(threads: usize, failure_rate: f64) -> Self {
        CrawlExecutor {
            exec: ShardedExecutor::new(threads, crate::exec_metric_names!("crawl")),
            failure_rate,
            m_failures: obs::counter("crawl.transient_failures"),
        }
    }

    /// Crawl `monitored` (in canonical order) against the pre-round `store`,
    /// returning one [`CrawlOutcome`] per FQDN in the same order.
    ///
    /// `make_resolver` / `make_web` are per-worker factories: each thread
    /// gets its own resolver (and thus its own TTL cache) so no lock is
    /// shared on the hot path. Within one round a cache hit returns exactly
    /// what a fresh resolution would (same authority state, same `now`), so
    /// per-thread caches cannot perturb results.
    pub fn run<T, E, FR, FW>(
        &self,
        monitored: &[Name],
        store: &SnapshotStore,
        tree: &RngTree,
        now: SimTime,
        make_resolver: &FR,
        make_web: &FW,
    ) -> Vec<CrawlOutcome>
    where
        T: Transport,
        E: Endpoint,
        FR: Fn() -> Resolver<T> + Sync,
        FW: Fn() -> E + Sync,
    {
        // Work is partitioned into the store's shards — a stable, FQDN-keyed
        // split, so the same name always lands in the same bucket no matter
        // how many workers run.
        self.exec.map(
            monitored,
            store.shard_count(),
            |fqdn| store.shard_of(fqdn),
            || (make_resolver(), make_web()),
            |(resolver, web), _i, fqdn| self.crawl_one(fqdn, resolver, web, store, tree, now),
        )
    }

    fn crawl_one<T: Transport, E: Endpoint + ?Sized>(
        &self,
        fqdn: &Name,
        resolver: &Resolver<T>,
        web: &E,
        store: &SnapshotStore,
        tree: &RngTree,
        now: SimTime,
    ) -> CrawlOutcome {
        let prev = store.latest(fqdn);
        let snap = if self.failure_rate > 0.0
            && tree
                .rng(&format!("crawl/{fqdn}/{}", now.0))
                .gen_bool(self.failure_rate)
        {
            // Transient fetch failure: DNS still resolves, the HTTP fetch is
            // dropped. Keyed by (fqdn, day) so the flake pattern is identical
            // under any partition of the work.
            self.m_failures.inc();
            let outcome = resolver.resolve_a(fqdn, now);
            let cname = outcome.final_cname().cloned();
            let mut s = Snapshot::unreachable(fqdn.clone(), now, outcome.rcode, cname);
            s.ip = outcome.addresses.first().copied();
            s
        } else {
            Crawler::sample(fqdn, resolver, web, prev, now)
        };
        let change = prev.and_then(|p| diff_record(p, snap.clone()));
        CrawlOutcome { snap, change }
    }
}

/// The weekly-crawl stage: wraps [`CrawlExecutor`] and leaves the round's
/// outcomes in [`RunState::crawl_batch`] for the diff stage.
pub struct CrawlStage {
    exec: CrawlExecutor,
}

impl CrawlStage {
    pub fn new(threads: usize, failure_rate: f64) -> Self {
        CrawlStage {
            exec: CrawlExecutor::new(threads, failure_rate),
        }
    }
}

impl Stage for CrawlStage {
    fn name(&self) -> &'static str {
        "crawl"
    }

    fn weekly(&mut self, rs: &mut RunState, now: SimTime) {
        let RunState {
            world,
            store,
            monitored,
            tree,
            crawl_batch,
            ..
        } = rs;
        let world = &*world;
        *crawl_batch = self.exec.run(
            monitored,
            store,
            tree,
            now,
            &|| Resolver::new(world.dns()),
            &|| world.web(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{AccountId, CloudPlatform, PlatformConfig, ServiceId, SiteContent};
    use dns::{Authority, RecordData, ResourceRecord, Zone, ZoneSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(n: usize) -> (CloudPlatform, ZoneSet, Vec<Name>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut platform = CloudPlatform::new(PlatformConfig::default());
        let mut zs = ZoneSet::new();
        let mut zone = Zone::new("acme.com".parse().unwrap());
        let mut monitored = Vec::new();
        for i in 0..n {
            let id = platform
                .register(
                    ServiceId::AzureWebApp,
                    Some(&format!("site-{i}")),
                    None,
                    AccountId::Org(1),
                    SimTime(0),
                    &mut rng,
                )
                .unwrap();
            platform.set_content(id, SiteContent::placeholder(&format!("Site {i}")));
            let fqdn: Name = format!("s{i}.acme.com").parse().unwrap();
            platform.bind_custom_domain(id, fqdn.clone());
            zone.add(ResourceRecord::new(
                fqdn.clone(),
                300,
                RecordData::Cname(format!("site-{i}.azurewebsites.net").parse().unwrap()),
            ));
            monitored.push(fqdn);
        }
        zs.insert(zone);
        for pz in platform.zones().iter() {
            zs.insert(pz.clone());
        }
        (platform, zs, monitored)
    }

    #[test]
    fn parallel_matches_serial() {
        let (platform, zs, monitored) = build(23);
        let store = SnapshotStore::with_shards(4);
        let tree = RngTree::new(9);
        // Nonzero failure rate so the RNG-keyed path is exercised too.
        let serial = CrawlExecutor::new(1, 0.1).run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(Authority::new(zs.clone())),
            &|| &platform,
        );
        for threads in [2, 3, 8] {
            let par = CrawlExecutor::new(threads, 0.1).run(
                &monitored,
                &store,
                &tree,
                SimTime(7),
                &|| Resolver::new(Authority::new(zs.clone())),
                &|| &platform,
            );
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.snap, b.snap, "threads={threads}");
            }
        }
    }

    #[test]
    fn failure_model_off_by_default() {
        let (platform, zs, monitored) = build(5);
        let store = SnapshotStore::new();
        let tree = RngTree::new(9);
        let out = CrawlExecutor::new(1, 0.0).run(
            &monitored,
            &store,
            &tree,
            SimTime(7),
            &|| Resolver::new(Authority::new(zs.clone())),
            &|| &platform,
        );
        assert!(out.iter().all(|o| o.snap.is_serving()));
        assert!(out.iter().all(|o| o.change.is_none()));
    }
}
